//! A page-based B+ tree index.
//!
//! One node per page, serialized after the page-LSN header. Leaves are
//! chained for range scans. Every traversal goes through the buffer pool,
//! so index reads leave exactly the traces the paper cares about: LRU
//! recency (dumped to `ib_buffer_pool`) and per-page access counters
//! (feeding the adaptive hash index).
//!
//! Duplicate keys are supported; equality and range searches descend
//! left-on-equality and walk the leaf chain.

use std::ops::Bound;

use crate::error::{DbError, DbResult};
use crate::row::RowId;
use crate::storage::page::PAGE_SIZE;
use crate::storage::shardpool::ShardedBufferPool;
use crate::value::Value;
use crate::vdisk::VDisk;

/// Maximum entries per node before a split.
const MAX_ENTRIES: usize = 32;

/// Maximum encoded key size accepted into an index (in the spirit of
/// MySQL's 767-byte index prefix limit; sized so a full node of maximal
/// keys still fits in one page).
pub const MAX_KEY_BYTES: usize = 400;

/// Offset of node data within a page (past the page-LSN header).
const NODE_OFF: usize = 12;

const SENTINEL: u32 = u32::MAX;

/// Result of an index search: the matching row ids plus the pages the
/// traversal touched, in visit order (the access-path leakage).
#[derive(Clone, Debug, Default)]
pub struct SearchResult {
    /// Matching row ids in key order.
    pub row_ids: Vec<RowId>,
    /// Pages visited root→leaf (then across the leaf chain).
    pub pages: Vec<u32>,
}

#[derive(Clone, Debug, PartialEq)]
enum Node {
    Internal {
        keys: Vec<Value>,
        children: Vec<u32>,
    },
    Leaf {
        entries: Vec<(Value, RowId)>,
        next: Option<u32>,
    },
}

impl Node {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Node::Internal { keys, children } => {
                out.push(1);
                out.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                for c in children {
                    out.extend_from_slice(&c.to_le_bytes());
                }
                for k in keys {
                    k.encode(&mut out);
                }
            }
            Node::Leaf { entries, next } => {
                out.push(2);
                out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                out.extend_from_slice(&next.unwrap_or(SENTINEL).to_le_bytes());
                for (k, rid) in entries {
                    k.encode(&mut out);
                    out.extend_from_slice(&rid.to_le_bytes());
                }
            }
        }
        out
    }

    fn decode(buf: &[u8]) -> DbResult<Node> {
        let mut pos = 0;
        let tag = *buf
            .get(pos)
            .ok_or_else(|| DbError::Storage("empty btree node".into()))?;
        pos += 1;
        let n = u16::from_le_bytes(
            buf.get(pos..pos + 2)
                .ok_or_else(|| DbError::Storage("truncated node count".into()))?
                .try_into()
                .unwrap(),
        ) as usize;
        pos += 2;
        match tag {
            1 => {
                let mut children = Vec::with_capacity(n + 1);
                for _ in 0..=n {
                    let c = u32::from_le_bytes(
                        buf.get(pos..pos + 4)
                            .ok_or_else(|| DbError::Storage("truncated child".into()))?
                            .try_into()
                            .unwrap(),
                    );
                    pos += 4;
                    children.push(c);
                }
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    keys.push(Value::decode(buf, &mut pos)?);
                }
                Ok(Node::Internal { keys, children })
            }
            2 => {
                let next_raw = u32::from_le_bytes(
                    buf.get(pos..pos + 4)
                        .ok_or_else(|| DbError::Storage("truncated next ptr".into()))?
                        .try_into()
                        .unwrap(),
                );
                pos += 4;
                let next = (next_raw != SENTINEL).then_some(next_raw);
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let k = Value::decode(buf, &mut pos)?;
                    let rid = u64::from_le_bytes(
                        buf.get(pos..pos + 8)
                            .ok_or_else(|| DbError::Storage("truncated row id".into()))?
                            .try_into()
                            .unwrap(),
                    );
                    pos += 8;
                    entries.push((k, rid));
                }
                Ok(Node::Leaf { entries, next })
            }
            t => Err(DbError::Storage(format!("unknown btree node tag {t}"))),
        }
    }
}

/// A B+ tree rooted at a fixed page of an index file. The root page number
/// never changes (root splits copy the old root out), so the catalog can
/// store it once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BTree {
    /// Index file name on the virtual disk.
    pub file: String,
    /// Root page number.
    pub root: u32,
}

impl BTree {
    /// Creates an empty tree in `file`, allocating the root page.
    pub fn create(bufpool: &ShardedBufferPool, vdisk: &mut VDisk, file: &str) -> DbResult<BTree> {
        let root = bufpool.allocate_page(vdisk, file);
        let tree = BTree {
            file: file.to_string(),
            root,
        };
        tree.store_node(
            bufpool,
            vdisk,
            root,
            &Node::Leaf {
                entries: Vec::new(),
                next: None,
            },
        )?;
        Ok(tree)
    }

    fn load_node(
        &self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        page_no: u32,
    ) -> DbResult<Node> {
        let bytes = bufpool.with_page(vdisk, &self.file, page_no, |b| {
            let len = u16::from_le_bytes([b[NODE_OFF], b[NODE_OFF + 1]]) as usize;
            b[NODE_OFF + 2..NODE_OFF + 2 + len].to_vec()
        })?;
        Node::decode(&bytes)
    }

    fn store_node(
        &self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        page_no: u32,
        node: &Node,
    ) -> DbResult<()> {
        let bytes = node.encode();
        if NODE_OFF + 2 + bytes.len() > PAGE_SIZE {
            return Err(DbError::Storage("btree node exceeds page".into()));
        }
        bufpool.with_page_mut(vdisk, &self.file, page_no, |b| {
            b[NODE_OFF..NODE_OFF + 2].copy_from_slice(&(bytes.len() as u16).to_le_bytes());
            b[NODE_OFF + 2..NODE_OFF + 2 + bytes.len()].copy_from_slice(&bytes);
        })
    }

    /// Inserts `(key, row_id)`. Duplicate keys are allowed.
    pub fn insert(
        &self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        key: &Value,
        row_id: RowId,
    ) -> DbResult<()> {
        let mut probe = Vec::new();
        key.encode(&mut probe);
        if probe.len() > MAX_KEY_BYTES {
            return Err(DbError::Storage(format!(
                "index key too large ({} > {MAX_KEY_BYTES} bytes)",
                probe.len()
            )));
        }
        if let Some((split_key, right)) = self.insert_rec(bufpool, vdisk, self.root, key, row_id)? {
            // Root split: copy the (already-halved) root node into a fresh
            // left page and rebuild the root as an internal node, keeping
            // the root page number stable.
            let old_root = self.load_node(bufpool, vdisk, self.root)?;
            let left = bufpool.allocate_page(vdisk, &self.file);
            self.store_node(bufpool, vdisk, left, &old_root)?;
            self.store_node(
                bufpool,
                vdisk,
                self.root,
                &Node::Internal {
                    keys: vec![split_key],
                    children: vec![left, right],
                },
            )?;
        }
        Ok(())
    }

    /// Recursive insert; returns `Some((separator, right_page))` when the
    /// child at `page_no` split.
    fn insert_rec(
        &self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        page_no: u32,
        key: &Value,
        row_id: RowId,
    ) -> DbResult<Option<(Value, u32)>> {
        match self.load_node(bufpool, vdisk, page_no)? {
            Node::Leaf { mut entries, next } => {
                let pos = entries.partition_point(|(k, _)| k <= key);
                entries.insert(pos, (key.clone(), row_id));
                if entries.len() <= MAX_ENTRIES {
                    self.store_node(bufpool, vdisk, page_no, &Node::Leaf { entries, next })?;
                    return Ok(None);
                }
                let mid = entries.len() / 2;
                let right_entries: Vec<_> = entries.split_off(mid);
                let split_key = right_entries[0].0.clone();
                let right_page = bufpool.allocate_page(vdisk, &self.file);
                self.store_node(
                    bufpool,
                    vdisk,
                    right_page,
                    &Node::Leaf {
                        entries: right_entries,
                        next,
                    },
                )?;
                self.store_node(
                    bufpool,
                    vdisk,
                    page_no,
                    &Node::Leaf {
                        entries,
                        next: Some(right_page),
                    },
                )?;
                Ok(Some((split_key, right_page)))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                // Right-on-equality keeps inserts simple; searches descend
                // left-on-equality and walk the leaf chain instead.
                let idx = keys.partition_point(|k| k <= key);
                let child = children[idx];
                if let Some((sep, right)) = self.insert_rec(bufpool, vdisk, child, key, row_id)? {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    if keys.len() <= MAX_ENTRIES {
                        self.store_node(
                            bufpool,
                            vdisk,
                            page_no,
                            &Node::Internal { keys, children },
                        )?;
                        return Ok(None);
                    }
                    let mid = keys.len() / 2;
                    let promote = keys[mid].clone();
                    let right_keys: Vec<_> = keys.split_off(mid + 1);
                    keys.pop(); // Remove the promoted key from the left.
                    let right_children: Vec<_> = children.split_off(mid + 1);
                    let right_page = bufpool.allocate_page(vdisk, &self.file);
                    self.store_node(
                        bufpool,
                        vdisk,
                        right_page,
                        &Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        },
                    )?;
                    self.store_node(bufpool, vdisk, page_no, &Node::Internal { keys, children })?;
                    return Ok(Some((promote, right_page)));
                }
                Ok(None)
            }
        }
    }

    /// Descends to the leaf that may contain the *leftmost* occurrence of
    /// `key`, recording the path.
    fn descend_left(
        &self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        key: &Value,
        path: &mut Vec<u32>,
    ) -> DbResult<u32> {
        let mut page_no = self.root;
        loop {
            path.push(page_no);
            match self.load_node(bufpool, vdisk, page_no)? {
                Node::Leaf { .. } => return Ok(page_no),
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k < key);
                    page_no = children[idx];
                }
            }
        }
    }

    /// Finds all row ids with exactly `key`.
    pub fn search_eq(
        &self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        key: &Value,
    ) -> DbResult<SearchResult> {
        self.search_range(
            bufpool,
            vdisk,
            Bound::Included(key.clone()),
            Bound::Included(key.clone()),
        )
    }

    /// Finds all row ids with keys in the given bounds, in key order.
    pub fn search_range(
        &self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        lo: Bound<Value>,
        hi: Bound<Value>,
    ) -> DbResult<SearchResult> {
        let mut result = SearchResult::default();
        // Starting leaf: leftmost for unbounded, else descend on the bound.
        let mut leaf = match &lo {
            Bound::Unbounded => self.leftmost_leaf(bufpool, vdisk, &mut result.pages)?,
            Bound::Included(k) | Bound::Excluded(k) => {
                self.descend_left(bufpool, vdisk, k, &mut result.pages)?
            }
        };
        let in_lo = |k: &Value| match &lo {
            Bound::Unbounded => true,
            Bound::Included(b) => k >= b,
            Bound::Excluded(b) => k > b,
        };
        let above_hi = |k: &Value| match &hi {
            Bound::Unbounded => false,
            Bound::Included(b) => k > b,
            Bound::Excluded(b) => k >= b,
        };
        loop {
            let node = self.load_node(bufpool, vdisk, leaf)?;
            let Node::Leaf { entries, next } = node else {
                return Err(DbError::Storage("descend ended on internal node".into()));
            };
            for (k, rid) in &entries {
                if above_hi(k) {
                    return Ok(result);
                }
                if in_lo(k) {
                    result.row_ids.push(*rid);
                }
            }
            match next {
                Some(n) => {
                    leaf = n;
                    result.pages.push(n);
                }
                None => return Ok(result),
            }
        }
    }

    fn leftmost_leaf(
        &self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        path: &mut Vec<u32>,
    ) -> DbResult<u32> {
        let mut page_no = self.root;
        loop {
            path.push(page_no);
            match self.load_node(bufpool, vdisk, page_no)? {
                Node::Leaf { .. } => return Ok(page_no),
                Node::Internal { children, .. } => page_no = children[0],
            }
        }
    }

    /// Removes one `(key, row_id)` entry. Returns whether an entry was
    /// removed. No rebalancing (lazy deletion, like many real engines).
    pub fn delete(
        &self,
        bufpool: &ShardedBufferPool,
        vdisk: &mut VDisk,
        key: &Value,
        row_id: RowId,
    ) -> DbResult<bool> {
        let mut path = Vec::new();
        let mut leaf = self.descend_left(bufpool, vdisk, key, &mut path)?;
        loop {
            let node = self.load_node(bufpool, vdisk, leaf)?;
            let Node::Leaf { mut entries, next } = node else {
                return Err(DbError::Storage("descend ended on internal node".into()));
            };
            if let Some(pos) = entries.iter().position(|(k, r)| k == key && *r == row_id) {
                entries.remove(pos);
                self.store_node(bufpool, vdisk, leaf, &Node::Leaf { entries, next })?;
                return Ok(true);
            }
            // If every entry is already past the key, it does not exist.
            if entries.iter().all(|(k, _)| k > key) {
                return Ok(false);
            }
            match next {
                Some(n) => leaf = n,
                None => return Ok(false),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ShardedBufferPool, VDisk, BTree) {
        let bp = ShardedBufferPool::new(64, 4);
        let mut vd = VDisk::new();
        let t = BTree::create(&bp, &mut vd, "idx.ibd").unwrap();
        (bp, vd, t)
    }

    #[test]
    fn insert_and_point_lookup() {
        let (bp, mut vd, t) = setup();
        for i in 0..200i64 {
            t.insert(&bp, &mut vd, &Value::Int(i * 2), i as u64)
                .unwrap();
        }
        let hit = t.search_eq(&bp, &mut vd, &Value::Int(100)).unwrap();
        assert_eq!(hit.row_ids, vec![50]);
        let miss = t.search_eq(&bp, &mut vd, &Value::Int(101)).unwrap();
        assert!(miss.row_ids.is_empty());
        assert!(!hit.pages.is_empty());
    }

    #[test]
    fn range_scan_ordered() {
        let (bp, mut vd, t) = setup();
        // Insert shuffled.
        for i in (0..500i64).map(|i| (i * 37) % 500) {
            t.insert(&bp, &mut vd, &Value::Int(i), i as u64).unwrap();
        }
        let r = t
            .search_range(
                &bp,
                &mut vd,
                Bound::Included(Value::Int(100)),
                Bound::Excluded(Value::Int(110)),
            )
            .unwrap();
        assert_eq!(r.row_ids, (100u64..110).collect::<Vec<_>>());
        // Unbounded scan returns everything in order.
        let all = t
            .search_range(&bp, &mut vd, Bound::Unbounded, Bound::Unbounded)
            .unwrap();
        assert_eq!(all.row_ids.len(), 500);
        assert!(all.row_ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn duplicates_found_across_leaves() {
        let (bp, mut vd, t) = setup();
        // 100 duplicates of one key, interleaved with others, forces the
        // duplicates across multiple leaves.
        for i in 0..100u64 {
            t.insert(&bp, &mut vd, &Value::Int(7), 1000 + i).unwrap();
            t.insert(&bp, &mut vd, &Value::Int(i as i64 * 10), i)
                .unwrap();
        }
        let r = t.search_eq(&bp, &mut vd, &Value::Int(7)).unwrap();
        assert_eq!(r.row_ids.len(), 100);
        let mut rids = r.row_ids.clone();
        rids.sort_unstable();
        assert_eq!(rids, (1000u64..1100).collect::<Vec<_>>());
    }

    #[test]
    fn delete_specific_entry() {
        let (bp, mut vd, t) = setup();
        for i in 0..50u64 {
            t.insert(&bp, &mut vd, &Value::Int(5), i).unwrap();
        }
        assert!(t.delete(&bp, &mut vd, &Value::Int(5), 25).unwrap());
        assert!(!t.delete(&bp, &mut vd, &Value::Int(5), 25).unwrap());
        assert!(!t.delete(&bp, &mut vd, &Value::Int(6), 0).unwrap());
        let r = t.search_eq(&bp, &mut vd, &Value::Int(5)).unwrap();
        assert_eq!(r.row_ids.len(), 49);
        assert!(!r.row_ids.contains(&25));
    }

    #[test]
    fn text_keys() {
        let (bp, mut vd, t) = setup();
        let words = ["delta", "alpha", "echo", "bravo", "charlie"];
        for (i, w) in words.iter().enumerate() {
            t.insert(&bp, &mut vd, &Value::Text(w.to_string()), i as u64)
                .unwrap();
        }
        let r = t
            .search_range(
                &bp,
                &mut vd,
                Bound::Included(Value::Text("b".into())),
                Bound::Excluded(Value::Text("d".into())),
            )
            .unwrap();
        // bravo (3), charlie (4).
        assert_eq!(r.row_ids, vec![3, 4]);
    }

    #[test]
    fn huge_key_rejected() {
        let (bp, mut vd, t) = setup();
        let big = Value::Text("x".repeat(600));
        assert!(t.insert(&bp, &mut vd, &big, 0).is_err());
    }

    #[test]
    fn root_page_number_stable_across_splits() {
        let (bp, mut vd, t) = setup();
        let root_before = t.root;
        for i in 0..2000i64 {
            t.insert(&bp, &mut vd, &Value::Int(i), i as u64).unwrap();
        }
        assert_eq!(t.root, root_before);
        // Multi-level now: search path longer than 1.
        let hit = t.search_eq(&bp, &mut vd, &Value::Int(1999)).unwrap();
        assert!(
            hit.pages.len() >= 3,
            "expected depth >= 3, path {:?}",
            hit.pages
        );
        assert_eq!(hit.row_ids, vec![1999]);
    }

    #[test]
    fn access_path_is_recorded() {
        let (bp, mut vd, t) = setup();
        for i in 0..2000i64 {
            t.insert(&bp, &mut vd, &Value::Int(i), i as u64).unwrap();
        }
        let r = t.search_eq(&bp, &mut vd, &Value::Int(123)).unwrap();
        assert_eq!(r.pages[0], t.root, "path starts at the root");
        // The visited pages got LRU-touched in the buffer pool.
        let order = bp.lru_order();
        let last = r.pages.last().unwrap();
        assert!(order
            .iter()
            .take(4)
            .any(|(f, p)| f == "idx.ibd" && p == last));
    }

    #[test]
    fn survives_flush_and_reload() {
        let (bp, mut vd, t) = setup();
        for i in 0..300i64 {
            t.insert(&bp, &mut vd, &Value::Int(i), i as u64).unwrap();
        }
        bp.flush_all(&mut vd);
        // A cold pool reading from disk sees the same tree.
        let cold = ShardedBufferPool::new(8, 4);
        let r = t.search_eq(&cold, &mut vd, &Value::Int(250)).unwrap();
        assert_eq!(r.row_ids, vec![250]);
    }
}
