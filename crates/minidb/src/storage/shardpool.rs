//! The latch-partitioned buffer pool: N independent shards, each an LRU
//! page cache with its own `Mutex`, selected by `hash(page) % N`.
//!
//! The classic [`super::bufpool::BufferPool`] serializes every page
//! access behind one lock — fine for a single-session library, fatal for
//! a multi-client server where eight connections fault pages
//! concurrently. Sharding the frame table partitions that latch: two
//! accesses contend only when their pages hash to the same shard, and —
//! the part that dominates real systems — a page *fault* (simulated here
//! by [`ShardedBufferPool::set_fault_latency`]) stalls only its own
//! shard while the other shards keep serving hits and faulting in
//! parallel.
//!
//! Everything the paper cares about is preserved shard-by-shard: the LRU
//! dump file still renders the global recency order (ticks come from one
//! atomic clock), the per-page access counters still feed the adaptive
//! hash index, and eviction is still O(log n) per shard via the ordered
//! tick index. New for this pool: per-shard telemetry
//! (`bufpool.shard{i}.{hits,misses,evictions}`) alongside the global
//! `bufpool.*` counters, making the *partition* of the access load — a
//! coarse page-distribution histogram — one more snapshot-visible
//! surface.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use mdb_telemetry::{Counter, Registry};
use parking_lot::Mutex;

use crate::error::{DbError, DbResult};
use crate::storage::bufpool::{PageKey, ACCESS_COUNTS_CAP, DUMP_FILE};
use crate::storage::page::{Page, PAGE_SIZE};
use crate::vdisk::VDisk;

/// Default shard count ([`crate::engine::DbConfig::bufpool_shards`]).
pub const DEFAULT_SHARDS: usize = 8;

/// The storage a pool faults pages from and writes dirty pages back to.
///
/// The engine's backing is the [`VDisk`]; benches substitute synthetic
/// backings so many threads can fault concurrently without sharing one
/// `&mut VDisk`.
pub trait PageBacking {
    /// Reads page `page_no` of `file`, or `None` if it does not exist.
    fn read_page(&mut self, file: &str, page_no: u32) -> Option<Vec<u8>>;
    /// Writes a page back (eviction write-back / flush).
    fn write_page(&mut self, file: &str, page_no: u32, data: &[u8]);
    /// Current length of `file` in bytes (for page allocation).
    fn file_len(&mut self, file: &str) -> usize;
}

impl PageBacking for VDisk {
    fn read_page(&mut self, file: &str, page_no: u32) -> Option<Vec<u8>> {
        let off = page_no as usize * PAGE_SIZE;
        match self.read(file) {
            Some(bytes) if bytes.len() >= off + PAGE_SIZE => {
                Some(bytes[off..off + PAGE_SIZE].to_vec())
            }
            _ => None,
        }
    }

    fn write_page(&mut self, file: &str, page_no: u32, data: &[u8]) {
        self.write_at(file, page_no as usize * PAGE_SIZE, data);
    }

    fn file_len(&mut self, file: &str) -> usize {
        self.len(file)
    }
}

struct Frame {
    data: Vec<u8>,
    dirty: bool,
    last_access: u64,
}

/// One latch partition: a frame table plus its ordered LRU index, both
/// guarded by the shard's `Mutex` in [`ShardedBufferPool::shards`].
struct Shard {
    capacity: usize,
    frames: HashMap<PageKey, Frame>,
    /// Ordered LRU index: global access tick → page. Ticks are unique
    /// (one atomic clock for the whole pool), so `pop_first` is always
    /// this shard's eviction victim and cross-shard tick order is the
    /// global recency order.
    lru: BTreeMap<u64, PageKey>,
    /// Lifetime access counts (survive eviction; feed the AHI). Bounded
    /// by a per-shard slice of [`ACCESS_COUNTS_CAP`].
    access_counts: HashMap<PageKey, u64>,
    access_cap: usize,
}

impl Shard {
    fn count_access(&mut self, key: &PageKey) {
        if !self.access_counts.contains_key(key) && self.access_counts.len() >= self.access_cap {
            if let Some(victim) = self
                .access_counts
                .iter()
                .min_by_key(|(_, n)| **n)
                .map(|(k, _)| k.clone())
            {
                self.access_counts.remove(&victim);
            }
        }
        *self.access_counts.entry(key.clone()).or_insert(0) += 1;
    }

    fn stamp(&mut self, key: &PageKey, tick: u64) {
        if let Some(f) = self.frames.get_mut(key) {
            self.lru.remove(&f.last_access);
            f.last_access = tick;
            self.lru.insert(tick, key.clone());
        }
    }
}

/// Per-shard telemetry handles (`bufpool.shard{i}.*`).
struct ShardCounters {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

struct PoolMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    writebacks: Counter,
    flushed_pages: Counter,
    dumps: Counter,
    per_shard: Vec<ShardCounters>,
}

/// The latch-partitioned LRU page cache.
pub struct ShardedBufferPool {
    shards: Vec<Mutex<Shard>>,
    /// Global monotonic access clock shared by every shard.
    tick: AtomicU64,
    capacity: usize,
    /// Simulated page-fault I/O latency, slept *while holding the
    /// faulting shard's latch* — exactly where a real pool holds its
    /// partition latch across the disk read. Zero (the default) for the
    /// engine; the server bench turns it up to measure fault overlap.
    fault_latency: Duration,
    metrics: Option<PoolMetrics>,
}

impl ShardedBufferPool {
    /// Creates a pool of `shards` partitions holding at most `capacity`
    /// pages in total (each shard gets `ceil(capacity / shards)`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `shards == 0`.
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        assert!(shards > 0, "buffer pool needs at least one shard");
        let per_shard = capacity.div_ceil(shards).max(1);
        let access_cap = (ACCESS_COUNTS_CAP / shards).max(1);
        ShardedBufferPool {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        capacity: per_shard,
                        frames: HashMap::new(),
                        lru: BTreeMap::new(),
                        access_counts: HashMap::new(),
                        access_cap,
                    })
                })
                .collect(),
            tick: AtomicU64::new(0),
            capacity,
            fault_latency: Duration::ZERO,
            metrics: None,
        }
    }

    /// Registers the pool's counters on `registry`: the global
    /// `bufpool.*` family plus `bufpool.shard{i}.{hits,misses,evictions}`
    /// per shard.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = Some(PoolMetrics {
            hits: registry.counter("bufpool.hits"),
            misses: registry.counter("bufpool.misses"),
            evictions: registry.counter("bufpool.evictions"),
            writebacks: registry.counter("bufpool.writebacks"),
            flushed_pages: registry.counter("bufpool.flushed_pages"),
            dumps: registry.counter("bufpool.dumps"),
            per_shard: (0..self.shards.len())
                .map(|i| ShardCounters {
                    hits: registry.counter(&format!("bufpool.shard{i}.hits")),
                    misses: registry.counter(&format!("bufpool.shard{i}.misses")),
                    evictions: registry.counter(&format!("bufpool.shard{i}.evictions")),
                })
                .collect(),
        });
    }

    /// Sets the simulated per-fault I/O latency (see the field docs).
    pub fn set_fault_latency(&mut self, latency: Duration) {
        self.fault_latency = latency;
    }

    /// Number of latch partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total page capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Which shard a page hashes to (FNV-1a over file name + page_no).
    pub fn shard_of(&self, file: &str, page_no: u32) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes().chain(page_no.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Ensures `key` is framed in `shard`, faulting it in from `backing`
    /// (and sleeping the simulated fault latency under the latch) on a
    /// miss. Counts the hit/miss on both metric families.
    fn load(
        &self,
        shard: &mut Shard,
        shard_idx: usize,
        backing: &mut impl PageBacking,
        key: &PageKey,
    ) -> DbResult<()> {
        if shard.frames.contains_key(key) {
            if let Some(m) = &self.metrics {
                m.hits.inc();
                m.per_shard[shard_idx].hits.inc();
            }
            return Ok(());
        }
        if let Some(m) = &self.metrics {
            m.misses.inc();
            m.per_shard[shard_idx].misses.inc();
        }
        if !self.fault_latency.is_zero() {
            std::thread::sleep(self.fault_latency);
        }
        self.evict_to_fit(shard, shard_idx, backing, 1);
        let (file, page_no) = key;
        let data = backing.read_page(file, *page_no).ok_or_else(|| {
            DbError::Storage(format!("page {page_no} of {file} does not exist on disk"))
        })?;
        let tick = self.next_tick();
        shard.frames.insert(
            key.clone(),
            Frame {
                data,
                dirty: false,
                last_access: tick,
            },
        );
        shard.lru.insert(tick, key.clone());
        Ok(())
    }

    fn evict_to_fit(
        &self,
        shard: &mut Shard,
        shard_idx: usize,
        backing: &mut impl PageBacking,
        incoming: usize,
    ) {
        while shard.frames.len() + incoming > shard.capacity {
            let (_, victim) = shard.lru.pop_first().expect("LRU index tracks every frame");
            let frame = shard.frames.remove(&victim).expect("indexed frame exists");
            if let Some(m) = &self.metrics {
                m.evictions.inc();
                m.per_shard[shard_idx].evictions.inc();
            }
            if frame.dirty {
                if let Some(m) = &self.metrics {
                    m.writebacks.inc();
                }
                backing.write_page(&victim.0, victim.1, &frame.data);
            }
        }
    }

    /// Runs `f` over an immutable view of the page.
    pub fn with_page<R>(
        &self,
        backing: &mut impl PageBacking,
        file: &str,
        page_no: u32,
        f: impl FnOnce(&[u8]) -> R,
    ) -> DbResult<R> {
        let key = (file.to_string(), page_no);
        let idx = self.shard_of(file, page_no);
        let mut shard = self.shards[idx].lock();
        self.load(&mut shard, idx, backing, &key)?;
        let tick = self.next_tick();
        shard.stamp(&key, tick);
        shard.count_access(&key);
        Ok(f(&shard.frames[&key].data))
    }

    /// Runs `f` over a mutable view of the page and marks it dirty.
    pub fn with_page_mut<R>(
        &self,
        backing: &mut impl PageBacking,
        file: &str,
        page_no: u32,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> DbResult<R> {
        let key = (file.to_string(), page_no);
        let idx = self.shard_of(file, page_no);
        let mut shard = self.shards[idx].lock();
        self.load(&mut shard, idx, backing, &key)?;
        let tick = self.next_tick();
        shard.stamp(&key, tick);
        shard.count_access(&key);
        let frame = shard.frames.get_mut(&key).expect("just loaded");
        frame.dirty = true;
        Ok(f(&mut frame.data))
    }

    /// Allocates a fresh formatted page at the end of `file`, returning
    /// its page number. Write-through, cached clean.
    pub fn allocate_page(&self, backing: &mut impl PageBacking, file: &str) -> u32 {
        let page_no = (backing.file_len(file) / PAGE_SIZE) as u32;
        let mut buf = vec![0u8; PAGE_SIZE];
        Page::format(&mut buf);
        backing.write_page(file, page_no, &buf);
        let key = (file.to_string(), page_no);
        let idx = self.shard_of(file, page_no);
        let mut shard = self.shards[idx].lock();
        self.evict_to_fit(&mut shard, idx, backing, 1);
        let tick = self.next_tick();
        shard.frames.insert(
            key.clone(),
            Frame {
                data: buf,
                dirty: false,
                last_access: tick,
            },
        );
        shard.lru.insert(tick, key.clone());
        shard.count_access(&key);
        page_no
    }

    /// Number of pages `file` holds on disk.
    pub fn page_count(vdisk: &VDisk, file: &str) -> u32 {
        (vdisk.len(file) / PAGE_SIZE) as u32
    }

    /// Flushes every dirty frame to the backing (checkpoint/shutdown).
    pub fn flush_all(&self, backing: &mut impl PageBacking) {
        let mut flushed = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock();
            for (key, frame) in shard.frames.iter_mut() {
                if frame.dirty {
                    backing.write_page(&key.0, key.1, &frame.data);
                    frame.dirty = false;
                    flushed += 1;
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.flushed_pages.add(flushed);
        }
    }

    /// Cached pages most-recently-used first, globally ordered across
    /// shards (the shared tick clock makes shard-local ticks comparable).
    pub fn lru_order(&self) -> Vec<PageKey> {
        let mut entries: Vec<(u64, PageKey)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            entries.extend(shard.lru.iter().map(|(t, k)| (*t, k.clone())));
        }
        entries.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
        entries.into_iter().map(|(_, k)| k).collect()
    }

    /// Writes the LRU dump file (`ib_buffer_pool`): one `file page_no`
    /// line per cached page, most recent first — byte-identical format
    /// to the single-latch pool's, so the forensic carver needs no
    /// changes.
    pub fn dump(&self, backing: &mut VDisk) {
        if let Some(m) = &self.metrics {
            m.dumps.inc();
        }
        let mut text = String::new();
        for (file, page_no) in self.lru_order() {
            text.push_str(&file);
            text.push(' ');
            text.push_str(&page_no.to_string());
            text.push('\n');
        }
        backing.write(DUMP_FILE, text.into_bytes());
    }

    /// Lifetime access count of a page.
    pub fn access_count(&self, file: &str, page_no: u32) -> u64 {
        let key = (file.to_string(), page_no);
        let shard = self.shards[self.shard_of(file, page_no)].lock();
        shard.access_counts.get(&key).copied().unwrap_or(0)
    }

    /// All per-page access counters, sorted (for the adaptive hash index
    /// and the memory snapshot).
    pub fn access_counters_snapshot(&self) -> Vec<(PageKey, u64)> {
        let mut out: Vec<(PageKey, u64)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            out.extend(shard.access_counts.iter().map(|(k, &c)| (k.clone(), c)));
        }
        out.sort();
        out
    }

    /// Discards every cached frame and counter of `file` without
    /// flushing (`DROP TABLE`).
    pub fn purge_file(&self, file: &str) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.frames.retain(|(f, _), _| f != file);
            shard.lru.retain(|_, (f, _)| f != file);
            shard.access_counts.retain(|(f, _), _| f != file);
        }
    }

    /// Drops all volatile state *without flushing* — the crash path.
    pub fn crash(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.frames.clear();
            shard.lru.clear();
            shard.access_counts.clear();
        }
        self.tick.store(0, Ordering::Relaxed);
    }

    /// Number of frames currently cached across all shards.
    pub fn cached_pages(&self) -> usize {
        self.shards.iter().map(|s| s.lock().frames.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn setup() -> (ShardedBufferPool, VDisk) {
        (ShardedBufferPool::new(8, 4), VDisk::new())
    }

    #[test]
    fn allocate_and_rw() {
        let (bp, mut vd) = setup();
        assert_eq!(bp.allocate_page(&mut vd, "t.ibd"), 0);
        assert_eq!(bp.allocate_page(&mut vd, "t.ibd"), 1);
        bp.with_page_mut(&mut vd, "t.ibd", 0, |b| b[100] = 42)
            .unwrap();
        let v = bp.with_page(&mut vd, "t.ibd", 0, |b| b[100]).unwrap();
        assert_eq!(v, 42);
        assert_eq!(ShardedBufferPool::page_count(&vd, "t.ibd"), 2);
    }

    #[test]
    fn missing_page_errors() {
        let (bp, mut vd) = setup();
        assert!(bp.with_page(&mut vd, "none.ibd", 0, |_| ()).is_err());
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        // One shard of capacity 4: deterministic eviction pressure.
        let bp = ShardedBufferPool::new(4, 1);
        let mut vd = VDisk::new();
        for _ in 0..4 {
            bp.allocate_page(&mut vd, "t.ibd");
        }
        bp.with_page_mut(&mut vd, "t.ibd", 0, |b| b[50] = 7)
            .unwrap();
        for _ in 0..4 {
            bp.allocate_page(&mut vd, "t.ibd");
        }
        assert!(bp.cached_pages() <= 4);
        let v = bp.with_page(&mut vd, "t.ibd", 0, |b| b[50]).unwrap();
        assert_eq!(v, 7, "dirty page survived via write-back");
    }

    #[test]
    fn crash_loses_unflushed_changes() {
        let (bp, mut vd) = setup();
        bp.allocate_page(&mut vd, "t.ibd");
        bp.with_page_mut(&mut vd, "t.ibd", 0, |b| b[60] = 9)
            .unwrap();
        bp.crash();
        let v = bp.with_page(&mut vd, "t.ibd", 0, |b| b[60]).unwrap();
        assert_eq!(v, 0, "dirty page must be lost on crash");
    }

    #[test]
    fn flush_makes_changes_durable() {
        let (bp, mut vd) = setup();
        bp.allocate_page(&mut vd, "t.ibd");
        bp.with_page_mut(&mut vd, "t.ibd", 0, |b| b[60] = 9)
            .unwrap();
        bp.flush_all(&mut vd);
        bp.crash();
        let v = bp.with_page(&mut vd, "t.ibd", 0, |b| b[60]).unwrap();
        assert_eq!(v, 9);
    }

    #[test]
    fn lru_order_global_across_shards() {
        let (bp, mut vd) = setup();
        // Pages land on different shards; the order must still be the
        // global access order, most recent first.
        for _ in 0..4 {
            bp.allocate_page(&mut vd, "t.ibd");
        }
        bp.with_page(&mut vd, "t.ibd", 1, |_| ()).unwrap();
        bp.with_page(&mut vd, "t.ibd", 3, |_| ()).unwrap();
        bp.with_page(&mut vd, "t.ibd", 0, |_| ()).unwrap();
        let order = bp.lru_order();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], ("t.ibd".to_string(), 0));
        assert_eq!(order[1], ("t.ibd".to_string(), 3));
        assert_eq!(order[2], ("t.ibd".to_string(), 1));
    }

    #[test]
    fn dump_file_matches_bufpool_format() {
        let (bp, mut vd) = setup();
        bp.allocate_page(&mut vd, "a.ibd");
        bp.allocate_page(&mut vd, "b.ibd");
        bp.dump(&mut vd);
        let text = String::from_utf8(vd.read(DUMP_FILE).unwrap().to_vec()).unwrap();
        assert_eq!(text, "b.ibd 0\na.ibd 0\n");
    }

    #[test]
    fn purge_file_removes_stale_frames() {
        let (bp, mut vd) = setup();
        bp.allocate_page(&mut vd, "t.ibd");
        bp.with_page_mut(&mut vd, "t.ibd", 0, |b| b[20] = 9)
            .unwrap();
        bp.purge_file("t.ibd");
        vd.remove("t.ibd");
        bp.allocate_page(&mut vd, "t.ibd");
        let v = bp.with_page(&mut vd, "t.ibd", 0, |b| b[20]).unwrap();
        assert_eq!(v, 0);
        assert_eq!(bp.access_count("t.ibd", 0), 2);
    }

    #[test]
    fn access_counters_accumulate() {
        let (bp, mut vd) = setup();
        bp.allocate_page(&mut vd, "t.ibd");
        for _ in 0..5 {
            bp.with_page(&mut vd, "t.ibd", 0, |_| ()).unwrap();
        }
        assert_eq!(bp.access_count("t.ibd", 0), 6);
        let snap = bp.access_counters_snapshot();
        assert_eq!(snap, vec![(("t.ibd".to_string(), 0), 6)]);
    }

    #[test]
    fn per_shard_metrics_register() {
        let registry = Registry::new();
        let mut bp = ShardedBufferPool::new(8, 4);
        bp.attach_telemetry(&registry);
        let mut vd = VDisk::new();
        bp.allocate_page(&mut vd, "t.ibd");
        bp.with_page(&mut vd, "t.ibd", 0, |_| ()).unwrap();
        let snap = registry.snapshot();
        let hit_total: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("bufpool.shard") && n.ends_with(".hits"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(hit_total, 1, "the touch after allocation is a shard hit");
        assert_eq!(snap.counter("bufpool.hits"), Some(1));
        // All four shards registered all three counters.
        let shard_counters = snap
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("bufpool.shard"))
            .count();
        assert_eq!(shard_counters, 12);
    }

    /// A backing that synthesizes pages on demand — lets many threads
    /// fault without sharing one `&mut VDisk`.
    struct Synthetic;

    impl PageBacking for Synthetic {
        fn read_page(&mut self, _file: &str, page_no: u32) -> Option<Vec<u8>> {
            let mut page = vec![0u8; PAGE_SIZE];
            page[..4].copy_from_slice(&page_no.to_le_bytes());
            Some(page)
        }
        fn write_page(&mut self, _file: &str, _page_no: u32, _data: &[u8]) {}
        fn file_len(&mut self, _file: &str) -> usize {
            0
        }
    }

    #[test]
    fn concurrent_access_from_many_threads() {
        let pool = Arc::new(ShardedBufferPool::new(64, 8));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let mut backing = Synthetic;
                    for i in 0..200u32 {
                        let page = (t * 37 + i) % 128;
                        let got = pool
                            .with_page(&mut backing, "s.ibd", page, |b| {
                                u32::from_le_bytes(b[..4].try_into().unwrap())
                            })
                            .unwrap();
                        assert_eq!(got, page, "no torn frames under concurrency");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(pool.cached_pages() <= 64);
        let order = pool.lru_order();
        assert_eq!(order.len(), pool.cached_pages(), "one LRU entry per frame");
    }
}
