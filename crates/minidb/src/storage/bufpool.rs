//! The buffer pool: an LRU page cache with a persistent dump file.
//!
//! Two properties matter for the paper:
//!
//! * **The dump file** (`ib_buffer_pool`): like MySQL, MiniDB persists the
//!   list of cached pages in LRU order on shutdown and periodically during
//!   operation, to avoid a cold-cache warm-up after restart. §3 observes
//!   that this file reveals the pages — hence the B+ tree paths — touched
//!   by recent `SELECT`s.
//! * **Access counters**: per-page counters feed the adaptive hash index
//!   (§5), another volatile structure that betrays access patterns.
//!
//! Eviction is O(log n): an ordered index (`BTreeMap` keyed by access
//! tick) shadows the frame table, so finding the LRU victim is a
//! `pop_first` instead of a full scan over every frame.

use std::collections::{BTreeMap, HashMap};

use mdb_telemetry::{Counter, Registry};

use crate::error::{DbError, DbResult};
use crate::storage::page::{Page, PAGE_SIZE};
use crate::vdisk::VDisk;

/// Identifies a page: tablespace file name + page number.
pub type PageKey = (String, u32);

/// Name of the persisted LRU dump file (InnoDB's `ib_buffer_pool`).
pub const DUMP_FILE: &str = "ib_buffer_pool";

/// Upper bound on the `access_counts` map. The counters outlive
/// eviction on purpose (they feed the adaptive hash index), which made
/// the map grow without bound on large scans: one entry per page *ever
/// touched*. At the cap, admitting a new page drops the coldest entry
/// (smallest lifetime count) — the page least likely to matter to the
/// AHI. 65536 entries covers a 1 GiB hot set at 16 KiB pages, far above
/// anything the experiments touch, while bounding snapshot bloat.
pub const ACCESS_COUNTS_CAP: usize = 65_536;

struct Frame {
    data: Vec<u8>,
    dirty: bool,
    last_access: u64,
}

/// Pre-resolved telemetry handles; absent until a [`Registry`] is
/// attached, so standalone pools (unit tests) pay nothing.
struct PoolMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    writebacks: Counter,
    flushed_pages: Counter,
    dumps: Counter,
}

/// The LRU page cache.
pub struct BufferPool {
    capacity: usize,
    frames: HashMap<PageKey, Frame>,
    /// Monotonic access clock for LRU ordering.
    tick: u64,
    /// Ordered LRU index: access tick → page. Every cached frame has
    /// exactly one entry here (ticks are unique: each frame insert or
    /// touch stamps a freshly incremented tick), so the first entry is
    /// always the eviction victim.
    lru: BTreeMap<u64, PageKey>,
    /// Lifetime access counts per page (survives eviction; volatile).
    /// Bounded by [`ACCESS_COUNTS_CAP`].
    access_counts: HashMap<PageKey, u64>,
    metrics: Option<PoolMetrics>,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            frames: HashMap::new(),
            tick: 0,
            lru: BTreeMap::new(),
            access_counts: HashMap::new(),
            metrics: None,
        }
    }

    /// Registers this pool's counters on `registry`. All hot-path record
    /// calls go through pre-resolved handles after this.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = Some(PoolMetrics {
            hits: registry.counter("bufpool.hits"),
            misses: registry.counter("bufpool.misses"),
            evictions: registry.counter("bufpool.evictions"),
            writebacks: registry.counter("bufpool.writebacks"),
            flushed_pages: registry.counter("bufpool.flushed_pages"),
            dumps: registry.counter("bufpool.dumps"),
        });
    }

    /// Stamps a fresh tick on the frame for `key`, keeping the ordered
    /// LRU index in sync.
    fn stamp(&mut self, key: &PageKey) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(f) = self.frames.get_mut(key) {
            self.lru.remove(&f.last_access);
            f.last_access = tick;
            self.lru.insert(tick, key.clone());
        }
    }

    fn count_access(&mut self, key: &PageKey) {
        if !self.access_counts.contains_key(key) && self.access_counts.len() >= ACCESS_COUNTS_CAP {
            // Overflow: drop the coldest page. Linear, but only on the
            // rare admission-at-cap path, never per access.
            if let Some(victim) = self
                .access_counts
                .iter()
                .min_by_key(|(_, n)| **n)
                .map(|(k, _)| k.clone())
            {
                self.access_counts.remove(&victim);
            }
        }
        *self.access_counts.entry(key.clone()).or_insert(0) += 1;
    }

    fn touch(&mut self, key: &PageKey) {
        self.stamp(key);
        self.count_access(key);
    }

    fn load(&mut self, vdisk: &mut VDisk, key: &PageKey) -> DbResult<()> {
        if self.frames.contains_key(key) {
            if let Some(m) = &self.metrics {
                m.hits.inc();
            }
            return Ok(());
        }
        if let Some(m) = &self.metrics {
            m.misses.inc();
        }
        self.evict_to_fit(vdisk, 1);
        let (file, page_no) = key;
        let off = *page_no as usize * PAGE_SIZE;
        let data = match vdisk.read(file) {
            Some(bytes) if bytes.len() >= off + PAGE_SIZE => bytes[off..off + PAGE_SIZE].to_vec(),
            _ => {
                return Err(DbError::Storage(format!(
                    "page {page_no} of {file} does not exist on disk"
                )))
            }
        };
        self.tick += 1;
        self.frames.insert(
            key.clone(),
            Frame {
                data,
                dirty: false,
                last_access: self.tick,
            },
        );
        self.lru.insert(self.tick, key.clone());
        Ok(())
    }

    fn evict_to_fit(&mut self, vdisk: &mut VDisk, incoming: usize) {
        while self.frames.len() + incoming > self.capacity {
            let (_, victim) = self.lru.pop_first().expect("LRU index tracks every frame");
            let frame = self.frames.remove(&victim).expect("indexed frame exists");
            if let Some(m) = &self.metrics {
                m.evictions.inc();
            }
            if frame.dirty {
                if let Some(m) = &self.metrics {
                    m.writebacks.inc();
                }
                vdisk.write_at(&victim.0, victim.1 as usize * PAGE_SIZE, &frame.data);
            }
        }
    }

    /// Runs `f` over an immutable view of the page.
    pub fn with_page<R>(
        &mut self,
        vdisk: &mut VDisk,
        file: &str,
        page_no: u32,
        f: impl FnOnce(&[u8]) -> R,
    ) -> DbResult<R> {
        let key = (file.to_string(), page_no);
        self.load(vdisk, &key)?;
        self.touch(&key);
        Ok(f(&self.frames[&key].data))
    }

    /// Runs `f` over a mutable view of the page and marks it dirty.
    pub fn with_page_mut<R>(
        &mut self,
        vdisk: &mut VDisk,
        file: &str,
        page_no: u32,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> DbResult<R> {
        let key = (file.to_string(), page_no);
        self.load(vdisk, &key)?;
        self.touch(&key);
        let frame = self.frames.get_mut(&key).expect("just loaded");
        frame.dirty = true;
        Ok(f(&mut frame.data))
    }

    /// Allocates a fresh formatted page at the end of `file`, returning its
    /// page number. The page is immediately durable (zero-day allocation
    /// writes through) and cached dirty-free.
    pub fn allocate_page(&mut self, vdisk: &mut VDisk, file: &str) -> u32 {
        let page_no = (vdisk.len(file) / PAGE_SIZE) as u32;
        let mut buf = vec![0u8; PAGE_SIZE];
        Page::format(&mut buf);
        vdisk.write_at(file, page_no as usize * PAGE_SIZE, &buf);
        self.evict_to_fit(vdisk, 1);
        self.tick += 1;
        let key = (file.to_string(), page_no);
        self.frames.insert(
            key.clone(),
            Frame {
                data: buf,
                dirty: false,
                last_access: self.tick,
            },
        );
        self.lru.insert(self.tick, key.clone());
        self.count_access(&key);
        page_no
    }

    /// Number of pages `file` holds on disk.
    pub fn page_count(vdisk: &VDisk, file: &str) -> u32 {
        (vdisk.len(file) / PAGE_SIZE) as u32
    }

    /// Flushes every dirty frame to disk (checkpoint/shutdown path).
    pub fn flush_all(&mut self, vdisk: &mut VDisk) {
        let mut flushed = 0u64;
        for (key, frame) in self.frames.iter_mut() {
            if frame.dirty {
                vdisk.write_at(&key.0, key.1 as usize * PAGE_SIZE, &frame.data);
                frame.dirty = false;
                flushed += 1;
            }
        }
        if let Some(m) = &self.metrics {
            m.flushed_pages.add(flushed);
        }
    }

    /// Cached pages most-recently-used first.
    pub fn lru_order(&self) -> Vec<PageKey> {
        self.lru.values().rev().cloned().collect()
    }

    /// Writes the LRU dump file (`ib_buffer_pool`) to disk: one
    /// `file page_no` line per cached page, most recent first.
    pub fn dump(&self, vdisk: &mut VDisk) {
        if let Some(m) = &self.metrics {
            m.dumps.inc();
        }
        let mut text = String::new();
        for (file, page_no) in self.lru_order() {
            text.push_str(&file);
            text.push(' ');
            text.push_str(&page_no.to_string());
            text.push('\n');
        }
        vdisk.write(DUMP_FILE, text.into_bytes());
    }

    /// Lifetime access count of a page.
    pub fn access_count(&self, file: &str, page_no: u32) -> u64 {
        self.access_counts
            .get(&(file.to_string(), page_no))
            .copied()
            .unwrap_or(0)
    }

    /// All per-page access counters (for the adaptive hash index and the
    /// memory snapshot).
    pub fn access_counters(&self) -> &HashMap<PageKey, u64> {
        &self.access_counts
    }

    /// Discards every cached frame and counter of `file` without flushing
    /// (used by `DROP TABLE`, whose file is gone anyway). A later file of
    /// the same name must not see stale frames.
    pub fn purge_file(&mut self, file: &str) {
        self.frames.retain(|(f, _), _| f != file);
        self.lru.retain(|_, (f, _)| f != file);
        self.access_counts.retain(|(f, _), _| f != file);
    }

    /// Drops all volatile state *without flushing* — the crash path. Dirty
    /// pages die here; recovery must redo them from the WAL.
    pub fn crash(&mut self) {
        self.frames.clear();
        self.lru.clear();
        self.access_counts.clear();
        self.tick = 0;
    }

    /// Number of frames currently cached.
    pub fn cached_pages(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BufferPool, VDisk) {
        (BufferPool::new(4), VDisk::new())
    }

    #[test]
    fn allocate_and_rw() {
        let (mut bp, mut vd) = setup();
        let p0 = bp.allocate_page(&mut vd, "t.ibd");
        assert_eq!(p0, 0);
        let p1 = bp.allocate_page(&mut vd, "t.ibd");
        assert_eq!(p1, 1);
        bp.with_page_mut(&mut vd, "t.ibd", 0, |b| b[100] = 42)
            .unwrap();
        let v = bp.with_page(&mut vd, "t.ibd", 0, |b| b[100]).unwrap();
        assert_eq!(v, 42);
        assert_eq!(BufferPool::page_count(&vd, "t.ibd"), 2);
    }

    #[test]
    fn missing_page_errors() {
        let (mut bp, mut vd) = setup();
        assert!(bp.with_page(&mut vd, "none.ibd", 0, |_| ()).is_err());
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (mut bp, mut vd) = setup();
        for _ in 0..4 {
            bp.allocate_page(&mut vd, "t.ibd");
        }
        bp.with_page_mut(&mut vd, "t.ibd", 0, |b| b[50] = 7)
            .unwrap();
        // Cause evictions: capacity is 4, so loading 4 more pages evicts
        // page 0 (the LRU victim).
        for _ in 0..4 {
            bp.allocate_page(&mut vd, "t.ibd");
        }
        assert!(bp.cached_pages() <= 4);
        // Page 0's change survived via write-back.
        let v = bp.with_page(&mut vd, "t.ibd", 0, |b| b[50]).unwrap();
        assert_eq!(v, 7);
    }

    #[test]
    fn crash_loses_unflushed_changes() {
        let (mut bp, mut vd) = setup();
        bp.allocate_page(&mut vd, "t.ibd");
        bp.with_page_mut(&mut vd, "t.ibd", 0, |b| b[60] = 9)
            .unwrap();
        bp.crash();
        let v = bp.with_page(&mut vd, "t.ibd", 0, |b| b[60]).unwrap();
        assert_eq!(v, 0, "dirty page must be lost on crash");
    }

    #[test]
    fn flush_makes_changes_durable() {
        let (mut bp, mut vd) = setup();
        bp.allocate_page(&mut vd, "t.ibd");
        bp.with_page_mut(&mut vd, "t.ibd", 0, |b| b[60] = 9)
            .unwrap();
        bp.flush_all(&mut vd);
        bp.crash();
        let v = bp.with_page(&mut vd, "t.ibd", 0, |b| b[60]).unwrap();
        assert_eq!(v, 9);
    }

    #[test]
    fn lru_order_most_recent_first() {
        let (mut bp, mut vd) = setup();
        bp.allocate_page(&mut vd, "t.ibd");
        bp.allocate_page(&mut vd, "t.ibd");
        bp.with_page(&mut vd, "t.ibd", 0, |_| ()).unwrap();
        let order = bp.lru_order();
        assert_eq!(order[0], ("t.ibd".to_string(), 0));
        assert_eq!(order[1], ("t.ibd".to_string(), 1));
    }

    #[test]
    fn lru_index_stays_in_sync_under_churn() {
        let (mut bp, mut vd) = setup();
        for _ in 0..16 {
            bp.allocate_page(&mut vd, "t.ibd");
        }
        // Touch a survivor, then force more evictions around it.
        bp.with_page(&mut vd, "t.ibd", 13, |_| ()).unwrap();
        for p in 0..8 {
            bp.with_page(&mut vd, "t.ibd", p, |_| ()).unwrap();
        }
        assert_eq!(bp.cached_pages(), 4);
        let order = bp.lru_order();
        assert_eq!(order.len(), 4, "one LRU entry per frame");
        assert_eq!(order[0], ("t.ibd".to_string(), 7), "most recent first");
        // Every LRU entry maps to a cached frame and vice versa.
        for key in &order {
            assert!(bp.with_page(&mut vd, &key.0, key.1, |_| ()).is_ok());
        }
    }

    #[test]
    fn dump_file_contents() {
        let (mut bp, mut vd) = setup();
        bp.allocate_page(&mut vd, "a.ibd");
        bp.allocate_page(&mut vd, "b.ibd");
        bp.dump(&mut vd);
        let text = String::from_utf8(vd.read(DUMP_FILE).unwrap().to_vec()).unwrap();
        assert_eq!(text, "b.ibd 0\na.ibd 0\n");
    }

    #[test]
    fn purge_file_removes_stale_frames() {
        let (mut bp, mut vd) = setup();
        bp.allocate_page(&mut vd, "t.ibd");
        bp.with_page_mut(&mut vd, "t.ibd", 0, |b| b[20] = 9)
            .unwrap();
        bp.purge_file("t.ibd");
        vd.remove("t.ibd");
        // Recreate the file: the old frame must not resurface.
        bp.allocate_page(&mut vd, "t.ibd");
        let v = bp.with_page(&mut vd, "t.ibd", 0, |b| b[20]).unwrap();
        assert_eq!(v, 0);
        // Counter restarted: 1 for the allocation + 1 for the read above.
        assert_eq!(bp.access_count("t.ibd", 0), 2);
    }

    #[test]
    fn access_counters_accumulate() {
        let (mut bp, mut vd) = setup();
        bp.allocate_page(&mut vd, "t.ibd");
        for _ in 0..5 {
            bp.with_page(&mut vd, "t.ibd", 0, |_| ()).unwrap();
        }
        assert_eq!(bp.access_count("t.ibd", 0), 6); // 1 alloc + 5 reads.
    }

    #[test]
    fn access_counters_bounded() {
        let (mut bp, mut vd) = setup();
        bp.allocate_page(&mut vd, "hot.ibd");
        // Heat one page well past everything else.
        for _ in 0..10 {
            bp.with_page(&mut vd, "hot.ibd", 0, |_| ()).unwrap();
        }
        // Fill to the cap with cold synthetic entries (avoids allocating
        // 65k real pages just to trigger the overflow path).
        let mut i = 0u32;
        while bp.access_counts.len() < ACCESS_COUNTS_CAP {
            bp.access_counts.insert((format!("cold-{i}.ibd"), 0), 2);
            i += 1;
        }
        // Admitting new pages at the cap evicts a coldest entry each time
        // (the newest admission, at count 1, is itself the next victim).
        bp.allocate_page(&mut vd, "new-a.ibd");
        bp.allocate_page(&mut vd, "new-b.ibd");
        assert!(bp.access_counts.len() <= ACCESS_COUNTS_CAP);
        assert_eq!(bp.access_count("new-b.ibd", 0), 1);
        // The hot page's counter survived the overflow evictions.
        assert_eq!(bp.access_count("hot.ibd", 0), 11);
    }
}
