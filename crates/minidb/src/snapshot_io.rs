//! Serialization of [`SystemImage`] to a single byte container, so a
//! captured snapshot can be written to disk and analysed later by the
//! standalone forensic tooling (the workflow a real attacker has: image
//! first, carve at leisure).
//!
//! Format (`EDBSNAP6`, little-endian, length-prefixed throughout):
//!
//! ```text
//! magic "EDBSNAP6" | captured_at i64
//! disk:   u32 n, then n × (str name, u64 len, bytes)
//! memory: u64 heap_len, heap bytes
//!         [cached_queries] [cached_pages] [page_access_counts]
//!         [adaptive_hash_keys] [stmts_current] [stmts_history]
//!         [digest_summary] [processlist]
//! metrics: [counters] [gauges] [histograms]
//! traces:  u32 n, then n × (u64 len, mdb-trace record payload)
//! zonemaps: u32 n, then n × (str file, u32 page_no, u64 rows,
//!           u32 ncols, ncols × (u32 col, i64 min, i64 max))
//! versions: u32 n, then n × (str table, u64 row_id, u32 nversions,
//!           nversions × (u8 state, u8 op, u64 xmin, u64 xmax,
//!           u64 offset, bytes row))
//! ```

use std::collections::BTreeMap;

use crate::error::{DbError, DbResult};
use crate::mvcc::Version;
use crate::observability::{DigestStats, ProcessEntry, StatementEvent};
use crate::row::Row;
use crate::snapshot::{DiskImage, MemoryImage, SystemImage, VersionChain, ZoneMapPage};

const MAGIC: &[u8; 8] = b"EDBSNAP6";

fn w_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_bytes(out: &mut Vec<u8>, b: &[u8]) {
    w_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn w_str(out: &mut Vec<u8>, s: &str) {
    w_bytes(out, s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        let b = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| DbError::Storage("truncated snapshot".into()))?;
        self.pos += n;
        Ok(b)
    }

    fn u32(&mut self) -> DbResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> DbResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> DbResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> DbResult<Vec<u8>> {
        let n = self.u64()? as usize;
        if n > self.buf.len() {
            return Err(DbError::Storage("snapshot length overflow".into()));
        }
        Ok(self.take(n)?.to_vec())
    }

    fn str(&mut self) -> DbResult<String> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| DbError::Storage("snapshot string not utf8".into()))
    }
}

impl SystemImage {
    /// Serializes the image to the `EDBSNAP6` container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        w_i64(&mut out, self.captured_at);
        // Disk.
        w_u32(&mut out, self.disk.files.len() as u32);
        for (name, data) in &self.disk.files {
            w_str(&mut out, name);
            w_bytes(&mut out, data);
        }
        // Memory.
        let m = &self.memory;
        w_bytes(&mut out, &m.heap);
        w_u32(&mut out, m.cached_queries.len() as u32);
        for q in &m.cached_queries {
            w_str(&mut out, q);
        }
        w_u32(&mut out, m.cached_pages.len() as u32);
        for (f, p) in &m.cached_pages {
            w_str(&mut out, f);
            w_u32(&mut out, *p);
        }
        w_u32(&mut out, m.page_access_counts.len() as u32);
        for ((f, p), c) in &m.page_access_counts {
            w_str(&mut out, f);
            w_u32(&mut out, *p);
            w_u64(&mut out, *c);
        }
        w_u32(&mut out, m.adaptive_hash_keys.len() as u32);
        for (k, (f, p)) in &m.adaptive_hash_keys {
            w_bytes(&mut out, k);
            w_str(&mut out, f);
            w_u32(&mut out, *p);
        }
        for events in [&m.statements_current, &m.statements_history] {
            w_u32(&mut out, events.len() as u32);
            for e in events.iter() {
                w_u64(&mut out, e.thread_id);
                w_u64(&mut out, e.event_id);
                w_str(&mut out, &e.sql_text);
                w_str(&mut out, &e.digest);
                w_i64(&mut out, e.timestamp);
                w_u64(&mut out, e.rows_examined);
                w_u64(&mut out, e.rows_returned);
            }
        }
        w_u32(&mut out, m.digest_summary.len() as u32);
        for d in &m.digest_summary {
            w_str(&mut out, &d.digest);
            w_u64(&mut out, d.count_star);
            w_u64(&mut out, d.sum_rows_examined);
            w_u64(&mut out, d.sum_rows_returned);
            w_i64(&mut out, d.first_seen);
            w_i64(&mut out, d.last_seen);
        }
        w_u32(&mut out, m.processlist.len() as u32);
        for p in &m.processlist {
            w_u64(&mut out, p.id);
            w_str(&mut out, &p.user);
            w_i64(&mut out, p.connect_time);
            match &p.current_query {
                Some(q) => {
                    out.push(1);
                    w_str(&mut out, q);
                }
                None => out.push(0),
            }
        }
        let ms = &m.metrics;
        w_u32(&mut out, ms.counters.len() as u32);
        for (name, v) in &ms.counters {
            w_str(&mut out, name);
            w_u64(&mut out, *v);
        }
        w_u32(&mut out, ms.gauges.len() as u32);
        for (name, v) in &ms.gauges {
            w_str(&mut out, name);
            w_i64(&mut out, *v);
        }
        w_u32(&mut out, ms.histograms.len() as u32);
        for h in &ms.histograms {
            w_str(&mut out, &h.name);
            w_u64(&mut out, h.count);
            w_u64(&mut out, h.sum);
            w_u32(&mut out, h.buckets.len() as u32);
            for (idx, n) in &h.buckets {
                out.push(*idx);
                w_u64(&mut out, *n);
            }
            w_u32(&mut out, h.exemplars.len() as u32);
            for (idx, tid, val) in &h.exemplars {
                out.push(*idx);
                out.extend_from_slice(&tid.to_le_bytes());
                w_u64(&mut out, *val);
            }
        }
        // The flight-recorder ring, reusing the mdb-trace payload wire
        // format (same bytes the slow-log carver understands).
        w_u32(&mut out, m.query_traces.len() as u32);
        for t in &m.query_traces {
            let mut payload = Vec::new();
            mdb_trace::record::encode_payload(t, &mut payload);
            w_bytes(&mut out, &payload);
        }
        // The zone-map mirrors: per-page plaintext min/max bounds.
        w_u32(&mut out, m.zone_maps.len() as u32);
        for z in &m.zone_maps {
            w_str(&mut out, &z.file);
            w_u32(&mut out, z.page_no);
            w_u64(&mut out, z.rows);
            w_u32(&mut out, z.columns.len() as u32);
            for (col, min, max) in &z.columns {
                w_u32(&mut out, *col as u32);
                w_i64(&mut out, *min);
                w_i64(&mut out, *max);
            }
        }
        // The MVCC version chains: per-row supersession history.
        w_u32(&mut out, m.version_chains.len() as u32);
        for c in &m.version_chains {
            w_str(&mut out, &c.table);
            w_u64(&mut out, c.row_id);
            w_u32(&mut out, c.versions.len() as u32);
            for v in &c.versions {
                out.push(v.state);
                out.push(v.op);
                w_u64(&mut out, v.xmin);
                w_u64(&mut out, v.xmax);
                w_u64(&mut out, v.offset as u64);
                w_bytes(&mut out, &v.row.encode());
            }
        }
        out
    }

    /// Parses an `EDBSNAP6` container.
    pub fn from_bytes(buf: &[u8]) -> DbResult<SystemImage> {
        let mut r = Reader { buf, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(DbError::Storage("not an EDBSNAP6 image".into()));
        }
        let captured_at = r.i64()?;
        let n_files = r.u32()? as usize;
        let mut files = BTreeMap::new();
        for _ in 0..n_files {
            let name = r.str()?;
            let data = r.bytes()?;
            files.insert(name, data);
        }
        let heap = r.bytes()?;
        let mut cached_queries = Vec::new();
        for _ in 0..r.u32()? {
            cached_queries.push(r.str()?);
        }
        let mut cached_pages = Vec::new();
        for _ in 0..r.u32()? {
            let f = r.str()?;
            let p = r.u32()?;
            cached_pages.push((f, p));
        }
        let mut page_access_counts = Vec::new();
        for _ in 0..r.u32()? {
            let f = r.str()?;
            let p = r.u32()?;
            let c = r.u64()?;
            page_access_counts.push(((f, p), c));
        }
        let mut adaptive_hash_keys = Vec::new();
        for _ in 0..r.u32()? {
            let k = r.bytes()?;
            let f = r.str()?;
            let p = r.u32()?;
            adaptive_hash_keys.push((k, (f, p)));
        }
        let read_events = |r: &mut Reader| -> DbResult<Vec<StatementEvent>> {
            let mut out = Vec::new();
            for _ in 0..r.u32()? {
                out.push(StatementEvent {
                    thread_id: r.u64()?,
                    event_id: r.u64()?,
                    sql_text: r.str()?,
                    digest: r.str()?,
                    timestamp: r.i64()?,
                    rows_examined: r.u64()?,
                    rows_returned: r.u64()?,
                    text_ptr: None,
                });
            }
            Ok(out)
        };
        let statements_current = read_events(&mut r)?;
        let statements_history = read_events(&mut r)?;
        let mut digest_summary = Vec::new();
        for _ in 0..r.u32()? {
            digest_summary.push(DigestStats {
                digest: r.str()?,
                count_star: r.u64()?,
                sum_rows_examined: r.u64()?,
                sum_rows_returned: r.u64()?,
                first_seen: r.i64()?,
                last_seen: r.i64()?,
            });
        }
        let mut processlist = Vec::new();
        for _ in 0..r.u32()? {
            let id = r.u64()?;
            let user = r.str()?;
            let connect_time = r.i64()?;
            let current_query = match r.take(1)?[0] {
                0 => None,
                _ => Some(r.str()?),
            };
            processlist.push(ProcessEntry {
                id,
                user,
                connect_time,
                current_query,
            });
        }
        let mut metrics = mdb_telemetry::MetricsSnapshot::default();
        for _ in 0..r.u32()? {
            let name = r.str()?;
            let v = r.u64()?;
            metrics.counters.push((name, v));
        }
        for _ in 0..r.u32()? {
            let name = r.str()?;
            let v = r.i64()?;
            metrics.gauges.push((name, v));
        }
        for _ in 0..r.u32()? {
            let name = r.str()?;
            let count = r.u64()?;
            let sum = r.u64()?;
            let mut buckets = Vec::new();
            for _ in 0..r.u32()? {
                let idx = r.take(1)?[0];
                let n = r.u64()?;
                buckets.push((idx, n));
            }
            let mut exemplars = Vec::new();
            for _ in 0..r.u32()? {
                let idx = r.take(1)?[0];
                let tid = u128::from_le_bytes(r.take(16)?.try_into().unwrap());
                let val = r.u64()?;
                exemplars.push((idx, tid, val));
            }
            metrics.histograms.push(mdb_telemetry::HistogramSnapshot {
                name,
                count,
                sum,
                buckets,
                exemplars,
            });
        }
        let mut query_traces = Vec::new();
        for _ in 0..r.u32()? {
            let payload = r.bytes()?;
            let (t, consumed) = mdb_trace::record::decode_payload(&payload)
                .ok_or_else(|| DbError::Storage("bad trace record in snapshot".into()))?;
            if consumed != payload.len() {
                return Err(DbError::Storage("trailing bytes in trace record".into()));
            }
            query_traces.push(t);
        }
        let mut zone_maps = Vec::new();
        for _ in 0..r.u32()? {
            let file = r.str()?;
            let page_no = r.u32()?;
            let rows = r.u64()?;
            let mut columns = Vec::new();
            for _ in 0..r.u32()? {
                let col = r.u32()? as u16;
                let min = r.i64()?;
                let max = r.i64()?;
                columns.push((col, min, max));
            }
            zone_maps.push(ZoneMapPage {
                file,
                page_no,
                rows,
                columns,
            });
        }
        let mut version_chains = Vec::new();
        for _ in 0..r.u32()? {
            let table = r.str()?;
            let row_id = r.u64()?;
            let mut versions = Vec::new();
            for _ in 0..r.u32()? {
                let state = r.take(1)?[0];
                let op = r.take(1)?[0];
                let xmin = r.u64()?;
                let xmax = r.u64()?;
                let offset = r.u64()? as usize;
                let row = Row::decode(&r.bytes()?)?;
                versions.push(Version {
                    xmin,
                    xmax,
                    state,
                    op,
                    row,
                    offset,
                });
            }
            version_chains.push(VersionChain {
                table,
                row_id,
                versions,
            });
        }
        if r.pos != buf.len() {
            return Err(DbError::Storage("trailing bytes in snapshot".into()));
        }
        Ok(SystemImage {
            disk: DiskImage { files },
            memory: MemoryImage {
                heap,
                cached_queries,
                cached_pages,
                page_access_counts,
                adaptive_hash_keys,
                statements_current,
                statements_history,
                digest_summary,
                processlist,
                metrics,
                query_traces,
                zone_maps,
                version_chains,
            },
            captured_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Db, DbConfig};

    fn image() -> SystemImage {
        let config = DbConfig {
            redo_capacity: 1 << 16,
            undo_capacity: 1 << 16,
            ..DbConfig::default()
        };
        let db = Db::open(config);
        let conn = db.connect("app");
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        conn.execute("INSERT INTO t VALUES (1, 'hello')").unwrap();
        conn.execute("UPDATE t SET v = 'world' WHERE id = 1")
            .unwrap();
        conn.execute("SELECT * FROM t WHERE id = 1").unwrap();
        db.system_image()
    }

    #[test]
    fn round_trips() {
        let img = image();
        let bytes = img.to_bytes();
        let back = SystemImage::from_bytes(&bytes).unwrap();
        assert_eq!(back.captured_at, img.captured_at);
        assert_eq!(back.disk.files, img.disk.files);
        assert_eq!(back.memory.heap, img.memory.heap);
        assert_eq!(back.memory.cached_queries, img.memory.cached_queries);
        assert_eq!(
            back.memory.statements_history.len(),
            img.memory.statements_history.len()
        );
        assert_eq!(
            back.memory.digest_summary.len(),
            img.memory.digest_summary.len()
        );
        assert_eq!(back.memory.processlist.len(), img.memory.processlist.len());
        // Telemetry rides along: the captured registry state (non-empty
        // after the workload) survives the container byte-exactly.
        assert!(!img.memory.metrics.is_zero());
        assert!(img
            .memory
            .metrics
            .counter("sql.table_access.t")
            .is_some_and(|v| v >= 2));
        assert_eq!(back.memory.metrics, img.memory.metrics);
        // The flight-recorder ring rides along too, span trees and all.
        assert!(!img.memory.query_traces.is_empty());
        assert_eq!(back.memory.query_traces, img.memory.query_traces);
        // And so do the zone-map mirrors: the INSERT above touched one
        // heap page, whose synopsis carries the plaintext id range.
        assert!(!img.memory.zone_maps.is_empty());
        assert!(img.memory.zone_maps[0]
            .columns
            .iter()
            .any(|&(_, min, max)| min == 1 && max == 1));
        assert_eq!(back.memory.zone_maps, img.memory.zone_maps);
        // The MVCC version chains: the UPDATE archived one before-image
        // whose full row survives the container.
        assert!(!img.memory.version_chains.is_empty());
        assert_eq!(back.memory.version_chains, img.memory.version_chains);
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(SystemImage::from_bytes(b"not a snapshot").is_err());
        let bytes = image().to_bytes();
        for cut in [8usize, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(SystemImage::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(SystemImage::from_bytes(&extra).is_err(), "trailing byte");
    }
}
