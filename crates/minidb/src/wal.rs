//! Write-ahead logging: circular redo and undo logs, the binlog, and LSNs.
//!
//! This is the §3 machinery. Three log structures, mirroring InnoDB/MySQL:
//!
//! * **Redo log** — fixed-capacity *circular* buffer of physical
//!   after-images `(lsn, txn, op, table, page, slot, bytes)`. Old records
//!   survive until the write head laps them; with the 50 MB default and a
//!   modest write rate that is *weeks* of history (the paper's "16 days").
//! * **Undo log** — circular buffer of logical before-images, used for
//!   rollback and MVCC; same retention arithmetic.
//! * **Binlog** — append-only statement log with UNIX timestamps, required
//!   for replication/point-in-time recovery; never purged except by an
//!   explicit administrative action ([`Wal::purge_binlog`]).
//!
//! Records are framed with a magic number so that both crash recovery and
//! a forensic attacker can *carve* them out of raw bytes — the same
//! technique Frühwirt et al. use against real InnoDB logs.

use mdb_telemetry::{Counter, Registry};

use crate::error::{DbError, DbResult};

/// Frame magic preceding every plaintext log record.
pub const RECORD_MAGIC: u32 = 0xD1DE_C0DE;

/// Frame magic preceding every *sealed* (encrypted) log record — the
/// [`DbConfig::encrypted_wal`](crate::engine::DbConfig::encrypted_wal)
/// on-disk format. A distinct magic keeps recovery honest about which
/// codec a frame needs; the plaintext carvers ([`carve_frames`]) skip
/// sealed frames entirely, which is the point: without the key they
/// yield lengths and positions, nothing else.
pub const ENC_RECORD_MAGIC: u32 = 0x5EA1_C0DE;

/// Default capacity of each circular log (the paper's "default size
/// (50 Mb)").
pub const DEFAULT_LOG_CAPACITY: usize = 50 * 1000 * 1000;

/// On-disk file names (as they appear in a disk snapshot).
pub const REDO_FILE: &str = "ib_logfile0";
/// Undo tablespace file name.
pub const UNDO_FILE: &str = "undo_001";
/// Binlog file name.
pub const BINLOG_FILE: &str = "binlog.000001";
/// Quarantine sidecar for a deposed primary's divergent binlog tail:
/// events acked locally but never replicated, truncated out of the live
/// binlog at fencing time ([`Wal::fence_binlog_tail`]) and preserved
/// here for key-holder recovery. Like every vdisk file it rides along
/// in cold [`crate::snapshot::DiskImage`]s — which is exactly the
/// failover-only artifact E21 carves.
pub const DIVERGENT_FILE: &str = "binlog.divergent";

/// Operation tags shared by redo and undo records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Row insert.
    Insert,
    /// Row update.
    Update,
    /// Row delete.
    Delete,
    /// Transaction commit marker (redo only).
    Commit,
}

impl OpKind {
    fn to_u8(self) -> u8 {
        match self {
            OpKind::Insert => 1,
            OpKind::Update => 2,
            OpKind::Delete => 3,
            OpKind::Commit => 4,
        }
    }

    fn from_u8(b: u8) -> Option<OpKind> {
        match b {
            1 => Some(OpKind::Insert),
            2 => Some(OpKind::Update),
            3 => Some(OpKind::Delete),
            4 => Some(OpKind::Commit),
            _ => None,
        }
    }
}

/// A redo record: physical after-image keyed by placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RedoRecord {
    /// Log sequence number.
    pub lsn: u64,
    /// Transaction id.
    pub txn: u64,
    /// Operation.
    pub op: OpKind,
    /// Table id (catalog-assigned); 0 for commit markers.
    pub table_id: u32,
    /// Page within the table file.
    pub page_no: u32,
    /// Slot within the page.
    pub slot: u16,
    /// Encoded row after-image (empty for deletes and commits).
    pub after: Vec<u8>,
}

impl RedoRecord {
    /// Serializes the record payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(35 + self.after.len());
        out.push(self.op.to_u8());
        out.extend_from_slice(&self.lsn.to_le_bytes());
        out.extend_from_slice(&self.txn.to_le_bytes());
        out.extend_from_slice(&self.table_id.to_le_bytes());
        out.extend_from_slice(&self.page_no.to_le_bytes());
        out.extend_from_slice(&self.slot.to_le_bytes());
        out.extend_from_slice(&(self.after.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.after);
        out
    }

    /// Parses a record payload.
    pub fn decode(buf: &[u8]) -> DbResult<RedoRecord> {
        if buf.len() < 31 {
            return Err(DbError::Storage("short redo record".into()));
        }
        let op = OpKind::from_u8(buf[0]).ok_or_else(|| DbError::Storage("bad redo op".into()))?;
        let lsn = u64::from_le_bytes(buf[1..9].try_into().unwrap());
        let txn = u64::from_le_bytes(buf[9..17].try_into().unwrap());
        let table_id = u32::from_le_bytes(buf[17..21].try_into().unwrap());
        let page_no = u32::from_le_bytes(buf[21..25].try_into().unwrap());
        let slot = u16::from_le_bytes(buf[25..27].try_into().unwrap());
        let alen = u32::from_le_bytes(buf[27..31].try_into().unwrap()) as usize;
        if buf.len() != 31 + alen {
            return Err(DbError::Storage("redo record length mismatch".into()));
        }
        Ok(RedoRecord {
            lsn,
            txn,
            op,
            table_id,
            page_no,
            slot,
            after: buf[31..].to_vec(),
        })
    }
}

/// An undo record: logical before-image keyed by row id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UndoRecord {
    /// Log sequence number.
    pub lsn: u64,
    /// Transaction id.
    pub txn: u64,
    /// Operation being undone.
    pub op: OpKind,
    /// Table id.
    pub table_id: u32,
    /// Row id the operation touched.
    pub row_id: u64,
    /// Encoded row before-image (empty for inserts).
    pub before: Vec<u8>,
}

impl UndoRecord {
    /// Serializes the record payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(33 + self.before.len());
        out.push(self.op.to_u8());
        out.extend_from_slice(&self.lsn.to_le_bytes());
        out.extend_from_slice(&self.txn.to_le_bytes());
        out.extend_from_slice(&self.table_id.to_le_bytes());
        out.extend_from_slice(&self.row_id.to_le_bytes());
        out.extend_from_slice(&(self.before.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.before);
        out
    }

    /// Parses a record payload.
    pub fn decode(buf: &[u8]) -> DbResult<UndoRecord> {
        if buf.len() < 33 {
            return Err(DbError::Storage("short undo record".into()));
        }
        let op = OpKind::from_u8(buf[0]).ok_or_else(|| DbError::Storage("bad undo op".into()))?;
        let lsn = u64::from_le_bytes(buf[1..9].try_into().unwrap());
        let txn = u64::from_le_bytes(buf[9..17].try_into().unwrap());
        let table_id = u32::from_le_bytes(buf[17..21].try_into().unwrap());
        let row_id = u64::from_le_bytes(buf[21..29].try_into().unwrap());
        let blen = u32::from_le_bytes(buf[29..33].try_into().unwrap()) as usize;
        if buf.len() != 33 + blen {
            return Err(DbError::Storage("undo record length mismatch".into()));
        }
        Ok(UndoRecord {
            lsn,
            txn,
            op,
            table_id,
            row_id,
            before: buf[33..].to_vec(),
        })
    }
}

/// A binlog event: the full statement text with its commit timestamp
/// and, when the statement ran under distributed tracing, the trace
/// context that replica apply spans join (the E19 surface: the same
/// 128-bit id lands on every machine the event replicates to).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinlogEvent {
    /// Commit LSN of the transaction.
    pub lsn: u64,
    /// Transaction id.
    pub txn: u64,
    /// UNIX timestamp (seconds) at commit.
    pub timestamp: i64,
    /// Verbatim statement text.
    pub statement: String,
    /// Distributed trace context of the statement that produced the
    /// event (`None` when tracing was off — and the wire bytes are then
    /// identical to the pre-xtrace format).
    pub ctx: Option<mdb_trace::TraceContext>,
}

impl BinlogEvent {
    /// Serializes the event payload (without framing). Events without a
    /// trace context encode byte-identically to the pre-xtrace format;
    /// a context appends exactly
    /// [`TraceContext::WIRE_LEN`](mdb_trace::TraceContext::WIRE_LEN)
    /// trailing bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28 + self.statement.len());
        out.extend_from_slice(&self.lsn.to_le_bytes());
        out.extend_from_slice(&self.txn.to_le_bytes());
        out.extend_from_slice(&self.timestamp.to_le_bytes());
        out.extend_from_slice(&(self.statement.len() as u32).to_le_bytes());
        out.extend_from_slice(self.statement.as_bytes());
        if let Some(ctx) = &self.ctx {
            ctx.encode(&mut out);
        }
        out
    }

    /// Parses an event payload. Both lengths are accepted: the bare
    /// pre-xtrace layout (`ctx = None`) and the layout with the 25-byte
    /// trace-context tail.
    pub fn decode(buf: &[u8]) -> DbResult<BinlogEvent> {
        if buf.len() < 28 {
            return Err(DbError::Storage("short binlog event".into()));
        }
        let lsn = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        let txn = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let timestamp = i64::from_le_bytes(buf[16..24].try_into().unwrap());
        let slen = u32::from_le_bytes(buf[24..28].try_into().unwrap()) as usize;
        let ctx = if buf.len() == 28 + slen {
            None
        } else if buf.len() == 28 + slen + mdb_trace::TraceContext::WIRE_LEN {
            Some(
                mdb_trace::TraceContext::decode(&buf[28 + slen..])
                    .ok_or_else(|| DbError::Storage("bad binlog trace context".into()))?,
            )
        } else {
            return Err(DbError::Storage("binlog event length mismatch".into()));
        };
        let statement = String::from_utf8(buf[28..28 + slen].to_vec())
            .map_err(|_| DbError::Storage("binlog statement not utf8".into()))?;
        Ok(BinlogEvent {
            lsn,
            txn,
            timestamp,
            statement,
            ctx,
        })
    }
}

fn frame_with(magic: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&magic.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Frames a plaintext payload: `magic || len || payload`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    frame_with(RECORD_MAGIC, payload)
}

/// Frames a sealed payload under [`ENC_RECORD_MAGIC`].
pub fn frame_enc(payload: &[u8]) -> Vec<u8> {
    frame_with(ENC_RECORD_MAGIC, payload)
}

fn carve_frames_with(magic: u32, raw: &[u8]) -> Vec<(usize, &[u8])> {
    let magic = magic.to_le_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 8 <= raw.len() {
        if raw[i..i + 4] == magic {
            let len = u32::from_le_bytes(raw[i + 4..i + 8].try_into().unwrap()) as usize;
            if len <= raw.len().saturating_sub(i + 8) && len < (1 << 24) {
                out.push((i, &raw[i + 8..i + 8 + len]));
                i += 8 + len;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Carves plaintext framed payloads out of raw bytes by magic scan —
/// used by both crash recovery and the forensic attacker. Returns
/// `(offset, payload)` pairs in offset order. Overlapping garbage (from
/// circular wrap) is skipped when the length field runs past the buffer.
pub fn carve_frames(raw: &[u8]) -> Vec<(usize, &[u8])> {
    carve_frames_with(RECORD_MAGIC, raw)
}

/// Carves sealed frames ([`ENC_RECORD_MAGIC`]). An attacker can run
/// this too — it yields authenticated ciphertext records that reveal
/// only length, stream id, and sequence number without the key.
pub fn carve_enc_frames(raw: &[u8]) -> Vec<(usize, &[u8])> {
    carve_frames_with(ENC_RECORD_MAGIC, raw)
}

/// Carves frames of *both* magics in offset order. Each entry is
/// `(offset, sealed, payload)`. This is the recovery-side scan for logs
/// that may hold a mix of plaintext and sealed records (for example a
/// relay log written before and after `encrypted_wal` was enabled).
pub fn carve_all_frames(raw: &[u8]) -> Vec<(usize, bool, &[u8])> {
    let plain = RECORD_MAGIC.to_le_bytes();
    let sealed = ENC_RECORD_MAGIC.to_le_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 8 <= raw.len() {
        let is_plain = raw[i..i + 4] == plain;
        if is_plain || raw[i..i + 4] == sealed {
            let len = u32::from_le_bytes(raw[i + 4..i + 8].try_into().unwrap()) as usize;
            if len <= raw.len().saturating_sub(i + 8) && len < (1 << 24) {
                out.push((i, !is_plain, &raw[i + 8..i + 8 + len]));
                i += 8 + len;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// A fixed-capacity circular log buffer. The buffer *is* the on-disk file
/// content; wrap-around overwrites the oldest bytes, exactly bounding how
/// much history a disk snapshot contains.
#[derive(Clone, Debug)]
pub struct CircularLog {
    buf: Vec<u8>,
    write_pos: usize,
    wrapped: bool,
    /// Total bytes ever appended (monotonic).
    pub total_written: u64,
}

impl CircularLog {
    /// Creates a zero-filled log of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 64`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 64, "log capacity too small");
        CircularLog {
            buf: vec![0u8; capacity],
            write_pos: 0,
            wrapped: false,
            total_written: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Whether appending `len` more bytes would wrap to the start.
    pub fn would_wrap(&self, len: usize) -> bool {
        self.write_pos + len > self.buf.len()
    }

    /// Appends a framed record.
    ///
    /// # Panics
    ///
    /// Panics if a single record exceeds the capacity (a config error).
    pub fn append(&mut self, framed: &[u8]) {
        assert!(
            framed.len() <= self.buf.len(),
            "record larger than circular log"
        );
        if self.would_wrap(framed.len()) {
            // Zero the tail so a stale record header there cannot be
            // mis-carved with bytes from two eras.
            self.buf[self.write_pos..].fill(0);
            self.write_pos = 0;
            self.wrapped = true;
        }
        self.buf[self.write_pos..self.write_pos + framed.len()].copy_from_slice(framed);
        self.write_pos += framed.len();
        self.total_written += framed.len() as u64;
    }

    /// Raw file contents (what disk theft yields).
    pub fn raw(&self) -> &[u8] {
        &self.buf
    }

    /// Whether the log has wrapped at least once.
    pub fn has_wrapped(&self) -> bool {
        self.wrapped
    }
}

/// Pre-resolved telemetry handles; absent until a [`Registry`] is
/// attached. Clones share the underlying cells, matching `Wal: Clone`.
#[derive(Clone)]
struct WalMetrics {
    redo_bytes: Counter,
    redo_wraps: Counter,
    undo_bytes: Counter,
    undo_wraps: Counter,
    binlog_bytes: Counter,
    binlog_events: Counter,
    fsyncs: Counter,
}

impl std::fmt::Debug for WalMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WalMetrics { .. }")
    }
}

/// The sealing state of an encrypted WAL: the (fleet-shared) log key
/// plus this node's origin id. Wrapped so `Debug` output (engine dumps,
/// test failures) never prints key material.
#[derive(Clone)]
pub struct WalCrypto {
    key: edb_crypto::Key,
    origin: u64,
}

impl WalCrypto {
    /// Builds the sealing state from raw key bytes and the sealing
    /// node's server id. The origin feeds per-node subkey derivation:
    /// a fleet sharing one `wal_key` must never reuse a keystream
    /// across nodes that seal the same `(stream, seq)` positions.
    pub fn new(key: [u8; 32], origin: u64) -> Self {
        WalCrypto {
            key: edb_crypto::Key(key),
            origin,
        }
    }

    /// Seals one locally-originated record payload at log position
    /// `(stream, seq)`.
    pub fn seal(&self, stream: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
        edb_crypto::logenc::seal(&self.key, self.origin, stream, seq, payload)
    }

    /// Opens a sealed record from *any* origin under the shared key,
    /// returning `(origin, stream, seq, plaintext)`.
    pub fn open(&self, sealed: &[u8]) -> Option<(u64, u8, u64, Vec<u8>)> {
        edb_crypto::logenc::open(&self.key, sealed).ok()
    }
}

impl std::fmt::Debug for WalCrypto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("WalCrypto { key: <redacted> }")
    }
}

/// The WAL subsystem: LSN allocator, both circular logs, and the binlog.
#[derive(Clone, Debug)]
pub struct Wal {
    next_lsn: u64,
    /// Redo log (circular).
    pub redo: CircularLog,
    /// Undo log (circular).
    pub undo: CircularLog,
    binlog: Vec<u8>,
    /// Whether the binlog is enabled (off on a fresh install, on in any
    /// production/replicated deployment — see §3).
    pub binlog_enabled: bool,
    /// GTID-style sequence number of the *next* binlog event. Monotonic
    /// for the life of the server; replication positions are expressed
    /// in this sequence space.
    binlog_next_seq: u64,
    /// Events with sequence `< binlog_purged_seq` were dropped by
    /// [`Wal::purge_binlog`] and can no longer be served to replicas.
    binlog_purged_seq: u64,
    /// When set, every appended record is sealed (BigFoot-style
    /// encrypted WAL) and the carvers transparently open sealed frames.
    crypto: Option<WalCrypto>,
    /// Mixed-era escape hatch: with encryption armed, still accept
    /// plaintext-framed binlog records (a plaintext primary feeding an
    /// encrypted replica, or a log written before `encrypted_wal` was
    /// turned on). Off by default — an encrypted node otherwise rejects
    /// unauthenticated plaintext instead of silently applying it.
    plaintext_fallback: bool,
    metrics: Option<WalMetrics>,
}

impl Wal {
    /// Creates the WAL with the given circular-log capacities.
    pub fn new(redo_capacity: usize, undo_capacity: usize, binlog_enabled: bool) -> Self {
        Wal {
            next_lsn: 1,
            redo: CircularLog::new(redo_capacity),
            undo: CircularLog::new(undo_capacity),
            binlog: Vec::new(),
            binlog_enabled,
            binlog_next_seq: 0,
            binlog_purged_seq: 0,
            crypto: None,
            plaintext_fallback: false,
            metrics: None,
        }
    }

    /// Arms log encryption: every subsequent append is sealed under
    /// `key` with this node's `origin` (server id) mixed into the
    /// subkey, and recovery/cursor reads open sealed frames with it.
    pub fn set_crypto(&mut self, key: [u8; 32], origin: u64) {
        self.crypto = Some(WalCrypto::new(key, origin));
    }

    /// Allows an encrypted WAL to also decode plaintext-framed binlog
    /// records (mixed-era logs). No effect while encryption is off.
    pub fn set_plaintext_fallback(&mut self, on: bool) {
        self.plaintext_fallback = on;
    }

    /// Whether log records are being sealed.
    pub fn encrypted(&self) -> bool {
        self.crypto.is_some()
    }

    /// Registers this WAL's counters on `registry`.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = Some(WalMetrics {
            redo_bytes: registry.counter("wal.redo.bytes"),
            redo_wraps: registry.counter("wal.redo.wraps"),
            undo_bytes: registry.counter("wal.undo.bytes"),
            undo_wraps: registry.counter("wal.undo.wraps"),
            binlog_bytes: registry.counter("wal.binlog.bytes"),
            binlog_events: registry.counter("wal.binlog.events"),
            fsyncs: registry.counter("wal.fsyncs"),
        });
    }

    /// Counts one simulated fsync (commit and checkpoint durability
    /// points; the engine calls this — the logs themselves are in-memory).
    pub fn record_fsync(&self) {
        if let Some(m) = &self.metrics {
            m.fsyncs.inc();
        }
    }

    /// Allocates the next LSN.
    pub fn alloc_lsn(&mut self) -> u64 {
        let l = self.next_lsn;
        self.next_lsn += 1;
        l
    }

    /// Current LSN high-water mark.
    pub fn current_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Frames a record payload at log position `(stream, seq)` in this
    /// WAL's on-disk format: sealed when encryption is armed, plaintext
    /// otherwise.
    fn frame_record(&self, stream: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
        match &self.crypto {
            Some(c) => frame_enc(&c.seal(stream, seq, payload)),
            None => frame(payload),
        }
    }

    /// Appends a redo record. Returns `true` if the append wrapped the log
    /// (the engine must have checkpointed *before* calling in that case;
    /// use [`Self::redo_would_wrap`]).
    pub fn append_redo(&mut self, rec: &RedoRecord) -> bool {
        let framed = self.frame_record(edb_crypto::logenc::STREAM_REDO, rec.lsn, &rec.encode());
        let wraps = self.redo.would_wrap(framed.len());
        self.redo.append(&framed);
        if let Some(m) = &self.metrics {
            m.redo_bytes.add(framed.len() as u64);
            if wraps {
                m.redo_wraps.inc();
            }
        }
        wraps
    }

    /// Whether appending this redo record would wrap the circular log.
    pub fn redo_would_wrap(&self, rec: &RedoRecord) -> bool {
        self.redo.would_wrap(
            self.frame_record(edb_crypto::logenc::STREAM_REDO, rec.lsn, &rec.encode())
                .len(),
        )
    }

    /// Appends an undo record. Undo records share LSN values with their
    /// redo counterparts; the stream id keeps the sealing nonces apart.
    pub fn append_undo(&mut self, rec: &UndoRecord) {
        let framed = self.frame_record(edb_crypto::logenc::STREAM_UNDO, rec.lsn, &rec.encode());
        let wraps = self.undo.would_wrap(framed.len());
        self.undo.append(&framed);
        if let Some(m) = &self.metrics {
            m.undo_bytes.add(framed.len() as u64);
            if wraps {
                m.undo_wraps.inc();
            }
        }
    }

    /// Appends a binlog event (no-op when the binlog is disabled). The
    /// sealing nonce is the event's GTID-style sequence number — commit
    /// LSNs are shared by every statement of a transaction, sequence
    /// numbers are not.
    pub fn append_binlog(&mut self, ev: &BinlogEvent) {
        if self.binlog_enabled {
            let framed = self.frame_record(
                edb_crypto::logenc::STREAM_BINLOG,
                self.binlog_next_seq,
                &ev.encode(),
            );
            self.binlog.extend_from_slice(&framed);
            self.binlog_next_seq += 1;
            if let Some(m) = &self.metrics {
                m.binlog_bytes.add(framed.len() as u64);
                m.binlog_events.inc();
            }
        }
    }

    /// Raw binlog bytes.
    pub fn binlog_raw(&self) -> &[u8] {
        &self.binlog
    }

    /// Administrative `PURGE BINARY LOGS`: drops all events up to now.
    /// Also resets the `wal.binlog.*` counters — they track the *live*
    /// binlog volume, and a registry that keeps reporting purged bytes
    /// would overstate what a scrub actually removed (E12).
    pub fn purge_binlog(&mut self) {
        self.binlog.clear();
        self.binlog_purged_seq = self.binlog_next_seq;
        if let Some(m) = &self.metrics {
            m.binlog_bytes.reset();
            m.binlog_events.reset();
        }
    }

    /// Divergence fencing (the binlog half): removes every event with
    /// sequence `>= from_seq` from the live binlog and returns the
    /// removed frames as `(seq, sealed, payload)` triples, oldest
    /// first. The caller (the failover coordinator) quarantines them —
    /// this log can no longer serve them to anyone, and the next event
    /// this node logs (after rejoining as a replica) reuses the fenced
    /// sequence range under the *new* primary's timeline.
    ///
    /// The `wal.binlog.*` counters are re-derived from what actually
    /// remains, for the same reason [`Wal::purge_binlog`] resets them:
    /// they describe the live log, not its history.
    pub fn fence_binlog_tail(&mut self, from_seq: u64) -> Vec<(u64, bool, Vec<u8>)> {
        let start = from_seq.max(self.binlog_purged_seq);
        if start >= self.binlog_next_seq {
            return Vec::new();
        }
        let skip = (start - self.binlog_purged_seq) as usize;
        let mut fenced = Vec::new();
        let mut cut_at = self.binlog.len();
        for (i, (off, sealed, payload)) in carve_all_frames(&self.binlog).into_iter().enumerate() {
            if i < skip {
                continue;
            }
            if fenced.is_empty() {
                cut_at = off;
            }
            fenced.push((start + fenced.len() as u64, sealed, payload.to_vec()));
        }
        self.binlog.truncate(cut_at);
        self.binlog_next_seq = start;
        if let Some(m) = &self.metrics {
            m.binlog_bytes.reset();
            m.binlog_bytes.add(self.binlog.len() as u64);
            m.binlog_events.reset();
            m.binlog_events
                .add(self.binlog_next_seq - self.binlog_purged_seq);
        }
        fenced
    }

    // ================= binlog cursor (replication) =================

    /// Sequence number the next appended binlog event will get — the
    /// primary's end-of-binlog position.
    pub fn binlog_next_seq(&self) -> u64 {
        self.binlog_next_seq
    }

    /// Oldest sequence number still present in the binlog. Events below
    /// this were purged and cannot be streamed to a replica anymore.
    pub fn binlog_purged_seq(&self) -> u64 {
        self.binlog_purged_seq
    }

    /// Reads binlog events starting at GTID-style sequence `from_seq`,
    /// up to `max` of them. Returns `(events, next_seq)` where each
    /// event carries its sequence number and `next_seq` is the position
    /// to resume from. When `from_seq` predates the purge horizon the
    /// cursor silently starts at the horizon — the caller compares the
    /// first returned sequence against its request to detect the gap.
    pub fn binlog_events_from(&self, from_seq: u64, max: usize) -> (Vec<(u64, BinlogEvent)>, u64) {
        let start = from_seq.max(self.binlog_purged_seq);
        let mut out = Vec::new();
        let mut next = start;
        let skip = (start - self.binlog_purged_seq) as usize;
        for (i, (_, sealed, payload)) in carve_all_frames(&self.binlog).into_iter().enumerate() {
            if i < skip {
                continue;
            }
            if out.len() >= max {
                break;
            }
            if let Ok(ev) = self.decode_binlog_frame(sealed, payload) {
                out.push((next, ev));
                next += 1;
            }
        }
        (out, next)
    }

    /// Cursor read over the binlog returning *raw frame payloads* — the
    /// on-disk bytes between the framing, each tagged with whether its
    /// frame was sealed (`(seq, sealed, payload)`). This is what the
    /// replication streamer ships: with `encrypted_wal` on, the wire and
    /// the replica's relay log carry ciphertext end-to-end, and only the
    /// replica's apply loop (holding the key) opens them. The sealed bit
    /// travels explicitly so downstream consumers never classify a
    /// payload by probing whether it happens to parse.
    pub fn binlog_frames_from(
        &self,
        from_seq: u64,
        max: usize,
    ) -> (Vec<(u64, bool, Vec<u8>)>, u64) {
        let start = from_seq.max(self.binlog_purged_seq);
        let mut out = Vec::new();
        let mut next = start;
        let skip = (start - self.binlog_purged_seq) as usize;
        for (i, (_, sealed, payload)) in carve_all_frames(&self.binlog).into_iter().enumerate() {
            if i < skip {
                continue;
            }
            if out.len() >= max {
                break;
            }
            out.push((next, sealed, payload.to_vec()));
            next += 1;
        }
        (out, next)
    }

    /// Decodes one binlog frame payload whose framing said `sealed`.
    ///
    /// Strict by default on an encrypted WAL: a sealed payload that
    /// fails authentication is an error (never retried as plaintext),
    /// and a plaintext-framed payload is rejected outright unless
    /// [`Wal::set_plaintext_fallback`] explicitly allowed mixed-era
    /// logs — otherwise an attacker could inject unauthenticated
    /// plaintext frames into the wire stream or relay log and have an
    /// encrypted replica apply them, MAC never consulted.
    pub fn decode_binlog_frame(&self, sealed: bool, payload: &[u8]) -> DbResult<BinlogEvent> {
        match (&self.crypto, sealed) {
            (Some(c), true) => {
                let (_origin, stream, _seq, plain) = c.open(payload).ok_or_else(|| {
                    DbError::Storage("sealed binlog frame failed authentication".into())
                })?;
                if stream != edb_crypto::logenc::STREAM_BINLOG {
                    return Err(DbError::Storage("sealed frame from wrong stream".into()));
                }
                BinlogEvent::decode(&plain)
            }
            (None, true) => Err(DbError::Storage(
                "sealed binlog frame but no log key configured".into(),
            )),
            (Some(_), false) if !self.plaintext_fallback => Err(DbError::Storage(
                "plaintext binlog frame rejected: encrypted_wal is strict \
                 (set wal_plaintext_fallback for mixed-era logs)"
                    .into(),
            )),
            (_, false) => BinlogEvent::decode(payload),
        }
    }

    /// Opens every sealed frame in `raw` that belongs to `stream`,
    /// returning decrypted payloads in offset order.
    fn open_stream(&self, raw: &[u8], stream: u8) -> Vec<Vec<u8>> {
        let Some(c) = &self.crypto else {
            return Vec::new();
        };
        carve_enc_frames(raw)
            .into_iter()
            .filter_map(|(_, p)| c.open(p))
            .filter(|(_, s, _, _)| *s == stream)
            .map(|(_, _, _, plain)| plain)
            .collect()
    }

    /// Parses every intact redo record currently in the circular buffer,
    /// sorted by LSN (recovery's view; also the attacker's — though
    /// without the key the attacker decodes only plaintext-era frames).
    pub fn carve_redo(&self) -> Vec<RedoRecord> {
        let mut recs: Vec<RedoRecord> = carve_frames(self.redo.raw())
            .into_iter()
            .filter_map(|(_, p)| RedoRecord::decode(p).ok())
            .collect();
        recs.extend(
            self.open_stream(self.redo.raw(), edb_crypto::logenc::STREAM_REDO)
                .iter()
                .filter_map(|p| RedoRecord::decode(p).ok()),
        );
        recs.sort_by_key(|r| r.lsn);
        recs
    }

    /// Parses every intact undo record, sorted by LSN.
    pub fn carve_undo(&self) -> Vec<UndoRecord> {
        let mut recs: Vec<UndoRecord> = carve_frames(self.undo.raw())
            .into_iter()
            .filter_map(|(_, p)| UndoRecord::decode(p).ok())
            .collect();
        recs.extend(
            self.open_stream(self.undo.raw(), edb_crypto::logenc::STREAM_UNDO)
                .iter()
                .filter_map(|p| UndoRecord::decode(p).ok()),
        );
        recs.sort_by_key(|r| r.lsn);
        recs
    }

    /// Parses every binlog event in order (`mysqlbinlog`'s job — with
    /// the key when the binlog is sealed).
    pub fn carve_binlog(&self) -> Vec<BinlogEvent> {
        carve_all_frames(&self.binlog)
            .into_iter()
            .filter_map(|(_, sealed, p)| self.decode_binlog_frame(sealed, p).ok())
            .collect()
    }

    /// Sets the LSN allocator after recovery scanned existing logs.
    pub fn set_next_lsn(&mut self, next: u64) {
        self.next_lsn = self.next_lsn.max(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binlog_ev(seq: u64) -> BinlogEvent {
        BinlogEvent {
            lsn: seq,
            txn: seq,
            timestamp: 1_700_000_000 + seq as i64,
            statement: format!("INSERT INTO t VALUES ({seq})"),
            ctx: None,
        }
    }

    #[test]
    fn fence_binlog_tail_truncates_and_returns_the_tail() {
        let mut wal = Wal::new(4096, 4096, true);
        for s in 0..6 {
            wal.append_binlog(&binlog_ev(s));
        }
        assert_eq!(wal.binlog_next_seq(), 6);

        let fenced = wal.fence_binlog_tail(4);
        assert_eq!(fenced.len(), 2);
        assert_eq!(fenced[0].0, 4);
        assert_eq!(fenced[1].0, 5);
        // The live log now ends exactly at the promoted cursor…
        assert_eq!(wal.binlog_next_seq(), 4);
        let live = wal.carve_binlog();
        assert_eq!(live.len(), 4);
        assert_eq!(live[3].statement, "INSERT INTO t VALUES (3)");
        // …and the fenced payloads decode to the removed statements.
        let ev = wal.decode_binlog_frame(fenced[1].1, &fenced[1].2).unwrap();
        assert_eq!(ev.statement, "INSERT INTO t VALUES (5)");
        // Fencing at or past the end is a no-op.
        assert!(wal.fence_binlog_tail(4).is_empty());
        assert!(wal.fence_binlog_tail(99).is_empty());
    }

    #[test]
    fn fence_binlog_tail_keeps_sealed_frames_sealed() {
        let mut wal = Wal::new(4096, 4096, true);
        wal.set_crypto([9u8; 32], 1);
        for s in 0..3 {
            wal.append_binlog(&binlog_ev(s));
        }
        let fenced = wal.fence_binlog_tail(1);
        assert_eq!(fenced.len(), 2);
        assert!(fenced.iter().all(|(_, sealed, _)| *sealed));
        // Ciphertext: the raw payloads carry no statement text.
        assert!(fenced
            .iter()
            .all(|(_, _, p)| !p.windows(6).any(|w| w == b"INSERT")));
        // But the key holder still opens them.
        let ev = wal.decode_binlog_frame(true, &fenced[0].2).unwrap();
        assert_eq!(ev.statement, "INSERT INTO t VALUES (1)");
    }

    fn redo(lsn: u64, after: &[u8]) -> RedoRecord {
        RedoRecord {
            lsn,
            txn: lsn,
            op: OpKind::Insert,
            table_id: 1,
            page_no: 0,
            slot: 0,
            after: after.to_vec(),
        }
    }

    #[test]
    fn record_round_trips() {
        let r = redo(7, b"row-bytes");
        assert_eq!(RedoRecord::decode(&r.encode()).unwrap(), r);
        let u = UndoRecord {
            lsn: 9,
            txn: 3,
            op: OpKind::Update,
            table_id: 2,
            row_id: 55,
            before: b"before-image".to_vec(),
        };
        assert_eq!(UndoRecord::decode(&u.encode()).unwrap(), u);
        let b = BinlogEvent {
            lsn: 10,
            txn: 3,
            timestamp: 1_700_000_000,
            statement: "INSERT INTO t VALUES (1)".into(),
            ctx: None,
        };
        assert_eq!(BinlogEvent::decode(&b.encode()).unwrap(), b);
        // With a trace context the event grows by exactly 25 bytes and
        // round-trips; the bare encoding is byte-identical to v1.
        let traced = BinlogEvent {
            ctx: Some(mdb_trace::TraceContext {
                trace_id: 0xFEED_FACE_CAFE_F00D,
                span_id: 0x1234,
                sampled: true,
            }),
            ..b.clone()
        };
        let enc = traced.encode();
        assert_eq!(
            enc.len(),
            b.encode().len() + mdb_trace::TraceContext::WIRE_LEN
        );
        assert_eq!(BinlogEvent::decode(&enc).unwrap(), traced);
        assert!(enc.starts_with(&b.encode()));
        // A truncated context tail is rejected, not misparsed.
        assert!(BinlogEvent::decode(&enc[..enc.len() - 3]).is_err());
    }

    #[test]
    fn decode_rejects_corruption() {
        let r = redo(7, b"row");
        let enc = r.encode();
        assert!(RedoRecord::decode(&enc[..enc.len() - 1]).is_err());
        let mut bad = enc.clone();
        bad[0] = 99;
        assert!(RedoRecord::decode(&bad).is_err());
    }

    #[test]
    fn carve_scans_through_garbage() {
        let mut raw = vec![0xAAu8; 13];
        raw.extend_from_slice(&frame(b"first"));
        raw.extend_from_slice(&[1, 2, 3]);
        raw.extend_from_slice(&frame(b"second"));
        let found = carve_frames(&raw);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].1, b"first");
        assert_eq!(found[1].1, b"second");
    }

    #[test]
    fn circular_log_wraps_and_bounds_history() {
        let mut log = CircularLog::new(256);
        // Each framed record: 8 + payload.
        for i in 0u64..100 {
            let rec = frame(&i.to_le_bytes());
            log.append(&rec);
        }
        assert!(log.has_wrapped());
        let frames = carve_frames(log.raw());
        // Only the newest ~16 records survive in 256 bytes.
        assert!(frames.len() <= 16);
        let newest: Vec<u64> = frames
            .iter()
            .map(|(_, p)| u64::from_le_bytes((*p).try_into().unwrap()))
            .collect();
        assert!(newest.contains(&99), "newest record must be present");
        assert!(!newest.contains(&0), "oldest record must be gone");
    }

    #[test]
    fn wal_end_to_end_carving() {
        let mut wal = Wal::new(4096, 4096, true);
        for i in 0..10u64 {
            let lsn = wal.alloc_lsn();
            wal.append_redo(&redo(lsn, format!("row{i}").as_bytes()));
            wal.append_undo(&UndoRecord {
                lsn,
                txn: i,
                op: OpKind::Insert,
                table_id: 1,
                row_id: i,
                before: Vec::new(),
            });
            wal.append_binlog(&BinlogEvent {
                lsn,
                txn: i,
                timestamp: 1000 + i as i64,
                statement: format!("INSERT INTO t VALUES ({i})"),
                ctx: None,
            });
        }
        assert_eq!(wal.carve_redo().len(), 10);
        assert_eq!(wal.carve_undo().len(), 10);
        let bl = wal.carve_binlog();
        assert_eq!(bl.len(), 10);
        assert_eq!(bl[9].statement, "INSERT INTO t VALUES (9)");
        assert_eq!(bl[9].timestamp, 1009);
        wal.purge_binlog();
        assert!(wal.carve_binlog().is_empty());
        // Redo/undo survive a binlog purge.
        assert_eq!(wal.carve_redo().len(), 10);
    }

    #[test]
    fn disabled_binlog_records_nothing() {
        let mut wal = Wal::new(1024, 1024, false);
        wal.append_binlog(&BinlogEvent {
            lsn: 1,
            txn: 1,
            timestamp: 0,
            statement: "INSERT INTO t VALUES (1)".into(),
            ctx: None,
        });
        assert!(wal.carve_binlog().is_empty());
    }

    #[test]
    fn binlog_cursor_pages_and_survives_purge() {
        let mut wal = Wal::new(1024, 1024, true);
        for i in 0..6u64 {
            wal.append_binlog(&BinlogEvent {
                lsn: i,
                txn: i,
                timestamp: i as i64,
                statement: format!("INSERT INTO t VALUES ({i})"),
                ctx: None,
            });
        }
        assert_eq!(wal.binlog_next_seq(), 6);
        assert_eq!(wal.binlog_purged_seq(), 0);
        // Paged reads resume where the previous page ended.
        let (page1, next) = wal.binlog_events_from(0, 4);
        assert_eq!(page1.len(), 4);
        assert_eq!(next, 4);
        let (page2, next) = wal.binlog_events_from(next, 4);
        assert_eq!(page2.len(), 2);
        assert_eq!(next, 6);
        assert_eq!(page2[0].0, 4, "events carry their sequence numbers");
        // Purge advances the horizon; sequence numbers keep counting.
        wal.purge_binlog();
        assert_eq!(wal.binlog_purged_seq(), 6);
        assert!(wal.binlog_events_from(0, 10).0.is_empty());
        wal.append_binlog(&BinlogEvent {
            lsn: 7,
            txn: 7,
            timestamp: 7,
            statement: "INSERT INTO t VALUES (7)".into(),
            ctx: None,
        });
        // A cursor from before the purge lands on the horizon, not on a
        // mis-numbered event.
        let (evs, next) = wal.binlog_events_from(2, 10);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].0, 6);
        assert_eq!(next, 7);
    }

    #[test]
    fn purge_resets_binlog_counters() {
        let registry = Registry::new();
        let mut wal = Wal::new(1024, 1024, true);
        wal.attach_telemetry(&registry);
        for i in 0..5u64 {
            wal.append_binlog(&BinlogEvent {
                lsn: i,
                txn: i,
                timestamp: 0,
                statement: "INSERT INTO t VALUES (1)".into(),
                ctx: None,
            });
        }
        assert_eq!(registry.snapshot().counter("wal.binlog.events"), Some(5));
        assert!(registry.snapshot().counter("wal.binlog.bytes").unwrap() > 0);
        wal.purge_binlog();
        // The registry tracks the live binlog, not its purged history.
        assert_eq!(registry.snapshot().counter("wal.binlog.events"), Some(0));
        assert_eq!(registry.snapshot().counter("wal.binlog.bytes"), Some(0));
    }

    #[test]
    fn encrypted_wal_recovers_with_key_and_defeats_plaintext_carving() {
        let mut wal = Wal::new(8192, 8192, true);
        wal.set_crypto([0x5A; 32], 1);
        assert!(wal.encrypted());
        for i in 0..8u64 {
            let lsn = wal.alloc_lsn();
            wal.append_redo(&redo(lsn, format!("secret-row-{i}").as_bytes()));
            wal.append_undo(&UndoRecord {
                lsn,
                txn: i,
                op: OpKind::Insert,
                table_id: 1,
                row_id: i,
                before: format!("before-{i}").into_bytes(),
            });
            wal.append_binlog(&BinlogEvent {
                lsn,
                txn: i,
                timestamp: 2000 + i as i64,
                statement: format!("INSERT INTO t VALUES ({i})"),
                ctx: None,
            });
        }
        // The key holder (recovery, replication) sees everything.
        assert_eq!(wal.carve_redo().len(), 8);
        assert_eq!(wal.carve_undo().len(), 8);
        let bl = wal.carve_binlog();
        assert_eq!(bl.len(), 8);
        assert_eq!(bl[7].statement, "INSERT INTO t VALUES (7)");
        let (evs, next) = wal.binlog_events_from(3, 10);
        assert_eq!(evs.len(), 5);
        assert_eq!(next, 8);
        // The keyless carver (the E2/E3 attacker) decodes nothing, and
        // no plaintext survives anywhere in the raw files.
        assert!(carve_frames(wal.redo.raw()).is_empty());
        assert!(carve_frames(wal.undo.raw()).is_empty());
        assert!(carve_frames(wal.binlog_raw()).is_empty());
        for raw in [wal.redo.raw(), wal.undo.raw(), wal.binlog_raw()] {
            assert!(!raw
                .windows(6)
                .any(|w| w == b"secret" || w == b"INSERT" || w == b"before"));
        }
        // Sealed frames are still *visible* as ciphertext records.
        assert_eq!(carve_enc_frames(wal.binlog_raw()).len(), 8);
    }

    #[test]
    fn sealed_frames_reject_wrong_key_and_cross_stream_splice() {
        let mut wal = Wal::new(4096, 4096, true);
        wal.set_crypto([1; 32], 1);
        let lsn = wal.alloc_lsn();
        wal.append_redo(&redo(lsn, b"payload"));
        let sealed = carve_enc_frames(wal.redo.raw())[0].1.to_vec();
        // Wrong key: open fails, whatever origin the opener claims.
        assert!(WalCrypto::new([2; 32], 1).open(&sealed).is_none());
        // Right key, but a redo frame is not a binlog frame.
        assert!(wal.decode_binlog_frame(true, &sealed).is_err());
    }

    #[test]
    fn fleet_peers_open_each_others_frames_without_keystream_reuse() {
        // Primary (origin 1) and replica (origin 2) share one key and
        // both seal STREAM_BINLOG seq 0 with different statements of
        // equal length — exactly the cross-node collision the nonce
        // scheme must survive.
        let key = [0x44u8; 32];
        let mk = |origin: u64, stmt: &str| {
            let mut w = Wal::new(1024, 1024, true);
            w.set_crypto(key, origin);
            w.append_binlog(&BinlogEvent {
                lsn: 1,
                txn: 1,
                timestamp: 100 + origin as i64,
                statement: stmt.into(),
                ctx: None,
            });
            w
        };
        let a = mk(1, "INSERT INTO t VALUES (111111)");
        let b = mk(2, "INSERT INTO u VALUES (222222)");
        let fa = carve_enc_frames(a.binlog_raw())[0].1;
        let fb = carve_enc_frames(b.binlog_raw())[0].1;
        use edb_crypto::logenc::{HEADER_LEN, TAG_LEN};
        let body_a = &fa[HEADER_LEN..fa.len() - TAG_LEN];
        let body_b = &fb[HEADER_LEN..fb.len() - TAG_LEN];
        let pa = a.carve_binlog()[0].encode();
        let pb = b.carve_binlog()[0].encode();
        let ct_xor: Vec<u8> = body_a.iter().zip(body_b).map(|(x, y)| x ^ y).collect();
        let pt_xor: Vec<u8> = pa.iter().zip(&pb).map(|(x, y)| x ^ y).collect();
        assert_ne!(
            &ct_xor[..pt_xor.len().min(ct_xor.len())],
            &pt_xor[..pt_xor.len().min(ct_xor.len())],
            "same (stream, seq) on two nodes reused a keystream"
        );
        // Either key holder still opens the other node's frame (shipped
        // binlog frames stay under the primary's sealing).
        assert!(b.decode_binlog_frame(true, fa).is_ok());
        assert!(a.decode_binlog_frame(true, fb).is_ok());
    }

    #[test]
    fn encrypted_wal_rejects_plaintext_frames_unless_fallback() {
        let mut wal = Wal::new(1024, 1024, true);
        wal.set_crypto([6; 32], 1);
        let ev = BinlogEvent {
            lsn: 1,
            txn: 1,
            timestamp: 7,
            statement: "INSERT INTO t VALUES (99)".into(),
            ctx: None,
        };
        // An injected plaintext frame must not apply on a strict
        // encrypted node — the MAC has to gate every applied event.
        let err = wal.decode_binlog_frame(false, &ev.encode()).unwrap_err();
        assert!(err.to_string().contains("plaintext binlog frame rejected"));
        // A sealed frame that fails auth is a distinct error, not a
        // fall-through to plaintext parsing.
        let mut w2 = Wal::new(1024, 1024, true);
        w2.set_crypto([7; 32], 2);
        w2.append_binlog(&ev);
        let mut sealed = carve_enc_frames(w2.binlog_raw())[0].1.to_vec();
        *sealed.last_mut().unwrap() ^= 1;
        let err = wal.decode_binlog_frame(true, &sealed).unwrap_err();
        assert!(err.to_string().contains("failed authentication"));
        // The explicit mixed-era escape hatch restores the old lenient
        // behaviour for plaintext frames only.
        wal.set_plaintext_fallback(true);
        assert_eq!(wal.decode_binlog_frame(false, &ev.encode()).unwrap(), ev);
        assert!(wal.decode_binlog_frame(true, &sealed).is_err());
        // A plaintext node asked to decode a sealed frame errors too.
        let plain_wal = Wal::new(1024, 1024, true);
        let good = carve_enc_frames(w2.binlog_raw())[0].1;
        assert!(plain_wal.decode_binlog_frame(true, good).is_err());
    }

    #[test]
    fn binlog_frames_round_trip_raw_payloads() {
        for encrypted in [false, true] {
            let mut wal = Wal::new(4096, 4096, true);
            if encrypted {
                wal.set_crypto([9; 32], 1);
            }
            for i in 0..4u64 {
                wal.append_binlog(&BinlogEvent {
                    lsn: i,
                    txn: i,
                    timestamp: i as i64,
                    statement: format!("INSERT INTO t VALUES ({i})"),
                    ctx: None,
                });
            }
            let (frames, next) = wal.binlog_frames_from(1, 10);
            assert_eq!(next, 4);
            assert_eq!(frames.len(), 3);
            for (seq, sealed, payload) in &frames {
                // The cursor reports each frame's on-disk codec.
                assert_eq!(*sealed, encrypted);
                let ev = wal.decode_binlog_frame(*sealed, payload).unwrap();
                assert_eq!(ev.statement, format!("INSERT INTO t VALUES ({seq})"));
                // Sealed payloads are opaque without the key.
                assert_eq!(BinlogEvent::decode(payload).is_ok(), !encrypted);
            }
        }
    }

    #[test]
    fn lsn_monotonic() {
        let mut wal = Wal::new(1024, 1024, true);
        let a = wal.alloc_lsn();
        let b = wal.alloc_lsn();
        assert!(b > a);
        wal.set_next_lsn(100);
        assert!(wal.alloc_lsn() >= 100);
        wal.set_next_lsn(5); // Never regresses.
        assert!(wal.alloc_lsn() > 100);
    }
}
