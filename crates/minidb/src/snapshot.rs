//! Snapshot extraction: byte- and structure-exact images of the DBMS's
//! persistent and volatile state, i.e. what the paper's four attack
//! vectors obtain (Figure 1).
//!
//! The `snapshot-attack` crate applies a threat model *on top* of these
//! images — disk theft sees only [`DiskImage`], a VM-image leak sees both,
//! and so on. This module just extracts everything faithfully.

use std::collections::BTreeMap;

use crate::engine::Db;
use crate::observability::{DigestStats, ProcessEntry, StatementEvent};
use crate::storage::bufpool::PageKey;
use crate::wal::{BINLOG_FILE, REDO_FILE, UNDO_FILE};

/// One page's zone-map synopsis as captured in a memory image: the
/// per-page plaintext value ranges the scan pruner keeps hot. Row
/// payloads may be ciphertext; these min/max bounds never are.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneMapPage {
    /// Tablespace file the page belongs to.
    pub file: String,
    /// Page number within the file.
    pub page_no: u32,
    /// Live rows the synopsis reflects.
    pub rows: u64,
    /// Per-column `(ordinal, min, max)` bounds.
    pub columns: Vec<(u16, i64, i64)>,
}

/// One row's archived version chain as captured in a memory image: the
/// supersession history the MVCC layer keeps so old snapshots can still
/// read. Every entry is a full before-image with its `(xmin, xmax)`
/// lifetime — for a frequently-updated secret, the whole edit history.
#[derive(Clone, Debug, PartialEq)]
pub struct VersionChain {
    /// Table the row belongs to.
    pub table: String,
    /// The row id whose history this is.
    pub row_id: u64,
    /// Archived versions, oldest first.
    pub versions: Vec<crate::mvcc::Version>,
}

/// Everything on "disk": tablespace files, catalog, checkpoint, log files,
/// the binlog, the buffer-pool dump, and the text logs.
#[derive(Clone, Debug)]
pub struct DiskImage {
    /// File name → raw contents.
    pub files: BTreeMap<String, Vec<u8>>,
}

impl DiskImage {
    /// Raw contents of one file.
    pub fn file(&self, name: &str) -> Option<&[u8]> {
        self.files.get(name).map(|v| v.as_slice())
    }

    /// File names, sorted.
    pub fn file_names(&self) -> Vec<&str> {
        self.files.keys().map(|s| s.as_str()).collect()
    }

    /// Total image size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.files.values().map(|v| v.len()).sum()
    }
}

/// Everything in process memory: the heap arena plus the volatile data
/// structures (query cache, buffer pool metadata, adaptive hash index,
/// performance-schema state, process list).
#[derive(Clone, Debug)]
pub struct MemoryImage {
    /// Byte-exact dump of the process heap arena (§5's target).
    pub heap: Vec<u8>,
    /// Query texts currently held by the query cache.
    pub cached_queries: Vec<String>,
    /// Buffer-pool contents in LRU order (most recent first).
    pub cached_pages: Vec<PageKey>,
    /// Per-page lifetime access counters.
    pub page_access_counts: Vec<(PageKey, u64)>,
    /// Adaptive-hash-index entries: encoded hot search keys → page.
    pub adaptive_hash_keys: Vec<(Vec<u8>, PageKey)>,
    /// In-flight statements per thread.
    pub statements_current: Vec<StatementEvent>,
    /// The bounded per-thread statement history.
    pub statements_history: Vec<StatementEvent>,
    /// Per-digest aggregate counters since restart.
    pub digest_summary: Vec<DigestStats>,
    /// The connection process list.
    pub processlist: Vec<ProcessEntry>,
    /// The telemetry registry's full state — the counters and histograms
    /// this repo adds to the paper's inventory of snapshot-visible
    /// auxiliary state (per-table access counts, latency distributions).
    pub metrics: mdb_telemetry::MetricsSnapshot,
    /// The flight-recorder ring: the last N statement traces, with full
    /// statement text, timestamps, touched tables, and span trees. A
    /// memory snapshot taken after a diagnostics wipe still carries this
    /// per-statement timeline (experiment e15).
    pub query_traces: Vec<mdb_trace::StatementTrace>,
    /// The heaps' in-memory zone-map mirrors: per-page min/max value
    /// ranges for every page a scan or DML has touched. Even when every
    /// row payload is EDB-encrypted, these synopses bracket the
    /// plaintext of range-queryable columns page by page (experiment
    /// e16).
    pub zone_maps: Vec<ZoneMapPage>,
    /// The MVCC version store's chains: per-row supersession history
    /// with full before-images and `(xmin, xmax)` ordering. What vacuum
    /// has not yet reclaimed, a memory snapshot replays as an edit
    /// timeline (experiment e18).
    pub version_chains: Vec<VersionChain>,
}

impl MemoryImage {
    /// Counts occurrences of a byte pattern in the heap dump.
    pub fn heap_occurrences(&self, needle: &[u8]) -> usize {
        if needle.is_empty() || needle.len() > self.heap.len() {
            return 0;
        }
        let mut count = 0;
        let mut i = 0;
        while i + needle.len() <= self.heap.len() {
            if &self.heap[i..i + needle.len()] == needle {
                count += 1;
                i += needle.len();
            } else {
                i += 1;
            }
        }
        count
    }
}

/// A full point-in-time image of the machine hosting the DBMS.
#[derive(Clone, Debug)]
pub struct SystemImage {
    /// Persistent state.
    pub disk: DiskImage,
    /// Volatile state.
    pub memory: MemoryImage,
    /// Simulated UNIX time at capture.
    pub captured_at: i64,
}

impl Db {
    /// Captures the persistent state (what disk theft yields).
    pub fn disk_image(&self) -> DiskImage {
        let g = self.inner.lock();
        let mut files = BTreeMap::new();
        for name in g.vdisk.file_names() {
            files.insert(name.clone(), g.vdisk.read(&name).unwrap().to_vec());
        }
        // The WAL buffers are disk files too; render them under their
        // MySQL-ish names.
        files.insert(REDO_FILE.to_string(), g.wal.redo.raw().to_vec());
        files.insert(UNDO_FILE.to_string(), g.wal.undo.raw().to_vec());
        files.insert(BINLOG_FILE.to_string(), g.wal.binlog_raw().to_vec());
        DiskImage { files }
    }

    /// Captures the volatile state (what a full-memory snapshot yields).
    pub fn memory_image(&self) -> MemoryImage {
        let g = self.inner.lock();
        MemoryImage {
            heap: g.heap.dump(),
            cached_queries: g.query_cache.cached_queries(),
            cached_pages: g.bufpool.lru_order(),
            page_access_counts: g.bufpool.access_counters_snapshot(),
            adaptive_hash_keys: g
                .adaptive_hash
                .indexed_keys()
                .into_iter()
                .map(|(k, p)| (k.to_vec(), p.clone()))
                .collect(),
            statements_current: g
                .perf
                .events_statements_current()
                .into_iter()
                .cloned()
                .collect(),
            statements_history: g
                .perf
                .events_statements_history()
                .into_iter()
                .cloned()
                .collect(),
            digest_summary: g
                .perf
                .events_statements_summary_by_digest()
                .into_iter()
                .cloned()
                .collect(),
            processlist: g.processlist.entries().into_iter().cloned().collect(),
            metrics: g.telemetry.snapshot(),
            query_traces: g.trace.traces(),
            zone_maps: g
                .zone_map_pages()
                .into_iter()
                .map(|(file, page_no, syn)| ZoneMapPage {
                    file,
                    page_no,
                    rows: syn.rows as u64,
                    columns: syn.cols.iter().map(|c| (c.col, c.min, c.max)).collect(),
                })
                .collect(),
            version_chains: {
                let mut chains: Vec<VersionChain> = g
                    .mvcc
                    .chains()
                    .iter()
                    .map(|((table, row_id), versions)| VersionChain {
                        table: table.clone(),
                        row_id: *row_id,
                        versions: versions.clone(),
                    })
                    .collect();
                chains.sort_by(|a, b| (&a.table, a.row_id).cmp(&(&b.table, b.row_id)));
                chains
            },
        }
    }

    /// Captures the whole system (what a VM-image leak or full compromise
    /// yields).
    pub fn system_image(&self) -> SystemImage {
        let captured_at = self.now();
        SystemImage {
            disk: self.disk_image(),
            memory: self.memory_image(),
            captured_at,
        }
    }
}
