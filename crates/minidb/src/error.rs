//! Error type for the MiniDB engine.

use core::fmt;

/// Errors surfaced by the SQL engine and storage layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL text failed to lex or parse.
    Parse(String),
    /// Statement referenced an unknown table.
    UnknownTable(String),
    /// Statement referenced an unknown column.
    UnknownColumn(String),
    /// Schema violation: duplicate table, bad column count, type mismatch...
    Schema(String),
    /// Duplicate primary key on insert.
    DuplicateKey(String),
    /// A storage-layer invariant failed (corrupt page, bad slot).
    Storage(String),
    /// Unknown function in an expression.
    UnknownFunction(String),
    /// Expression evaluation failed (type error, bad argument).
    Eval(String),
    /// Transaction API misuse (nested BEGIN, COMMIT without BEGIN...).
    Txn(String),
    /// The engine was asked to run a statement after a simulated crash.
    Crashed,
    /// A write statement arrived on a read-only server (a replica); only
    /// the replication applier may modify it.
    ReadOnly,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::DuplicateKey(m) => write!(f, "duplicate key: {m}"),
            DbError::Storage(m) => write!(f, "storage error: {m}"),
            DbError::UnknownFunction(m) => write!(f, "unknown function: {m}"),
            DbError::Eval(m) => write!(f, "evaluation error: {m}"),
            DbError::Txn(m) => write!(f, "transaction error: {m}"),
            DbError::Crashed => write!(f, "engine is in crashed state; recover first"),
            DbError::ReadOnly => {
                write!(f, "server is read-only (replica); writes go to the primary")
            }
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience alias used across the crate.
pub type DbResult<T> = Result<T, DbError>;
