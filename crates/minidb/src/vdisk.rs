//! A virtual disk: named byte files held in memory.
//!
//! MiniDB simulates its persistent storage so that (a) the whole system is
//! deterministic and laptop-fast, and (b) a "disk theft" snapshot is a
//! byte-exact copy of what a real attacker would image. Everything the
//! engine considers durable — tablespaces, the catalog, WAL files, the
//! binlog, the buffer-pool dump — lives here; everything volatile lives in
//! ordinary process structures and is *lost* on [`crate::engine::Db::crash`].

use std::collections::BTreeMap;

/// The in-memory "disk": a map from file name to contents.
#[derive(Clone, Debug, Default)]
pub struct VDisk {
    files: BTreeMap<String, Vec<u8>>,
}

impl VDisk {
    /// Creates an empty disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the contents of `name`, if present.
    pub fn read(&self, name: &str) -> Option<&[u8]> {
        self.files.get(name).map(|v| v.as_slice())
    }

    /// Replaces the contents of `name`.
    pub fn write(&mut self, name: &str, data: Vec<u8>) {
        self.files.insert(name.to_string(), data);
    }

    /// Appends to `name`, creating it if needed.
    pub fn append(&mut self, name: &str, data: &[u8]) {
        self.files
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(data);
    }

    /// Writes `data` at byte `offset` of `name`, zero-extending as needed.
    pub fn write_at(&mut self, name: &str, offset: usize, data: &[u8]) {
        let f = self.files.entry(name.to_string()).or_default();
        if f.len() < offset + data.len() {
            f.resize(offset + data.len(), 0);
        }
        f[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Length of `name` in bytes (0 if absent).
    pub fn len(&self, name: &str) -> usize {
        self.files.get(name).map(|v| v.len()).unwrap_or(0)
    }

    /// Whether the disk holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Removes a file.
    pub fn remove(&mut self, name: &str) -> bool {
        self.files.remove(name).is_some()
    }

    /// All file names, sorted.
    pub fn file_names(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> usize {
        self.files.values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_append() {
        let mut d = VDisk::new();
        assert!(d.read("a").is_none());
        d.write("a", vec![1, 2]);
        d.append("a", &[3]);
        assert_eq!(d.read("a").unwrap(), &[1, 2, 3]);
        assert_eq!(d.len("a"), 3);
        assert_eq!(d.file_names(), vec!["a"]);
    }

    #[test]
    fn write_at_extends() {
        let mut d = VDisk::new();
        d.write_at("f", 4, &[9, 9]);
        assert_eq!(d.read("f").unwrap(), &[0, 0, 0, 0, 9, 9]);
        d.write_at("f", 0, &[1]);
        assert_eq!(d.read("f").unwrap(), &[1, 0, 0, 0, 9, 9]);
    }

    #[test]
    fn clone_is_snapshot() {
        let mut d = VDisk::new();
        d.write("x", vec![1]);
        let snap = d.clone();
        d.write("x", vec![2]);
        assert_eq!(snap.read("x").unwrap(), &[1]);
        assert_eq!(d.read("x").unwrap(), &[2]);
    }

    #[test]
    fn remove_and_totals() {
        let mut d = VDisk::new();
        d.write("x", vec![0; 10]);
        d.write("y", vec![0; 5]);
        assert_eq!(d.total_bytes(), 15);
        assert!(d.remove("x"));
        assert!(!d.remove("x"));
        assert_eq!(d.total_bytes(), 5);
    }
}
