//! Row representation and byte-level encoding.
//!
//! Rows are encoded exactly once and the same bytes flow to pages, redo
//! records, and undo records — which is what lets the forensic parsers in
//! the `snapshot-attack` crate reconstruct full row images from raw log
//! bytes, as Frühwirt et al. do for InnoDB.

use crate::error::{DbError, DbResult};
use crate::value::Value;

/// A row id: stable identity of a row within its table, independent of the
/// primary key (InnoDB's implicit `DB_ROW_ID` analogue).
pub type RowId = u64;

/// A materialized row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Stable row identity.
    pub id: RowId,
    /// Column values in schema order.
    pub values: Vec<Value>,
}

impl Row {
    /// Encodes the row (id, column count, then each value).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.values.len() * 8);
        out.extend_from_slice(&self.id.to_le_bytes());
        out.extend_from_slice(&(self.values.len() as u16).to_le_bytes());
        for v in &self.values {
            v.encode(&mut out);
        }
        out
    }

    /// Decodes a row from the byte image produced by [`Row::encode`].
    pub fn decode(buf: &[u8]) -> DbResult<Row> {
        let mut pos = 0;
        let row = Self::decode_at(buf, &mut pos)?;
        if pos != buf.len() {
            return Err(DbError::Storage("trailing bytes after row".into()));
        }
        Ok(row)
    }

    /// Decodes a row starting at `buf[*pos..]`, advancing `pos`.
    pub fn decode_at(buf: &[u8], pos: &mut usize) -> DbResult<Row> {
        let id_bytes = buf
            .get(*pos..*pos + 8)
            .ok_or_else(|| DbError::Storage("truncated row id".into()))?;
        let id = u64::from_le_bytes(id_bytes.try_into().unwrap());
        *pos += 8;
        let n_bytes = buf
            .get(*pos..*pos + 2)
            .ok_or_else(|| DbError::Storage("truncated column count".into()))?;
        let n = u16::from_le_bytes(n_bytes.try_into().unwrap()) as usize;
        *pos += 2;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(Value::decode(buf, pos)?);
        }
        Ok(Row { id, values })
    }

    /// Decodes a row materializing only the columns flagged in `needed`
    /// (schema-ordinal indexed); every other column is byte-skipped and
    /// left as [`Value::Null`]. `None` means all columns. Columns past
    /// `needed.len()` are skipped. The projection-pushdown scan path uses
    /// this so `SELECT a FROM t` never allocates `t`'s TEXT/BYTES
    /// payloads.
    pub fn decode_partial(buf: &[u8], needed: Option<&[bool]>) -> DbResult<Row> {
        let Some(needed) = needed else {
            return Self::decode(buf);
        };
        let mut pos = 0;
        let id_bytes = buf
            .get(..8)
            .ok_or_else(|| DbError::Storage("truncated row id".into()))?;
        let id = u64::from_le_bytes(id_bytes.try_into().unwrap());
        pos += 8;
        let n_bytes = buf
            .get(pos..pos + 2)
            .ok_or_else(|| DbError::Storage("truncated column count".into()))?;
        let n = u16::from_le_bytes(n_bytes.try_into().unwrap()) as usize;
        pos += 2;
        let mut values = Vec::with_capacity(n);
        for i in 0..n {
            if needed.get(i).copied().unwrap_or(false) {
                values.push(Value::decode(buf, &mut pos)?);
            } else {
                Value::skip(buf, &mut pos)?;
                values.push(Value::Null);
            }
        }
        if pos != buf.len() {
            return Err(DbError::Storage("trailing bytes after row".into()));
        }
        Ok(Row { id, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let row = Row {
            id: 42,
            values: vec![
                Value::Int(7),
                Value::Text("abc".into()),
                Value::Null,
                Value::Bytes(vec![1, 2, 3]),
            ],
        };
        assert_eq!(Row::decode(&row.encode()).unwrap(), row);
    }

    #[test]
    fn decode_partial_materializes_only_needed_columns() {
        let row = Row {
            id: 42,
            values: vec![
                Value::Int(7),
                Value::Text("expensive payload".into()),
                Value::Int(-3),
                Value::Bytes(vec![1, 2, 3]),
            ],
        };
        let bytes = row.encode();
        let got = Row::decode_partial(&bytes, Some(&[true, false, true, false])).unwrap();
        assert_eq!(got.id, 42);
        assert_eq!(
            got.values,
            vec![Value::Int(7), Value::Null, Value::Int(-3), Value::Null]
        );
        // None mask == full decode; short mask skips the tail.
        assert_eq!(Row::decode_partial(&bytes, None).unwrap(), row);
        let head = Row::decode_partial(&bytes, Some(&[true])).unwrap();
        assert_eq!(head.values[0], Value::Int(7));
        assert_eq!(head.values[3], Value::Null);
    }

    #[test]
    fn rejects_trailing_garbage() {
        let row = Row {
            id: 1,
            values: vec![Value::Int(1)],
        };
        let mut bytes = row.encode();
        bytes.push(0xFF);
        assert!(Row::decode(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let row = Row {
            id: 9,
            values: vec![Value::Text("hello world".into()), Value::Int(-1)],
        };
        let bytes = row.encode();
        for cut in 0..bytes.len() {
            assert!(Row::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
