//! # MiniDB
//!
//! A from-scratch embedded DBMS that reproduces the *systems* behaviour of
//! a commodity MySQL/InnoDB deployment — specifically, every mechanism the
//! HotOS 2017 paper *Why Your Encrypted Database Is Not Secure* shows to
//! leak information about past queries to a "snapshot" attacker:
//!
//! * **§3 logs on disk** — circular undo/redo logs with byte-level row
//!   images and LSNs ([`wal`]), a timestamped statement binlog, a slow
//!   query log, an optional general query log, and the buffer-pool LRU
//!   dump file ([`storage::bufpool`]).
//! * **§4 diagnostic tables** — `performance_schema` statement digests,
//!   per-thread statement history, and `information_schema.processlist`,
//!   all reachable through plain SQL ([`observability`]).
//! * **§5 in-memory structures** — a query cache, an adaptive hash index,
//!   per-page access counters, and a process heap with **no secure
//!   deletion** ([`heap`]).
//!
//! The engine is a real (small) database: slotted pages, a buffer pool,
//! B+ tree indexes, ARIES-style redo/undo crash recovery, transactions,
//! and a SQL dialect with scalar-UDF hooks that the encrypted-database
//! layers in the `edb` crate build on.
//!
//! ## Quick example
//!
//! ```
//! use minidb::engine::{Db, DbConfig};
//!
//! let db = Db::open(DbConfig::default());
//! let conn = db.connect("app");
//! conn.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)").unwrap();
//! conn.execute("INSERT INTO t VALUES (1, 'alice'), (2, 'bob')").unwrap();
//! let r = conn.execute("SELECT name FROM t WHERE id = 2").unwrap();
//! assert_eq!(r.rows[0][0].to_string(), "bob");
//! ```

pub mod cache;
pub mod catalog;
pub mod engine;
pub mod error;
pub mod group_commit;
pub mod heap;
pub mod mvcc;
pub mod observability;
pub mod row;
pub mod schema;
pub mod snapshot;
pub mod snapshot_io;
pub mod sql;
pub mod storage;
pub mod value;
pub mod vdisk;
pub mod wal;

pub use engine::{Connection, Db, DbConfig, QueryResult, ReplRole};
pub use error::{DbError, DbResult};
pub use snapshot::{DiskImage, MemoryImage, SystemImage};
pub use value::Value;
