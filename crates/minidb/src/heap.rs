//! A simulated process heap with **no secure deletion** (§5).
//!
//! Every query string and cached result the engine handles is copied into
//! this arena. `free` only returns the block to a size-class freelist —
//! the bytes stay in place until some later allocation of the same size
//! class overwrites them. Size classes reuse blocks LIFO, so a block freed
//! *early* in the process lifetime sinks to the bottom of its class stack
//! and is effectively never reused — exactly why the paper's marker query
//! was still found in MySQL's heap after 102,000 subsequent queries.

use mdb_telemetry::{Counter, Registry};

/// Handle to an allocated block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HeapPtr {
    /// Byte offset within the arena.
    pub offset: usize,
    /// Size-class capacity of the block.
    pub capacity: usize,
    /// Live payload length.
    pub len: usize,
}

/// Size classes (bytes). Like glibc's fastbins/tcache, small classes are
/// spaced 16 bytes apart, so two strings reuse each other's blocks only
/// when their lengths are close; larger classes grow geometrically.
/// Allocations round up to the nearest class; anything larger gets an
/// exact-size "huge" block.
const CLASSES: [usize; 20] = [
    16, 32, 48, 64, 80, 96, 112, 128, 144, 160, 176, 192, 208, 224, 240, 256, 512, 1024, 4096,
    16384,
];

/// Pre-resolved telemetry handles; absent until a registry is attached.
struct HeapMetrics {
    allocs: Counter,
    frees: Counter,
    reused: Counter,
    alloc_bytes: Counter,
}

/// The arena allocator.
pub struct HeapArena {
    buf: Vec<u8>,
    /// Per-class LIFO freelists of block offsets.
    free: Vec<Vec<usize>>,
    /// Freelist for huge blocks: (offset, capacity).
    free_huge: Vec<(usize, usize)>,
    /// Statistics: total allocations ever.
    pub total_allocs: u64,
    /// Statistics: allocations served by reusing a freed block.
    pub reused_allocs: u64,
    /// Hardening knob (off by default, as in every real DBMS): zero a
    /// block on free. Used by the mitigation-ablation experiment.
    pub secure_delete: bool,
    metrics: Option<HeapMetrics>,
}

impl Default for HeapArena {
    fn default() -> Self {
        Self::new()
    }
}

impl HeapArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        HeapArena {
            buf: Vec::new(),
            free: vec![Vec::new(); CLASSES.len()],
            free_huge: Vec::new(),
            total_allocs: 0,
            reused_allocs: 0,
            secure_delete: false,
            metrics: None,
        }
    }

    /// Registers this arena's counters on `registry`.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.metrics = Some(HeapMetrics {
            allocs: registry.counter("heap.allocs"),
            frees: registry.counter("heap.frees"),
            reused: registry.counter("heap.reused_allocs"),
            alloc_bytes: registry.counter("heap.alloc_bytes"),
        });
    }

    fn class_of(len: usize) -> Option<usize> {
        CLASSES.iter().position(|&c| len <= c)
    }

    /// Copies `data` into the arena and returns its handle.
    pub fn alloc(&mut self, data: &[u8]) -> HeapPtr {
        self.total_allocs += 1;
        let reused_before = self.reused_allocs;
        let (offset, capacity) = match Self::class_of(data.len()) {
            Some(class) => {
                let cap = CLASSES[class];
                if let Some(off) = self.free[class].pop() {
                    self.reused_allocs += 1;
                    (off, cap)
                } else {
                    let off = self.buf.len();
                    self.buf.resize(off + cap, 0);
                    (off, cap)
                }
            }
            None => {
                if let Some(pos) = self
                    .free_huge
                    .iter()
                    .rposition(|&(_, cap)| cap >= data.len())
                {
                    let (off, cap) = self.free_huge.remove(pos);
                    self.reused_allocs += 1;
                    (off, cap)
                } else {
                    let off = self.buf.len();
                    self.buf.resize(off + data.len(), 0);
                    (off, data.len())
                }
            }
        };
        if let Some(m) = &self.metrics {
            m.allocs.inc();
            m.alloc_bytes.add(data.len() as u64);
            if self.reused_allocs > reused_before {
                m.reused.inc();
            }
        }
        // Deliberately only the payload prefix is written: the remainder
        // of a reused block keeps its previous contents (heap residue).
        self.buf[offset..offset + data.len()].copy_from_slice(data);
        HeapPtr {
            offset,
            capacity,
            len: data.len(),
        }
    }

    /// Convenience: allocate a UTF-8 string.
    pub fn alloc_str(&mut self, s: &str) -> HeapPtr {
        self.alloc(s.as_bytes())
    }

    /// Frees a block. **The bytes are not cleared** (unless the
    /// `secure_delete` hardening knob is on) — that is the point.
    pub fn free(&mut self, ptr: HeapPtr) {
        if let Some(m) = &self.metrics {
            m.frees.inc();
        }
        if self.secure_delete {
            self.buf[ptr.offset..ptr.offset + ptr.capacity].fill(0);
        }
        match CLASSES.iter().position(|&c| c == ptr.capacity) {
            Some(class) => self.free[class].push(ptr.offset),
            None => self.free_huge.push((ptr.offset, ptr.capacity)),
        }
    }

    /// Reads a live block's payload.
    pub fn read(&self, ptr: HeapPtr) -> &[u8] {
        &self.buf[ptr.offset..ptr.offset + ptr.len]
    }

    /// A byte-exact image of the whole arena — what a memory snapshot of
    /// the DB process contains.
    pub fn dump(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Arena size in bytes.
    pub fn size(&self) -> usize {
        self.buf.len()
    }

    /// Counts non-overlapping occurrences of `needle` in the arena — the
    /// §5 experiment's measurement.
    pub fn count_occurrences(&self, needle: &[u8]) -> usize {
        if needle.is_empty() || needle.len() > self.buf.len() {
            return 0;
        }
        let mut count = 0;
        let mut i = 0;
        while i + needle.len() <= self.buf.len() {
            if &self.buf[i..i + needle.len()] == needle {
                count += 1;
                i += needle.len();
            } else {
                i += 1;
            }
        }
        count
    }

    /// Drops everything (process restart).
    pub fn clear(&mut self) {
        self.buf.clear();
        for f in &mut self.free {
            f.clear();
        }
        self.free_huge.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_round_trip() {
        let mut h = HeapArena::new();
        let p = h.alloc(b"SELECT * FROM t");
        assert_eq!(h.read(p), b"SELECT * FROM t");
    }

    #[test]
    fn free_leaves_bytes_in_place() {
        let mut h = HeapArena::new();
        let p = h.alloc_str("SELECT secret_marker FROM t");
        h.free(p);
        assert_eq!(h.count_occurrences(b"secret_marker"), 1);
    }

    #[test]
    fn reuse_overwrites_prefix_only() {
        let mut h = HeapArena::new();
        let p = h.alloc_str("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"); // 30 bytes → class 32.
        h.free(p);
        let q = h.alloc_str("BB"); // Class 16... different class, no reuse.
        assert_ne!(q.offset, p.offset);
        let r = h.alloc_str("CCCCCCCCCCCCCCCCCC"); // 18 bytes → class 32: reuses p.
        assert_eq!(r.offset, p.offset);
        // Residue: the tail of the old block is still readable in the dump.
        let dump = h.dump();
        let tail = &dump[p.offset + 18..p.offset + 30];
        assert_eq!(tail, b"AAAAAAAAAAAA");
    }

    #[test]
    fn lifo_reuse_buries_early_frees() {
        let mut h = HeapArena::new();
        let early = h.alloc_str("EARLY-FREED-QUERY-TEXT-........"); // Class 32.
        h.free(early);
        // Churn: many alloc/free pairs in the same class reuse each other,
        // not the early block... after the first one grabs it.
        let first = h.alloc_str("CHURN-0........................");
        for i in 1..1000 {
            let p = h.alloc_str(&format!("CHURN-{i:<25}"));
            h.free(p);
        }
        // `first` took the early block; all subsequent churn recycled one
        // hot block. Verify reuse efficiency.
        assert_eq!(first.offset, early.offset);
        assert!(h.reused_allocs >= 999);
        assert!(h.size() < 32 * 8, "arena must not grow under churn");
    }

    #[test]
    fn huge_blocks() {
        let mut h = HeapArena::new();
        let big = vec![7u8; 100_000];
        let p = h.alloc(&big);
        assert_eq!(h.read(p), &big[..]);
        h.free(p);
        let q = h.alloc(&vec![8u8; 90_000]);
        assert_eq!(q.offset, p.offset, "huge freelist reuse");
    }

    #[test]
    fn count_occurrences_is_exact() {
        let mut h = HeapArena::new();
        h.alloc(b"xx MARKER yy");
        h.alloc(b"zz MARKER ww MARKER");
        assert_eq!(h.count_occurrences(b"MARKER"), 3);
        assert_eq!(h.count_occurrences(b"ABSENT"), 0);
        assert_eq!(h.count_occurrences(b""), 0);
    }

    #[test]
    fn secure_delete_zeroes_on_free() {
        let mut h = HeapArena::new();
        h.secure_delete = true;
        let p = h.alloc_str("SELECT zeroized_marker FROM t");
        h.free(p);
        assert_eq!(h.count_occurrences(b"zeroized_marker"), 0);
        // Live allocations are untouched.
        let q = h.alloc_str("still_alive_marker");
        assert_eq!(h.count_occurrences(b"still_alive_marker"), 1);
        h.free(q);
    }

    #[test]
    fn clear_wipes() {
        let mut h = HeapArena::new();
        h.alloc(b"data");
        h.clear();
        assert_eq!(h.size(), 0);
        assert_eq!(h.count_occurrences(b"data"), 0);
    }
}
