//! SQL values and their binary encoding.

use core::fmt;

use crate::error::{DbError, DbResult};

/// Column types supported by MiniDB.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 text.
    Text,
    /// Raw bytes (ciphertexts live here).
    Bytes,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int => write!(f, "INT"),
            ColumnType::Text => write!(f, "TEXT"),
            ColumnType::Bytes => write!(f, "BYTES"),
        }
    }
}

/// A runtime SQL value.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes, written in SQL as `X'hex'`.
    Bytes(Vec<u8>),
}

impl Value {
    /// The column type this value inhabits, or `None` for NULL.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Int),
            Value::Text(_) => Some(ColumnType::Text),
            Value::Bytes(_) => Some(ColumnType::Bytes),
        }
    }

    /// Whether this value may be stored in a column of type `ty`.
    /// NULL fits every column.
    pub fn fits(&self, ty: ColumnType) -> bool {
        match self.column_type() {
            None => true,
            Some(t) => t == ty,
        }
    }

    /// Renders the value as a SQL literal.
    pub fn to_sql(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Bytes(b) => {
                let hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
                format!("X'{hex}'")
            }
        }
    }

    /// Encodes the value into `out` with a 1-byte tag and explicit length,
    /// the format rows use on pages and in log records.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Text(s) => {
                out.push(2);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bytes(b) => {
                out.push(3);
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
        }
    }

    /// Decodes a value from `buf[*pos..]`, advancing `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> DbResult<Value> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| DbError::Storage("truncated value tag".into()))?;
        *pos += 1;
        match tag {
            0 => Ok(Value::Null),
            1 => {
                let bytes = buf
                    .get(*pos..*pos + 8)
                    .ok_or_else(|| DbError::Storage("truncated int".into()))?;
                *pos += 8;
                Ok(Value::Int(i64::from_le_bytes(bytes.try_into().unwrap())))
            }
            2 | 3 => {
                let len_bytes = buf
                    .get(*pos..*pos + 4)
                    .ok_or_else(|| DbError::Storage("truncated length".into()))?;
                let len = u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
                *pos += 4;
                let body = buf
                    .get(*pos..*pos + len)
                    .ok_or_else(|| DbError::Storage("truncated body".into()))?;
                *pos += len;
                if tag == 2 {
                    let s = std::str::from_utf8(body)
                        .map_err(|_| DbError::Storage("invalid utf8 in text value".into()))?;
                    Ok(Value::Text(s.to_string()))
                } else {
                    Ok(Value::Bytes(body.to_vec()))
                }
            }
            t => Err(DbError::Storage(format!("unknown value tag {t}"))),
        }
    }

    /// Advances `pos` past one encoded value without materializing it —
    /// no allocation, no UTF-8 validation. The projection-pushdown scan
    /// path uses this to step over columns the query never reads.
    pub fn skip(buf: &[u8], pos: &mut usize) -> DbResult<()> {
        let tag = *buf
            .get(*pos)
            .ok_or_else(|| DbError::Storage("truncated value tag".into()))?;
        *pos += 1;
        let body = match tag {
            0 => 0,
            1 => 8,
            2 | 3 => {
                let len_bytes = buf
                    .get(*pos..*pos + 4)
                    .ok_or_else(|| DbError::Storage("truncated length".into()))?;
                *pos += 4;
                u32::from_le_bytes(len_bytes.try_into().unwrap()) as usize
            }
            t => return Err(DbError::Storage(format!("unknown value tag {t}"))),
        };
        if buf.len() < *pos + body {
            return Err(DbError::Storage("truncated body".into()));
        }
        *pos += body;
        Ok(())
    }

    /// SQL three-valued comparison: `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<core::cmp::Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bytes(a), Value::Bytes(b)) => Some(a.cmp(b)),
            // Cross-type comparisons order by type tag, mirroring SQLite's
            // affinity-free fallback; they never occur in well-typed plans.
            _ => Some(self.type_rank().cmp(&other.type_rank())),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Text(_) => 2,
            Value::Bytes(_) => 3,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bytes(b) => {
                for x in b {
                    write!(f, "{x:02x}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(&Value::decode(&buf, &mut pos).unwrap(), v);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn encode_round_trips() {
        round_trip(&Value::Null);
        round_trip(&Value::Int(0));
        round_trip(&Value::Int(i64::MIN));
        round_trip(&Value::Int(i64::MAX));
        round_trip(&Value::Text(String::new()));
        round_trip(&Value::Text("O'Brien".into()));
        round_trip(&Value::Bytes(vec![0, 255, 1, 2]));
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        Value::Text("hello".into()).encode(&mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(Value::decode(&buf[..cut], &mut pos).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn skip_advances_like_decode() {
        for v in [
            Value::Null,
            Value::Int(-77),
            Value::Text("skip me".into()),
            Value::Bytes(vec![9; 300]),
        ] {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            let mut pos = 0;
            Value::skip(&buf, &mut pos).unwrap();
            assert_eq!(pos, buf.len());
            for cut in 0..buf.len() {
                let mut p = 0;
                assert!(Value::skip(&buf[..cut], &mut p).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn sql_literals() {
        assert_eq!(Value::Int(-5).to_sql(), "-5");
        assert_eq!(Value::Text("a'b".into()).to_sql(), "'a''b'");
        assert_eq!(Value::Bytes(vec![0xAB, 0x01]).to_sql(), "X'ab01'");
        assert_eq!(Value::Null.to_sql(), "NULL");
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Int(2)),
            Some(core::cmp::Ordering::Less)
        );
    }

    #[test]
    fn fits_types() {
        assert!(Value::Int(1).fits(ColumnType::Int));
        assert!(!Value::Int(1).fits(ColumnType::Text));
        assert!(Value::Null.fits(ColumnType::Int));
        assert!(Value::Null.fits(ColumnType::Bytes));
    }
}
