//! Table schemas.

use crate::error::{DbError, DbResult};
use crate::value::{ColumnType, Value};

/// Definition of one column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (stored lower-cased; SQL identifiers are
    /// case-insensitive in MiniDB).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
    /// Whether this column is the table's primary key.
    pub primary_key: bool,
}

/// Definition of one table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (lower-cased).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Creates a schema, validating name uniqueness and key arity.
    pub fn new(name: &str, columns: Vec<ColumnDef>) -> DbResult<TableSchema> {
        if columns.is_empty() {
            return Err(DbError::Schema(format!("table {name} has no columns")));
        }
        let mut seen = std::collections::BTreeSet::new();
        for c in &columns {
            if !seen.insert(c.name.clone()) {
                return Err(DbError::Schema(format!(
                    "duplicate column {} in table {name}",
                    c.name
                )));
            }
        }
        if columns.iter().filter(|c| c.primary_key).count() > 1 {
            return Err(DbError::Schema(format!(
                "table {name} declares more than one primary key"
            )));
        }
        Ok(TableSchema {
            name: name.to_ascii_lowercase(),
            columns,
        })
    }

    /// Index of `column` in the row layout.
    pub fn column_index(&self, column: &str) -> DbResult<usize> {
        let lowered = column.to_ascii_lowercase();
        self.columns
            .iter()
            .position(|c| c.name == lowered)
            .ok_or(DbError::UnknownColumn(column.to_string()))
    }

    /// Index of the primary-key column, if one was declared.
    pub fn primary_key_index(&self) -> Option<usize> {
        self.columns.iter().position(|c| c.primary_key)
    }

    /// Validates that `values` is a well-typed full row for this schema.
    pub fn check_row(&self, values: &[Value]) -> DbResult<()> {
        if values.len() != self.columns.len() {
            return Err(DbError::Schema(format!(
                "table {} expects {} values, got {}",
                self.name,
                self.columns.len(),
                values.len()
            )));
        }
        for (v, c) in values.iter().zip(self.columns.iter()) {
            if !v.fits(c.ty) {
                return Err(DbError::Schema(format!(
                    "value {v:?} does not fit column {} of type {}",
                    c.name, c.ty
                )));
            }
            if c.primary_key && *v == Value::Null {
                return Err(DbError::Schema(format!(
                    "primary key {} must not be NULL",
                    c.name
                )));
            }
        }
        Ok(())
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(name: &str, ty: ColumnType, pk: bool) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty,
            primary_key: pk,
        }
    }

    #[test]
    fn valid_schema() {
        let s = TableSchema::new(
            "Customers",
            vec![
                col("id", ColumnType::Int, true),
                col("state", ColumnType::Text, false),
            ],
        )
        .unwrap();
        assert_eq!(s.name, "customers");
        assert_eq!(s.primary_key_index(), Some(0));
        assert_eq!(s.column_index("STATE").unwrap(), 1);
        assert!(s.column_index("zip").is_err());
    }

    #[test]
    fn rejects_duplicates_and_multi_pk() {
        assert!(TableSchema::new(
            "t",
            vec![
                col("a", ColumnType::Int, false),
                col("a", ColumnType::Int, false)
            ]
        )
        .is_err());
        assert!(TableSchema::new(
            "t",
            vec![
                col("a", ColumnType::Int, true),
                col("b", ColumnType::Int, true)
            ]
        )
        .is_err());
        assert!(TableSchema::new("t", vec![]).is_err());
    }

    #[test]
    fn row_checking() {
        let s = TableSchema::new(
            "t",
            vec![
                col("id", ColumnType::Int, true),
                col("name", ColumnType::Text, false),
            ],
        )
        .unwrap();
        assert!(s
            .check_row(&[Value::Int(1), Value::Text("x".into())])
            .is_ok());
        assert!(s.check_row(&[Value::Int(1), Value::Null]).is_ok());
        assert!(s.check_row(&[Value::Null, Value::Null]).is_err(), "NULL pk");
        assert!(s.check_row(&[Value::Int(1)]).is_err(), "arity");
        assert!(s
            .check_row(&[Value::Text("no".into()), Value::Text("x".into())])
            .is_err());
    }
}
