//! Property tests for the Prometheus text-exposition encoder: hostile
//! metric names (newlines, quotes, backslashes, unicode) must survive
//! an encode → parse round trip losslessly. This is the invariant the
//! E17 observer depends on — and the reason label escaping exists at
//! all: `sql.table_access.<table>` puts *user-controlled* table names
//! into the exposition.

use mdb_obs::prom;
use mdb_telemetry::Registry;
use proptest::prelude::*;

/// Palette of hostile characters: exposition-syntax chars (`\n`, `"`,
/// `\\`, `{`, `}`, `=`, spaces), plain ASCII, and multi-byte unicode.
const PALETTE: [char; 20] = [
    'a', 'b', 'z', 'A', '0', '9', '_', '.', '-', ' ', '\n', '"', '\\', '{', '}', '=', ',', '❤',
    'é', '雪',
];

fn name_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..PALETTE.len(), 1..24)
        .prop_map(|idx| idx.into_iter().map(|i| PALETTE[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn label_escaping_round_trips(name in name_strategy()) {
        let escaped = prom::escape_label(&name);
        // Escaped form never contains a raw newline or unescaped quote,
        // so it is always safe inside `name="..."`.
        prop_assert!(!escaped.contains('\n'));
        prop_assert_eq!(prom::unescape_label(&escaped), Some(name));
    }

    #[test]
    fn encode_then_parse_recovers_every_metric(
        counter_names in proptest::collection::vec(name_strategy(), 1..6),
        values in proptest::collection::vec(0u64..1_000_000, 6),
        gauge_name in name_strategy(),
        gauge_value in -500_000i64..500_000,
        histogram_name in name_strategy(),
    ) {
        let registry = Registry::new();
        // Distinct kind prefixes keep generated names from colliding
        // across counter/gauge/histogram namespaces.
        let counter_names: Vec<String> = counter_names.iter().map(|n| format!("c.{n}")).collect();
        let gauge_name = format!("g.{gauge_name}");
        let histogram_name = format!("h.{histogram_name}");
        // Registry keys are unique; duplicate generated names collapse,
        // so build the expectation from the registry's own view.
        for (i, name) in counter_names.iter().enumerate() {
            registry.counter(name).add(values[i % values.len()]);
        }
        registry.gauge(&gauge_name).set(gauge_value);
        let h = registry.histogram(&histogram_name);
        for v in &values {
            h.record(*v);
        }
        let snap = registry.snapshot();
        let text = prom::encode(&snap, &[]);
        let samples = prom::parse(&text).expect("encoder output must re-parse");

        for (name, expect) in &snap.counters {
            let got = samples
                .iter()
                .find(|s| s.metric_name() == Some(name.as_str()) && !s.series.ends_with("_bucket")
                    && !s.series.ends_with("_sum") && !s.series.ends_with("_count"))
                .unwrap_or_else(|| panic!("counter {name:?} lost in {text:?}"));
            prop_assert_eq!(got.value_u64(), Some(*expect));
        }
        for (name, expect) in &snap.gauges {
            let got = samples
                .iter()
                .find(|s| s.metric_name() == Some(name.as_str()))
                .unwrap_or_else(|| panic!("gauge {name:?} lost in {text:?}"));
            prop_assert_eq!(got.value_f64(), Some(*expect as f64));
        }
        let hist = snap.histogram(&histogram_name).unwrap();
        let sum = samples
            .iter()
            .find(|s| s.series.ends_with("_sum") && s.metric_name() == Some(histogram_name.as_str()))
            .unwrap_or_else(|| panic!("histogram sum lost in {text:?}"));
        prop_assert_eq!(sum.value_u64(), Some(hist.sum));
        let count = samples
            .iter()
            .find(|s| s.series.ends_with("_count") && s.metric_name() == Some(histogram_name.as_str()))
            .unwrap_or_else(|| panic!("histogram count lost in {text:?}"));
        prop_assert_eq!(count.value_u64(), Some(hist.count));
        // Bucket lines are cumulative and end at the total count.
        let buckets: Vec<&prom::Sample> = samples
            .iter()
            .filter(|s| s.series.ends_with("_bucket") && s.metric_name() == Some(histogram_name.as_str()))
            .collect();
        prop_assert!(!buckets.is_empty());
        prop_assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
        prop_assert_eq!(buckets.last().unwrap().value_u64(), Some(hist.count));
        let mut prev = 0u64;
        for b in &buckets {
            let v = b.value_u64().unwrap();
            prop_assert!(v >= prev, "buckets must be cumulative in {text:?}");
            prev = v;
        }
    }

    #[test]
    fn scrubbed_encoding_still_parses_and_hides_tables(
        table in name_strategy(),
        n in 1u64..100_000,
    ) {
        let registry = Registry::new();
        registry.counter(&format!("sql.table_access.{table}")).add(n);
        registry.counter("sql.statements").add(n);
        let scrubbed = prom::scrub(&registry.snapshot());
        let text = prom::encode(&scrubbed, &[]);
        let samples = prom::parse(&text).expect("scrubbed output must re-parse");
        let no_tables = samples
            .iter()
            .all(|s| s.metric_name().is_none_or(|m| !m.starts_with("sql.table_access.")));
        prop_assert!(no_tables);
        // Quantized, not zeroed: the total survives as a power of two.
        let stm = samples
            .iter()
            .find(|s| s.metric_name() == Some("sql.statements"))
            .unwrap();
        let v = stm.value_u64().unwrap();
        prop_assert!(v.is_power_of_two() && v >= n);
    }
}
