//! Prometheus text-exposition encoding (and the matching parser).
//!
//! Every series carries the *exact* registry metric name in a `name`
//! label, escaped per the exposition format (`\\`, `\"`, `\n`), so the
//! encoder round-trips losslessly even for names an operator never
//! chose — per-table counters like `sql.table_access.<table>` embed
//! user-controlled table names, and a table called `a"b\nc` must not
//! corrupt the scrape. The series identifier itself is a sanitized
//! (`[a-zA-Z0-9_]`, `mdb_`-prefixed) rendering for Prometheus
//! compatibility; consumers that need the true name read the label.
//!
//! [`scrub`] is the mitigation knob the E17 experiment measures: it
//! drops per-table series and quantizes every value to a power of two,
//! so successive scrapes no longer reveal exact per-query deltas.

use mdb_telemetry::{bucket_upper_bound, HistogramSnapshot, MetricsSnapshot};

/// Content-Type of the text exposition format.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Escapes a label value per the exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
pub fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_label`]. `None` on a dangling or unknown escape.
pub fn unescape_label(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                'n' => out.push('\n'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Sanitized series identifier for a registry metric name: every
/// character outside `[a-zA-Z0-9_]` becomes `_`, prefixed with `mdb_`.
/// Lossy by design — the `name` label carries the original.
pub fn series_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("mdb_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn sample_line(out: &mut String, series: &str, name: &str, extra: &[(&str, &str)], value: &str) {
    out.push_str(series);
    out.push_str("{name=\"");
    out.push_str(&escape_label(name));
    out.push('"');
    for (k, v) in extra {
        out.push(',');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    out.push_str("} ");
    out.push_str(value);
    out.push('\n');
}

/// Encodes a snapshot in the text exposition format. `rates` is the
/// per-second counter rate computed from the retention ring (empty on
/// the first scrape); rates are emitted as `<series>_rate` gauges.
pub fn encode(snap: &MetricsSnapshot, rates: &[(String, f64)]) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let series = series_name(name);
        out.push_str(&format!("# TYPE {series} counter\n"));
        sample_line(&mut out, &series, name, &[], &v.to_string());
    }
    for (name, v) in &snap.gauges {
        let series = series_name(name);
        out.push_str(&format!("# TYPE {series} gauge\n"));
        sample_line(&mut out, &series, name, &[], &v.to_string());
    }
    for h in &snap.histograms {
        encode_histogram(&mut out, h);
    }
    for (name, per_sec) in rates {
        let series = format!("{}_rate", series_name(name));
        out.push_str(&format!("# TYPE {series} gauge\n"));
        sample_line(&mut out, &series, name, &[], &format!("{per_sec}"));
    }
    out
}

fn encode_histogram(out: &mut String, h: &HistogramSnapshot) {
    let series = series_name(&h.name);
    out.push_str(&format!("# TYPE {series} histogram\n"));
    let bucket_series = format!("{series}_bucket");
    let mut cumulative = 0u64;
    for (idx, n) in &h.buckets {
        cumulative += n;
        let le = bucket_upper_bound(*idx as usize);
        let le = if le == u64::MAX {
            "+Inf".to_string()
        } else {
            le.to_string()
        };
        sample_line(
            out,
            &bucket_series,
            &h.name,
            &[("le", le.as_str())],
            &cumulative.to_string(),
        );
        // OpenMetrics-style exemplar: the bucket line gains a
        // ` # {trace_id="<32hex>"} <value>` suffix linking this bucket
        // of the aggregate to one concrete distributed trace.
        if let Some((_, tid, val)) = h.exemplars.iter().find(|(i, _, _)| i == idx) {
            out.pop();
            out.push_str(&format!(" # {{trace_id=\"{tid:032x}\"}} {val}\n"));
        }
    }
    sample_line(
        out,
        &bucket_series,
        &h.name,
        &[("le", "+Inf")],
        &h.count.to_string(),
    );
    sample_line(
        out,
        &format!("{series}_sum"),
        &h.name,
        &[],
        &h.sum.to_string(),
    );
    sample_line(
        out,
        &format!("{series}_count"),
        &h.name,
        &[],
        &h.count.to_string(),
    );
}

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Sanitized series identifier (`mdb_...`).
    pub series: String,
    /// Labels in line order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// Raw value text (integers stay exact; parse as needed).
    pub value: String,
    /// OpenMetrics exemplar riding the line, if any:
    /// `(trace_id_hex, raw_value_text)`.
    pub exemplar: Option<(String, String)>,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The `name` label: the exact registry metric name.
    pub fn metric_name(&self) -> Option<&str> {
        self.label("name")
    }

    /// The value as an exact u64, if it is one.
    pub fn value_u64(&self) -> Option<u64> {
        self.value.parse().ok()
    }

    /// The value as f64 (`None` for unparseable text).
    pub fn value_f64(&self) -> Option<f64> {
        self.value.parse().ok()
    }
}

/// Parses exposition text produced by [`encode`] (comments and blank
/// lines skipped). `None` when any sample line is malformed — the
/// round-trip property the proptests pin down.
pub fn parse(text: &str) -> Option<Vec<Sample>> {
    let mut samples = Vec::new();
    for line in text.split('\n') {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_line(line)?);
    }
    Some(samples)
}

/// Splits a raw value text from an OpenMetrics exemplar suffix, if one
/// rides the line.
fn split_exemplar(text: &str) -> (String, Option<(String, String)>) {
    if let Some((v, ex)) = text.split_once(" # {trace_id=\"") {
        if let Some((tid, rest)) = ex.split_once("\"} ") {
            return (v.to_string(), Some((tid.to_string(), rest.to_string())));
        }
    }
    (text.to_string(), None)
}

fn parse_line(line: &str) -> Option<Sample> {
    let brace = line.find('{');
    let (series, rest) = match brace {
        Some(i) => (&line[..i], &line[i + 1..]),
        None => {
            let sp = line.find(' ')?;
            let (value, exemplar) = split_exemplar(&line[sp + 1..]);
            return Some(Sample {
                series: line[..sp].to_string(),
                labels: Vec::new(),
                value,
                exemplar,
            });
        }
    };
    let mut labels = Vec::new();
    let mut rest = rest;
    loop {
        if let Some(stripped) = rest.strip_prefix('}') {
            let value = stripped.strip_prefix(' ')?;
            let (value, exemplar) = split_exemplar(value);
            return Some(Sample {
                series: series.to_string(),
                labels,
                value,
                exemplar,
            });
        }
        let eq = rest.find("=\"")?;
        let key = rest[..eq].trim_start_matches(',').to_string();
        // Find the closing quote, skipping escaped characters.
        let mut end = None;
        let bytes = &rest.as_bytes()[eq + 2..];
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    end = Some(i);
                    break;
                }
                _ => i += 1,
            }
        }
        let end = end?;
        let raw = &rest[eq + 2..eq + 2 + end];
        labels.push((key, unescape_label(raw)?));
        rest = &rest[eq + 2 + end + 1..];
    }
}

/// Quantizes `v` up to the next power of two (0 stays 0) — the value
/// coarsening behind [`scrub`].
pub fn quantize_pow2(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        v.next_power_of_two()
    }
}

/// The scrape-channel mitigation: returns a copy of `snap` with
/// per-table series dropped and every remaining value quantized to a
/// power of two. Between two scrapes a counter then moves in power-of-two
/// jumps (or not at all), denying the remote observer the exact
/// per-query deltas the E17 volume attack reconstructs.
pub fn scrub(snap: &MetricsSnapshot) -> MetricsSnapshot {
    MetricsSnapshot {
        counters: snap
            .counters
            .iter()
            .filter(|(name, _)| !name.starts_with("sql.table_access."))
            .map(|(name, v)| (name.clone(), quantize_pow2(*v)))
            .collect(),
        gauges: snap
            .gauges
            .iter()
            .map(|(name, v)| {
                (
                    name.clone(),
                    v.signum() * quantize_pow2(v.unsigned_abs()) as i64,
                )
            })
            .collect(),
        histograms: snap
            .histograms
            .iter()
            .map(|h| HistogramSnapshot {
                name: h.name.clone(),
                count: quantize_pow2(h.count),
                sum: quantize_pow2(h.sum),
                // No buckets: a scrubbed exposition reveals magnitude,
                // not distribution. No exemplars either — each one
                // names a concrete trace, the sharpest correlation.
                buckets: Vec::new(),
                exemplars: Vec::new(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdb_telemetry::Registry;

    #[test]
    fn escape_round_trips_hostile_names() {
        for s in ["plain", "a\"b", "back\\slash", "new\nline", "uni❄codé", ""] {
            assert_eq!(unescape_label(&escape_label(s)).as_deref(), Some(s));
        }
        assert_eq!(unescape_label("dangling\\"), None);
        assert_eq!(unescape_label("bad\\q"), None);
    }

    #[test]
    fn series_names_are_prometheus_safe() {
        assert_eq!(series_name("sql.statements"), "mdb_sql_statements");
        assert_eq!(series_name("a\"b\nc"), "mdb_a_b_c");
        assert_eq!(
            series_name("sql.latency_us.select"),
            "mdb_sql_latency_us_select"
        );
    }

    #[test]
    fn encode_then_parse_recovers_every_metric() {
        let r = Registry::new();
        r.counter("sql.statements").add(42);
        r.counter("sql.table_access.pat\"ients\n").add(7);
        r.gauge("repl.lag_events").set(-3);
        let h = r.histogram("sql.latency_us.select");
        for v in [0, 3, 700, 700] {
            h.record(v);
        }
        let text = encode(&r.snapshot(), &[("sql.statements".into(), 1.5)]);
        let samples = parse(&text).expect("own output parses");

        let find = |series: &str, name: &str| {
            samples
                .iter()
                .find(|s| s.series == series && s.metric_name() == Some(name))
                .unwrap_or_else(|| panic!("missing {series} for {name}"))
        };
        assert_eq!(
            find("mdb_sql_statements", "sql.statements").value_u64(),
            Some(42)
        );
        assert_eq!(
            find(
                "mdb_sql_table_access_pat_ients_",
                "sql.table_access.pat\"ients\n"
            )
            .value_u64(),
            Some(7)
        );
        assert_eq!(find("mdb_repl_lag_events", "repl.lag_events").value, "-3");
        assert_eq!(
            find("mdb_sql_latency_us_select_sum", "sql.latency_us.select").value_u64(),
            Some(1403)
        );
        assert_eq!(
            find("mdb_sql_latency_us_select_count", "sql.latency_us.select").value_u64(),
            Some(4)
        );
        assert_eq!(
            find("mdb_sql_statements_rate", "sql.statements").value_f64(),
            Some(1.5)
        );
        // Buckets are cumulative and end with +Inf at the total count.
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.series == "mdb_sql_latency_us_select_bucket")
            .collect();
        assert_eq!(buckets.last().unwrap().label("le"), Some("+Inf"));
        assert_eq!(buckets.last().unwrap().value_u64(), Some(4));
        let counts: Vec<u64> = buckets.iter().filter_map(|s| s.value_u64()).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn exemplars_ride_bucket_lines_and_scrub_drops_them() {
        let r = Registry::new();
        let h = r.histogram("sql.latency_us.select");
        h.record(3);
        h.record_with_exemplar(700, 0xDEAD_BEEF);
        let text = encode(&r.snapshot(), &[]);
        // The traced bucket (values 512..=1023) carries the exemplar…
        assert!(
            text.contains(&format!("# {{trace_id=\"{:032x}\"}} 700", 0xDEAD_BEEFu128)),
            "{text}"
        );
        // …and the output still parses, exposing it structurally.
        let samples = parse(&text).expect("exemplar lines parse");
        let traced: Vec<&Sample> = samples.iter().filter(|s| s.exemplar.is_some()).collect();
        assert_eq!(traced.len(), 1);
        assert_eq!(traced[0].series, "mdb_sql_latency_us_select_bucket");
        assert_eq!(traced[0].value_u64(), Some(2), "cumulative count intact");
        let (tid, val) = traced[0].exemplar.as_ref().unwrap();
        assert_eq!(tid, &format!("{:032x}", 0xDEAD_BEEFu128));
        assert_eq!(val, "700");

        // Scrubbed exposition: no exemplars anywhere.
        let scrubbed = encode(&scrub(&r.snapshot()), &[]);
        assert!(!scrubbed.contains("trace_id"), "{scrubbed}");
    }

    #[test]
    fn scrub_drops_tables_and_quantizes() {
        let r = Registry::new();
        r.counter("sql.statements").add(37);
        r.counter("sql.table_access.secret").add(5);
        r.gauge("depth").set(-37);
        r.histogram("lat").record(1000);
        let s = scrub(&r.snapshot());
        assert_eq!(s.counter("sql.statements"), Some(64));
        assert_eq!(s.counter("sql.table_access.secret"), None);
        assert_eq!(s.gauge("depth"), Some(-64));
        let h = s.histogram("lat").unwrap();
        assert_eq!(h.sum, 1024);
        assert!(h.buckets.is_empty());
        assert_eq!(quantize_pow2(0), 0);
        assert_eq!(quantize_pow2(1), 1);
        assert_eq!(quantize_pow2(65), 128);
    }
}
