//! Minimal HTTP/1.1 plumbing for the diagnostics plane (and the tiny
//! client the tests and the E17 remote observer use).
//!
//! Deliberately small: one request per connection, `Connection: close`,
//! GET only. A diagnostics endpoint does not need keep-alive — but it
//! does need to never wedge the engine, so every socket carries read
//! and write timeouts.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Per-socket read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_millis(2_000);

/// A parsed request line + headers.
#[derive(Clone, Debug)]
pub struct Request {
    /// HTTP method (`GET`).
    pub method: String,
    /// Request path without the query string.
    pub path: String,
    /// Lower-cased header names with their values.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// First value of header `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The bearer token from an `Authorization: Bearer <token>` header.
    pub fn bearer_token(&self) -> Option<&str> {
        self.header("authorization")?.strip_prefix("Bearer ")
    }
}

/// Reads one request (line + headers, no body) from the stream.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default();
    let path = target.split('?').next().unwrap_or_default().to_string();
    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        reader.read_line(&mut h)?;
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    Ok(Request {
        method,
        path,
        headers,
    })
}

/// Writes a complete response and flushes.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let reason = match status {
        200 => "OK",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Curl-style one-shot GET: returns `(status, body)`. This is the whole
/// client an external observer needs — which is the point of E17.
pub fn get(
    addr: impl ToSocketAddrs,
    path: &str,
    bearer: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let addr: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let auth = match bearer {
        Some(t) => format!("Authorization: Bearer {t}\r\n"),
        None => String::new(),
    };
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\n{auth}Connection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header break"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}
