//! # mdb-obs — the live diagnostics plane, and why it leaks
//!
//! A zero-dependency observability server that exposes an
//! [`mdb_telemetry::Registry`] over TCP, the way every production DBMS
//! exposes its status counters to Prometheus, load balancers, and
//! dashboards:
//!
//! * `GET /metrics` — Prometheus text exposition: counters, gauges, and
//!   log2-histogram `_bucket`/`_sum`/`_count` series ([`prom`]), plus
//!   per-second rates derived from the retention ring.
//! * `GET /healthz` — readiness probe fed by a caller-supplied
//!   [`HealthSource`] (the engine wires WAL, buffer-pool, and
//!   replication state into it).
//! * `GET /varz` — JSON dump reusing the registry's own serializer.
//!
//! Each `/metrics` scrape also lands a timestamped [`MetricsSnapshot`]
//! in an in-process [`RetentionRing`], so consecutive scrapes can be
//! turned into *rates and deltas*, not just lifetime totals.
//!
//! **This crate is the repo's first leakage surface that needs no
//! access to the victim's disk or memory.** Every earlier experiment
//! (snapshots, trace rings, zone maps) assumed the paper's snapshot
//! attacker; the scrape channel hands a *remote network observer* the
//! same per-table counters and volume histograms, refreshed on every
//! poll. E17 (`core::attacks::volume`) reconstructs per-query result
//! volumes purely from `/metrics` deltas. The mitigation knobs are
//! [`ObsOptions::auth_token`] (gate the channel) and
//! [`ObsOptions::scrub`] (quantize it, [`prom::scrub`]).

pub mod http;
pub mod prom;

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mdb_telemetry::{json, MetricsSnapshot, Registry};
use parking_lot::Mutex;

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Observability-server configuration.
#[derive(Clone, Debug)]
pub struct ObsOptions {
    /// Listen address (`"127.0.0.1:0"` binds an ephemeral port).
    pub listen: String,
    /// When set, `/metrics` and `/varz` require
    /// `Authorization: Bearer <token>`; `/healthz` stays open so load
    /// balancers keep working (exactly the hole real deployments leave).
    pub auth_token: Option<String>,
    /// Scrub the exposition: drop per-table series and quantize values
    /// to powers of two ([`prom::scrub`]).
    pub scrub: bool,
    /// Retention-ring capacity, in scrape snapshots.
    pub retention: usize,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            listen: "127.0.0.1:0".into(),
            auth_token: None,
            scrub: false,
            retention: 64,
        }
    }
}

/// One component's line in the `/healthz` report.
#[derive(Clone, Debug)]
pub struct HealthComponent {
    /// Component name (`wal`, `bufpool`, `replication`, …).
    pub name: String,
    /// Whether the component is healthy.
    pub ok: bool,
    /// Human-readable detail.
    pub detail: String,
}

/// The `/healthz` payload.
#[derive(Clone, Debug, Default)]
pub struct HealthReport {
    /// Overall readiness: 200 when true, 503 when false.
    pub ready: bool,
    /// Per-component state.
    pub components: Vec<HealthComponent>,
}

impl HealthReport {
    /// A degenerate not-ready report with a single reason.
    pub fn unavailable(reason: &str) -> HealthReport {
        HealthReport {
            ready: false,
            components: vec![HealthComponent {
                name: "engine".into(),
                ok: false,
                detail: reason.into(),
            }],
        }
    }

    /// Serializes as `{"ready":bool,"components":[{...}]}`.
    pub fn to_json(&self) -> String {
        let mut w = json::Writer::new();
        w.obj_open();
        w.key("ready");
        w.bool(self.ready);
        w.key("components");
        w.arr_open();
        for c in &self.components {
            w.obj_open();
            w.key("name");
            w.string(&c.name);
            w.key("ok");
            w.bool(c.ok);
            w.key("detail");
            w.string(&c.detail);
            w.obj_close();
        }
        w.arr_close();
        w.obj_close();
        w.into_string()
    }
}

/// Produces a fresh health report per `/healthz` request. Runs on the
/// obs accept thread; implementations may take engine locks but must
/// never block indefinitely.
pub type HealthSource = Arc<dyn Fn() -> HealthReport + Send + Sync>;

/// One retained scrape: when it happened, the totals it saw, and the
/// delta against the previous scrape.
#[derive(Clone, Debug)]
pub struct TimedSnapshot {
    /// Milliseconds since the server started.
    pub at_ms: u64,
    /// The totals this scrape rendered.
    pub totals: MetricsSnapshot,
    /// Counter deltas vs the previous retained scrape (empty on the
    /// first).
    pub counter_deltas: Vec<(String, u64)>,
}

/// Bounded in-process ring of timestamped scrape snapshots — the state
/// that turns lifetime totals into rates. Cheap to clone (shared).
///
/// Like the trace ring (PR 3), this is diagnostics state the engine
/// must clear on `flush_diagnostics` when `telemetry_scrub_on_flush`
/// is set: a "wiped" server that still holds the last N scrape deltas
/// has not wiped anything.
#[derive(Clone)]
pub struct RetentionRing {
    inner: Arc<Mutex<RingInner>>,
}

struct RingInner {
    capacity: usize,
    entries: VecDeque<TimedSnapshot>,
}

impl RetentionRing {
    /// An empty ring holding at most `capacity` scrapes.
    pub fn new(capacity: usize) -> RetentionRing {
        RetentionRing {
            inner: Arc::new(Mutex::new(RingInner {
                capacity: capacity.max(1),
                entries: VecDeque::new(),
            })),
        }
    }

    /// Pushes a scrape, computing its counter deltas against the
    /// previous entry; evicts the oldest entry beyond capacity.
    /// Returns the per-second counter rates for the new entry.
    pub fn push(&self, at_ms: u64, totals: MetricsSnapshot) -> Vec<(String, f64)> {
        let mut g = self.inner.lock();
        let mut deltas = Vec::new();
        let mut rates = Vec::new();
        if let Some(prev) = g.entries.back() {
            let dt_ms = at_ms.saturating_sub(prev.at_ms).max(1);
            for (name, cur) in &totals.counters {
                let before = prev.totals.counter(name).unwrap_or(0);
                let delta = cur.saturating_sub(before);
                deltas.push((name.clone(), delta));
                rates.push((name.clone(), delta as f64 * 1000.0 / dt_ms as f64));
            }
        }
        g.entries.push_back(TimedSnapshot {
            at_ms,
            totals,
            counter_deltas: deltas,
        });
        while g.entries.len() > g.capacity {
            g.entries.pop_front();
        }
        rates
    }

    /// Number of retained scrapes.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All retained scrapes, oldest first.
    pub fn entries(&self) -> Vec<TimedSnapshot> {
        self.inner.lock().entries.iter().cloned().collect()
    }

    /// Drops every retained scrape (the `flush_diagnostics` contract).
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }
}

/// The observability server: an accept loop on its own thread serving
/// `/metrics`, `/healthz`, and `/varz` for one registry.
pub struct ObsServer {
    addr: SocketAddr,
    ring: RetentionRing,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

struct Endpoints {
    registry: Registry,
    health: HealthSource,
    ring: RetentionRing,
    options: ObsOptions,
    started: Instant,
    scrapes: mdb_telemetry::Counter,
    unauthorized: mdb_telemetry::Counter,
}

impl ObsServer {
    /// Binds `options.listen` and starts serving. The server observes
    /// itself: `obs.scrapes` and `obs.unauthorized` are registered in
    /// the same registry it exports.
    pub fn start(
        registry: Registry,
        health: HealthSource,
        options: ObsOptions,
    ) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(options.listen.as_str())?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let ring = RetentionRing::new(options.retention);
        let shutdown = Arc::new(AtomicBool::new(false));
        let endpoints = Endpoints {
            scrapes: registry.counter("obs.scrapes"),
            unauthorized: registry.counter("obs.unauthorized"),
            registry,
            health,
            ring: ring.clone(),
            options,
            started: Instant::now(),
        };
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || accept_loop(&listener, &endpoints, &shutdown))
        };
        Ok(ObsServer {
            addr,
            ring,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The retention ring (shared handle).
    pub fn ring(&self) -> RetentionRing {
        self.ring.clone()
    }

    /// Stops the accept loop and joins the thread.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, endpoints: &Endpoints, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // One request per connection; errors only poison this
                // connection, never the loop.
                let _ = serve_one(&mut stream, endpoints);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
}

fn serve_one(stream: &mut std::net::TcpStream, ep: &Endpoints) -> std::io::Result<()> {
    let req = http::read_request(stream)?;
    if req.method != "GET" {
        return http::write_response(stream, 405, "text/plain", "GET only\n");
    }
    // /healthz stays unauthenticated (the load-balancer hole); the
    // data-bearing endpoints honor the token.
    if req.path != "/healthz" {
        if let Some(token) = &ep.options.auth_token {
            if req.bearer_token() != Some(token.as_str()) {
                ep.unauthorized.inc();
                return http::write_response(stream, 401, "text/plain", "unauthorized\n");
            }
        }
    }
    match req.path.as_str() {
        "/metrics" => {
            ep.scrapes.inc();
            let snap = ep.registry.snapshot();
            let snap = if ep.options.scrub {
                prom::scrub(&snap)
            } else {
                snap
            };
            let at_ms = ep.started.elapsed().as_millis() as u64;
            let rates = ep.ring.push(at_ms, snap.clone());
            let body = prom::encode(&snap, &rates);
            http::write_response(stream, 200, prom::CONTENT_TYPE, &body)
        }
        "/healthz" => {
            let report = (ep.health)();
            let status = if report.ready { 200 } else { 503 };
            http::write_response(stream, status, "application/json", &report.to_json())
        }
        "/varz" => {
            let snap = ep.registry.snapshot();
            let snap = if ep.options.scrub {
                prom::scrub(&snap)
            } else {
                snap
            };
            let mut w = json::Writer::new();
            w.obj_open();
            w.key("uptime_ms");
            w.u64(ep.started.elapsed().as_millis() as u64);
            w.key("retained_scrapes");
            w.u64(ep.ring.len() as u64);
            w.key("metrics");
            w.raw(&snap.to_json());
            w.obj_close();
            http::write_response(stream, 200, "application/json", &w.into_string())
        }
        _ => http::write_response(stream, 404, "text/plain", "unknown endpoint\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> HealthSource {
        Arc::new(|| HealthReport {
            ready: true,
            components: vec![HealthComponent {
                name: "test".into(),
                ok: true,
                detail: "static".into(),
            }],
        })
    }

    fn start(options: ObsOptions) -> (Registry, ObsServer) {
        let r = Registry::new();
        let srv = ObsServer::start(r.clone(), healthy(), options).unwrap();
        (r, srv)
    }

    #[test]
    fn metrics_endpoint_serves_exposition_and_rates() {
        let (r, mut srv) = start(ObsOptions::default());
        r.counter("sql.statements").add(5);
        let addr = srv.local_addr();
        let (status, body) = http::get(addr, "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("mdb_sql_statements{name=\"sql.statements\"} 5"),
            "{body}"
        );
        // Self-observation: the scrape itself is counted.
        r.counter("sql.statements").add(3);
        let (_, body2) = http::get(addr, "/metrics", None).unwrap();
        assert!(
            body2.contains("mdb_obs_scrapes{name=\"obs.scrapes\"} 2"),
            "{body2}"
        );
        // Second scrape has a rate series derived from the ring delta.
        assert!(
            body2.contains("mdb_sql_statements_rate{name=\"sql.statements\"}"),
            "{body2}"
        );
        assert_eq!(srv.ring().len(), 2);
        let entries = srv.ring().entries();
        let delta = entries[1]
            .counter_deltas
            .iter()
            .find(|(n, _)| n == "sql.statements")
            .unwrap()
            .1;
        assert_eq!(delta, 3);
        srv.stop();
    }

    #[test]
    fn healthz_and_varz_and_404() {
        let (r, mut srv) = start(ObsOptions::default());
        r.gauge("depth").set(7);
        let addr = srv.local_addr();
        let (status, body) = http::get(addr, "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ready\":true"), "{body}");
        let (status, body) = http::get(addr, "/varz", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"depth\":7"), "{body}");
        assert!(body.contains("\"uptime_ms\":"), "{body}");
        let (status, _) = http::get(addr, "/nope", None).unwrap();
        assert_eq!(status, 404);
        srv.stop();
    }

    #[test]
    fn auth_gates_metrics_but_not_healthz() {
        let (r, mut srv) = start(ObsOptions {
            auth_token: Some("s3cret".into()),
            ..ObsOptions::default()
        });
        r.counter("sql.statements").inc();
        let addr = srv.local_addr();
        let (status, _) = http::get(addr, "/metrics", None).unwrap();
        assert_eq!(status, 401);
        let (status, _) = http::get(addr, "/metrics", Some("wrong")).unwrap();
        assert_eq!(status, 401);
        let (status, body) = http::get(addr, "/metrics", Some("s3cret")).unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("mdb_obs_unauthorized{name=\"obs.unauthorized\"} 2"),
            "{body}"
        );
        let (status, _) = http::get(addr, "/healthz", None).unwrap();
        assert_eq!(status, 200);
        // Denied scrapes never land in the ring.
        assert_eq!(srv.ring().len(), 1);
        srv.stop();
    }

    #[test]
    fn scrub_mode_quantizes_the_exposition() {
        let (r, mut srv) = start(ObsOptions {
            scrub: true,
            ..ObsOptions::default()
        });
        r.counter("sql.statements").add(37);
        r.counter("sql.table_access.patients").add(9);
        let addr = srv.local_addr();
        let (_, body) = http::get(addr, "/metrics", None).unwrap();
        assert!(
            body.contains("mdb_sql_statements{name=\"sql.statements\"} 64"),
            "{body}"
        );
        assert!(!body.contains("table_access"), "{body}");
        srv.stop();
    }

    #[test]
    fn retention_ring_is_bounded_and_clearable() {
        let ring = RetentionRing::new(3);
        for i in 0..5u64 {
            let r = Registry::new();
            r.counter("c").add(i);
            ring.push(i * 100, r.snapshot());
        }
        assert_eq!(ring.len(), 3);
        let entries = ring.entries();
        assert_eq!(entries[0].at_ms, 200);
        // Deltas chain across retained entries.
        assert_eq!(entries[2].counter_deltas, vec![("c".to_string(), 1)]);
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn not_ready_health_is_503() {
        let r = Registry::new();
        let mut srv = ObsServer::start(
            r,
            Arc::new(|| HealthReport::unavailable("crashed")),
            ObsOptions::default(),
        )
        .unwrap();
        let (status, body) = http::get(srv.local_addr(), "/healthz", None).unwrap();
        assert_eq!(status, 503);
        assert!(body.contains("\"ready\":false"), "{body}");
        srv.stop();
    }
}
