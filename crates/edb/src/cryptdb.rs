//! A CryptDB/Mylar-style encrypted-database proxy.
//!
//! The proxy sits between the application and the (untrusted) DBMS. Each
//! logical column is stored under the weakest encryption its queries need:
//!
//! * `Plain` — stored as-is (public identifiers);
//! * `Det` — deterministic encryption; equality predicates run natively
//!   on ciphertext bytes;
//! * `Ore` — Lewi–Wu: the table stores *right* ciphertexts plus an RND
//!   copy for retrieval; range predicates ship a *left* ciphertext (the
//!   token) inside the rewritten SQL, evaluated by the `ORE_*` UDFs;
//! * `Search` — SWP searchable encryption over the words of a text value,
//!   plus an RND copy; keyword queries ship a trapdoor to the `SWP_MATCH`
//!   UDF.
//!
//! Everything the server evaluates is a ciphertext or a token — the
//! textbook design. The §6 observation is that those tokens *are in the
//! SQL text*, and the SQL text is everywhere: processlist, statement
//! history, the query cache, the heap.

use std::collections::HashMap;
use std::sync::Arc;

use edb_crypto::ore::{self, OreKey, OreParams};
use edb_crypto::swp::{SwpClient, Trapdoor, WordCiphertext, CIPHERTEXT_LEN};
use edb_crypto::{det, rnd, Key};
use minidb::engine::{Connection, Db};
use minidb::value::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::{hex_literal, EdbError, EdbResult};

/// Encryption mode of one logical column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnCrypto {
    /// Stored in the clear (INT).
    PlainInt,
    /// Deterministic encryption (equality-searchable).
    Det,
    /// Lewi–Wu ORE (range-searchable); plaintexts are `u32`.
    Ore,
    /// SWP word-searchable text.
    Search,
}

/// One logical column declaration.
#[derive(Clone, Debug)]
pub struct EncColumn {
    /// Logical column name.
    pub name: String,
    /// Encryption mode.
    pub crypto: ColumnCrypto,
    /// Whether this column is the (plaintext) primary key. Only valid for
    /// [`ColumnCrypto::PlainInt`].
    pub primary_key: bool,
}

/// A plaintext predicate the application asks the proxy to evaluate.
#[derive(Clone, Debug)]
pub enum Query {
    /// All rows.
    All,
    /// `col = value` on a DET (Text) or PlainInt column.
    Eq(String, Value),
    /// `lo <= col AND col <= hi` on an ORE column.
    Range(String, u32, u32),
    /// `col` contains the word (Search column).
    Contains(String, String),
}

struct TableState {
    columns: Vec<EncColumn>,
}

/// The client-side proxy. Holds all keys; the DBMS sees only ciphertexts
/// and query tokens.
pub struct CryptDbProxy {
    conn: Connection,
    master: Key,
    ore_key: OreKey,
    tables: HashMap<String, TableState>,
    rng: StdRng,
}

impl CryptDbProxy {
    /// Creates a proxy over `db`, registering the ciphertext-evaluation
    /// UDFs the rewritten queries rely on.
    pub fn new(db: &Db, master: Key, rng_seed: u64) -> EdbResult<CryptDbProxy> {
        let ore_key = OreKey::new(&Key::derive(&master, "ore"), OreParams::PAPER)?;
        register_udfs(db);
        Ok(CryptDbProxy {
            conn: db.connect("cryptdb-proxy"),
            master,
            ore_key,
            tables: HashMap::new(),
            rng: StdRng::seed_from_u64(rng_seed),
        })
    }

    fn det_key(&self, table: &str, col: &str) -> Key {
        Key::derive(&self.master, &format!("det:{table}.{col}"))
    }

    fn rnd_key(&self, table: &str, col: &str) -> Key {
        Key::derive(&self.master, &format!("rnd:{table}.{col}"))
    }

    fn swp_client(&self, table: &str, col: &str) -> SwpClient {
        SwpClient::new(&Key::derive(&self.master, &format!("swp:{table}.{col}")))
    }

    /// Creates an encrypted table.
    pub fn create_table(&mut self, table: &str, columns: Vec<EncColumn>) -> EdbResult<()> {
        let mut phys = Vec::new();
        for c in &columns {
            match c.crypto {
                ColumnCrypto::PlainInt => {
                    phys.push(format!(
                        "{} INT{}",
                        c.name,
                        if c.primary_key { " PRIMARY KEY" } else { "" }
                    ));
                }
                ColumnCrypto::Det => phys.push(format!("{}_det BYTES", c.name)),
                ColumnCrypto::Ore => {
                    phys.push(format!("{}_ore BYTES", c.name));
                    phys.push(format!("{}_rnd BYTES", c.name));
                }
                ColumnCrypto::Search => {
                    phys.push(format!("{}_swp BYTES", c.name));
                    phys.push(format!("{}_rnd BYTES", c.name));
                }
            }
            if c.primary_key && c.crypto != ColumnCrypto::PlainInt {
                return Err(EdbError::Client(
                    "primary keys must be PlainInt in this proxy".into(),
                ));
            }
        }
        self.conn
            .execute(&format!("CREATE TABLE {table} ({})", phys.join(", ")))?;
        // DET enables native equality, so the proxy indexes DET columns —
        // the very reason CryptDB uses DET instead of RND for them.
        for c in &columns {
            if c.crypto == ColumnCrypto::Det {
                self.conn.execute(&format!(
                    "CREATE INDEX ix_{table}_{col} ON {table} ({col}_det)",
                    col = c.name
                ))?;
            }
        }
        self.tables
            .insert(table.to_string(), TableState { columns });
        Ok(())
    }

    fn table(&self, name: &str) -> EdbResult<&TableState> {
        self.tables
            .get(name)
            .ok_or_else(|| EdbError::Client(format!("unknown encrypted table {name}")))
    }

    /// Inserts one logical row (values in declaration order).
    pub fn insert(&mut self, table: &str, values: &[Value]) -> EdbResult<()> {
        let state = self.table(table)?;
        if values.len() != state.columns.len() {
            return Err(EdbError::Client(format!(
                "expected {} values, got {}",
                state.columns.len(),
                values.len()
            )));
        }
        let columns = state.columns.clone();
        let mut literals = Vec::new();
        for (c, v) in columns.iter().zip(values) {
            match (c.crypto, v) {
                (ColumnCrypto::PlainInt, Value::Int(i)) => literals.push(i.to_string()),
                (ColumnCrypto::Det, Value::Text(s)) => {
                    let ct = det::encrypt(&self.det_key(table, &c.name), s.as_bytes());
                    literals.push(hex_literal(&ct));
                }
                (ColumnCrypto::Ore, Value::Int(i)) => {
                    let x = u32::try_from(*i)
                        .map_err(|_| EdbError::Client(format!("ORE plaintext {i} outside u32")))?;
                    let right = self.ore_key.encrypt_right(x as u64, &mut self.rng)?;
                    literals.push(hex_literal(&right.to_bytes()));
                    let ct = rnd::encrypt(
                        &self.rnd_key(table, &c.name),
                        &x.to_le_bytes(),
                        &mut self.rng,
                    );
                    literals.push(hex_literal(&ct));
                }
                (ColumnCrypto::Search, Value::Text(s)) => {
                    let swp = self.swp_client(table, &c.name);
                    let row_nonce: u64 = rand::Rng::gen(&mut self.rng);
                    let words: Vec<&str> = s.split_whitespace().collect();
                    let mut blob = Vec::with_capacity(2 + words.len() * CIPHERTEXT_LEN);
                    blob.extend_from_slice(&(words.len() as u16).to_le_bytes());
                    for (pos, w) in words.iter().enumerate() {
                        let ct = swp.encrypt_word(row_nonce, pos as u32, &w.to_lowercase());
                        blob.extend_from_slice(&ct.0);
                    }
                    literals.push(hex_literal(&blob));
                    let ct =
                        rnd::encrypt(&self.rnd_key(table, &c.name), s.as_bytes(), &mut self.rng);
                    literals.push(hex_literal(&ct));
                }
                (crypto, v) => {
                    return Err(EdbError::Client(format!(
                        "value {v:?} does not fit column mode {crypto:?}"
                    )))
                }
            }
        }
        self.conn.execute(&format!(
            "INSERT INTO {table} VALUES ({})",
            literals.join(", ")
        ))?;
        Ok(())
    }

    /// Rewrites a plaintext query into ciphertext SQL. Exposed separately
    /// so experiments can inspect exactly what the DBMS gets to see.
    pub fn rewrite(&mut self, table: &str, q: &Query) -> EdbResult<String> {
        let state = self.table(table)?;
        let col_mode = |name: &str| -> EdbResult<ColumnCrypto> {
            state
                .columns
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.crypto)
                .ok_or_else(|| EdbError::Client(format!("unknown column {name}")))
        };
        let where_clause = match q {
            Query::All => String::new(),
            Query::Eq(col, v) => match (col_mode(col)?, v) {
                (ColumnCrypto::PlainInt, Value::Int(i)) => format!(" WHERE {col} = {i}"),
                (ColumnCrypto::Det, Value::Text(s)) => {
                    let ct = det::encrypt(&self.det_key(table, col), s.as_bytes());
                    format!(" WHERE {col}_det = {}", hex_literal(&ct))
                }
                (mode, v) => {
                    return Err(EdbError::Client(format!(
                        "Eq not supported on {mode:?} with {v:?}"
                    )))
                }
            },
            Query::Range(col, lo, hi) => {
                if col_mode(col)? != ColumnCrypto::Ore {
                    return Err(EdbError::Client(format!("{col} is not an ORE column")));
                }
                // Two tokens: one per bound. These left ciphertexts are the
                // §6 leakage objects.
                let lo_tok = self.ore_key.encrypt_left(*lo as u64)?;
                let hi_tok = self.ore_key.encrypt_left(*hi as u64)?;
                format!(
                    " WHERE ORE_GE({col}_ore, {}) AND ORE_LE({col}_ore, {})",
                    hex_literal(&lo_tok.to_bytes()),
                    hex_literal(&hi_tok.to_bytes())
                )
            }
            Query::Contains(col, word) => {
                if col_mode(col)? != ColumnCrypto::Search {
                    return Err(EdbError::Client(format!("{col} is not a Search column")));
                }
                let td = self.swp_client(table, col).trapdoor(&word.to_lowercase());
                format!(
                    " WHERE SWP_MATCH({col}_swp, {})",
                    hex_literal(&td.to_bytes())
                )
            }
        };
        Ok(format!("SELECT * FROM {table}{where_clause}"))
    }

    /// Executes a plaintext query end-to-end: rewrite, run on the DBMS,
    /// decrypt the result rows.
    pub fn select(&mut self, table: &str, q: &Query) -> EdbResult<Vec<Vec<Value>>> {
        let sql = self.rewrite(table, q)?;
        let result = self.conn.execute(&sql)?;
        let columns = self.table(table)?.columns.clone();
        let mut out = Vec::with_capacity(result.rows.len());
        for row in result.rows {
            out.push(self.decrypt_row(table, &columns, &row)?);
        }
        Ok(out)
    }

    fn decrypt_row(
        &self,
        table: &str,
        columns: &[EncColumn],
        phys: &[Value],
    ) -> EdbResult<Vec<Value>> {
        let mut out = Vec::with_capacity(columns.len());
        let mut i = 0;
        for c in columns {
            match c.crypto {
                ColumnCrypto::PlainInt => {
                    out.push(phys[i].clone());
                    i += 1;
                }
                ColumnCrypto::Det => {
                    let Value::Bytes(ct) = &phys[i] else {
                        return Err(EdbError::Client("expected bytes in det column".into()));
                    };
                    let pt = det::decrypt(&self.det_key(table, &c.name), ct)?;
                    out.push(Value::Text(String::from_utf8_lossy(&pt).into_owned()));
                    i += 1;
                }
                ColumnCrypto::Ore => {
                    let Value::Bytes(ct) = &phys[i + 1] else {
                        return Err(EdbError::Client("expected bytes in rnd column".into()));
                    };
                    let pt = rnd::decrypt(&self.rnd_key(table, &c.name), ct)?;
                    let arr: [u8; 4] = pt
                        .as_slice()
                        .try_into()
                        .map_err(|_| EdbError::Client("bad ORE rnd payload".into()))?;
                    out.push(Value::Int(u32::from_le_bytes(arr) as i64));
                    i += 2;
                }
                ColumnCrypto::Search => {
                    let Value::Bytes(ct) = &phys[i + 1] else {
                        return Err(EdbError::Client("expected bytes in rnd column".into()));
                    };
                    let pt = rnd::decrypt(&self.rnd_key(table, &c.name), ct)?;
                    out.push(Value::Text(String::from_utf8_lossy(&pt).into_owned()));
                    i += 2;
                }
            }
        }
        Ok(out)
    }
}

/// Registers the ciphertext-evaluation UDFs (`ORE_GE`, `ORE_LE`,
/// `SWP_MATCH`) on the DBMS. These run *server-side* and need no keys —
/// only the tokens the rewritten queries carry.
pub fn register_udfs(db: &Db) {
    // Every ciphertext operation the server performs is counted in the
    // engine registry: the number of ORE comparisons is `rows × range
    // predicates`, so the counter alone reveals the range-query volume.
    let telemetry = db.telemetry();
    let ore_cmp_count = telemetry.counter("edb.ore.comparisons");
    let swp_match_count = telemetry.counter("edb.swp.word_matches");
    // ORE comparison is keyless by construction: anyone with the two
    // ciphertexts can compare. The UDFs parse bytes and run `compare`.
    let ore_cmps = ore_cmp_count.clone();
    let ge = move |args: &[Value]| -> minidb::DbResult<Value> {
        ore_cmps.inc();
        let (stored, token) = parse_ore_args(args)?;
        let leak = ore::compare_leak(&token, &stored)
            .map_err(|e| minidb::DbError::Eval(format!("ORE compare: {e}")))?;
        // stored >= token  ⇔  token <= stored  ⇔  compare(token, stored) is
        // Less or Equal.
        Ok(Value::Int(matches!(
            leak.ordering,
            core::cmp::Ordering::Less | core::cmp::Ordering::Equal
        ) as i64))
    };
    let ore_cmps = ore_cmp_count;
    let le = move |args: &[Value]| -> minidb::DbResult<Value> {
        ore_cmps.inc();
        let (stored, token) = parse_ore_args(args)?;
        let leak = ore::compare_leak(&token, &stored)
            .map_err(|e| minidb::DbError::Eval(format!("ORE compare: {e}")))?;
        Ok(Value::Int(matches!(
            leak.ordering,
            core::cmp::Ordering::Greater | core::cmp::Ordering::Equal
        ) as i64))
    };
    db.register_function("ORE_GE", Arc::new(ge));
    db.register_function("ORE_LE", Arc::new(le));
    db.register_function(
        "SWP_MATCH",
        Arc::new(move |args: &[Value]| -> minidb::DbResult<Value> {
            swp_match_count.inc();
            let (Value::Bytes(blob), Value::Bytes(td_bytes)) = (&args[0], &args[1]) else {
                return Err(minidb::DbError::Eval("SWP_MATCH expects bytes".into()));
            };
            let td = Trapdoor::from_bytes(td_bytes)
                .ok_or_else(|| minidb::DbError::Eval("bad trapdoor".into()))?;
            let matched = parse_swp_blob(blob)
                .map_err(minidb::DbError::Eval)?
                .iter()
                .any(|ct| edb_crypto::swp::server_match(&td, ct));
            Ok(Value::Int(matched as i64))
        }),
    );
}

fn parse_ore_args(args: &[Value]) -> minidb::DbResult<(ore::RightCiphertext, ore::LeftCiphertext)> {
    let (Value::Bytes(stored), Value::Bytes(token)) = (&args[0], &args[1]) else {
        return Err(minidb::DbError::Eval(
            "ORE UDF expects two byte args".into(),
        ));
    };
    let right = ore::RightCiphertext::from_bytes(stored)
        .map_err(|e| minidb::DbError::Eval(format!("bad right ct: {e}")))?;
    let left = ore::LeftCiphertext::from_bytes(token)
        .map_err(|e| minidb::DbError::Eval(format!("bad token: {e}")))?;
    Ok((right, left))
}

/// Parses the `count || word-cts` blob a Search column stores.
pub fn parse_swp_blob(blob: &[u8]) -> Result<Vec<WordCiphertext>, String> {
    if blob.len() < 2 {
        return Err("short swp blob".into());
    }
    let n = u16::from_le_bytes([blob[0], blob[1]]) as usize;
    if blob.len() != 2 + n * CIPHERTEXT_LEN {
        return Err("swp blob length mismatch".into());
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let off = 2 + i * CIPHERTEXT_LEN;
        let mut ct = [0u8; CIPHERTEXT_LEN];
        ct.copy_from_slice(&blob[off..off + CIPHERTEXT_LEN]);
        out.push(WordCiphertext(ct));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::engine::DbConfig;

    fn proxy() -> (Db, CryptDbProxy) {
        let db = Db::open(DbConfig::default());
        let p = CryptDbProxy::new(&db, Key([3u8; 32]), 42).unwrap();
        (db, p)
    }

    fn docs_table(p: &mut CryptDbProxy) {
        p.create_table(
            "docs",
            vec![
                EncColumn {
                    name: "id".into(),
                    crypto: ColumnCrypto::PlainInt,
                    primary_key: true,
                },
                EncColumn {
                    name: "state".into(),
                    crypto: ColumnCrypto::Det,
                    primary_key: false,
                },
                EncColumn {
                    name: "salary".into(),
                    crypto: ColumnCrypto::Ore,
                    primary_key: false,
                },
                EncColumn {
                    name: "body".into(),
                    crypto: ColumnCrypto::Search,
                    primary_key: false,
                },
            ],
        )
        .unwrap();
        for (id, state, salary, body) in [
            (1i64, "IN", 55_000u32, "meeting about gas prices"),
            (2, "AZ", 72_000, "energy trading desk update"),
            (3, "IN", 48_000, "lunch plans and gas receipts"),
            (4, "CA", 120_000, "quarterly energy results"),
        ] {
            p.insert(
                "docs",
                &[
                    Value::Int(id),
                    Value::Text(state.into()),
                    Value::Int(salary as i64),
                    Value::Text(body.into()),
                ],
            )
            .unwrap();
        }
    }

    #[test]
    fn det_equality_round_trip() {
        let (_db, mut p) = proxy();
        docs_table(&mut p);
        let rows = p
            .select("docs", &Query::Eq("state".into(), Value::Text("IN".into())))
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r[1] == Value::Text("IN".into())));
        // Full decryption restored all logical columns.
        assert!(matches!(rows[0][3], Value::Text(_)));
    }

    #[test]
    fn det_equality_uses_an_index() {
        let (db, mut p) = proxy();
        docs_table(&mut p);
        let conn = db.connect("check");
        let r = conn
            .execute("EXPLAIN SELECT * FROM docs WHERE state_det = X'00'")
            .unwrap();
        let plan = r.rows[0][0].to_string();
        assert!(plan.contains("index scan on ix_docs_state"), "{plan}");
    }

    #[test]
    fn ore_range_round_trip() {
        let (_db, mut p) = proxy();
        docs_table(&mut p);
        let rows = p
            .select("docs", &Query::Range("salary".into(), 50_000, 80_000))
            .unwrap();
        let ids: Vec<i64> = rows
            .iter()
            .map(|r| match r[0] {
                Value::Int(i) => i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(rows[0][2], Value::Int(55_000));
    }

    #[test]
    fn search_round_trip() {
        let (_db, mut p) = proxy();
        docs_table(&mut p);
        let rows = p
            .select("docs", &Query::Contains("body".into(), "energy".into()))
            .unwrap();
        assert_eq!(rows.len(), 2);
        let rows = p
            .select("docs", &Query::Contains("body".into(), "gas".into()))
            .unwrap();
        assert_eq!(rows.len(), 2);
        let rows = p
            .select("docs", &Query::Contains("body".into(), "absent".into()))
            .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn server_never_sees_plaintext() {
        // Small logs keep the byte scan fast; the leakage property is
        // capacity-independent.
        let mut config = DbConfig::default();
        config.redo_capacity = 1 << 20;
        config.undo_capacity = 1 << 20;
        let db = Db::open(config);
        let mut p = CryptDbProxy::new(&db, Key([3u8; 32]), 42).unwrap();
        docs_table(&mut p);
        let _ = p
            .select("docs", &Query::Contains("body".into(), "energy".into()))
            .unwrap();
        db.shutdown();
        // No disk file contains the (distinctive) plaintexts.
        let disk = db.disk_image();
        for name in disk.file_names() {
            let data = disk.file(name).unwrap();
            for secret in [&b"energy"[..], b"meeting", b"quarterly"] {
                assert!(
                    !data.windows(secret.len()).any(|w| w == secret),
                    "plaintext {:?} leaked into {name}",
                    String::from_utf8_lossy(secret)
                );
            }
        }
    }

    #[test]
    fn rewritten_sql_carries_tokens() {
        let (_db, mut p) = proxy();
        docs_table(&mut p);
        let sql = p
            .rewrite("docs", &Query::Range("salary".into(), 10, 20))
            .unwrap();
        assert!(sql.contains("ORE_GE(salary_ore, X'"), "{sql}");
        assert!(sql.contains("ORE_LE(salary_ore, X'"), "{sql}");
        let sql = p
            .rewrite("docs", &Query::Contains("body".into(), "gas".into()))
            .unwrap();
        assert!(sql.contains("SWP_MATCH(body_swp, X'"), "{sql}");
    }

    #[test]
    fn misuse_rejected() {
        let (_db, mut p) = proxy();
        docs_table(&mut p);
        assert!(p
            .select("docs", &Query::Range("state".into(), 0, 1))
            .is_err());
        assert!(p
            .select("docs", &Query::Eq("salary".into(), Value::Int(1)))
            .is_err());
        assert!(p.select("nope", &Query::All).is_err());
        assert!(p.insert("docs", &[Value::Int(9)]).is_err());
        assert!(p
            .insert(
                "docs",
                &[
                    Value::Int(9),
                    Value::Int(1), // Wrong type for Det column.
                    Value::Int(1),
                    Value::Text("x".into()),
                ],
            )
            .is_err());
    }

    #[test]
    fn select_all_decrypts_everything() {
        let (_db, mut p) = proxy();
        docs_table(&mut p);
        let rows = p.select("docs", &Query::All).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3][2], Value::Int(120_000));
        assert_eq!(rows[3][3], Value::Text("quarterly energy results".into()));
    }
}
