//! An Arx-style encrypted range index over MiniDB.
//!
//! Index nodes are semantically secure ciphertexts stored in a table; the
//! client walks the treap, and — as in Arx — every node a range query
//! touches is *consumed* and must be repaired with a fresh encryption.
//! Each repair is an `UPDATE` through the DBMS, which means each repair
//! lands in the undo/redo logs and the binlog.
//!
//! §6 "Arx": *"a snapshot of the system's persistent state will contain a
//! transcript of every range query made on the index, because the write
//! corresponding to each read will be recorded in the transaction logs."*
//! This module reproduces exactly that correlation; the attack lives in
//! `snapshot-attack::attacks::arx_transcript`.

use std::collections::HashMap;

use edb_crypto::treap::{EncTreap, NodeId};
use edb_crypto::Key;
use minidb::engine::{Connection, Db};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::{hex_literal, EdbResult};

/// The Arx range index plus its backing table.
pub struct ArxRangeIndex {
    conn: Connection,
    table: String,
    treap: EncTreap,
    /// Client-side mapping from index node to the application row it
    /// stands for (Arx hides this from the server with a second round).
    node_to_row: HashMap<NodeId, u64>,
    rng: StdRng,
}

impl ArxRangeIndex {
    /// Creates the index table `<name>` with `(node_id, ct)` rows.
    pub fn create(db: &Db, master: &Key, name: &str, rng_seed: u64) -> EdbResult<ArxRangeIndex> {
        let conn = db.connect("arx-client");
        conn.execute(&format!(
            "CREATE TABLE {name} (node_id INT PRIMARY KEY, ct BYTES)"
        ))?;
        Ok(ArxRangeIndex {
            conn,
            table: name.to_string(),
            treap: EncTreap::new(Key::derive(master, &format!("arx:{name}"))),
            node_to_row: HashMap::new(),
            rng: StdRng::seed_from_u64(rng_seed),
        })
    }

    /// Inserts an index entry for `value` referring to application row
    /// `row_ref`.
    pub fn insert(&mut self, value: u64, row_ref: u64) -> EdbResult<NodeId> {
        let node = self.treap.insert(value, &mut self.rng);
        self.node_to_row.insert(node, row_ref);
        let view = self.treap.server_view();
        let ct = &view[node as usize].ciphertext;
        self.conn.execute(&format!(
            "INSERT INTO {} VALUES ({node}, {})",
            self.table,
            hex_literal(ct)
        ))?;
        Ok(node)
    }

    /// Runs the range query `lo..=hi`: traverses the index, issues the
    /// repair writes (the leak!), and returns the matching rows'
    /// application references.
    pub fn range(&mut self, lo: u64, hi: u64) -> EdbResult<Vec<u64>> {
        let result = self
            .treap
            .range(lo, hi, &mut self.rng)
            .map_err(crate::error::EdbError::Crypto)?;
        // Repair round: one UPDATE per consumed node, committed as a
        // single transaction (the client batches the round trip).
        let repairs = self.treap.drain_repairs();
        if !repairs.is_empty() {
            self.conn.execute("BEGIN")?;
            for repair in &repairs {
                self.conn.execute(&format!(
                    "UPDATE {} SET ct = {} WHERE node_id = {}",
                    self.table,
                    hex_literal(&repair.new_ciphertext),
                    repair.node
                ))?;
            }
            self.conn.execute("COMMIT")?;
        }
        Ok(result.matches.iter().map(|n| self.node_to_row[n]).collect())
    }

    /// Number of index nodes.
    pub fn len(&self) -> usize {
        self.treap.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.treap.is_empty()
    }

    /// Oracle accessor for experiments: the plaintext value of a node.
    pub fn oracle_value(&self, node: NodeId) -> u64 {
        self.treap.oracle_value(node)
    }

    /// Oracle accessor: in-order node ids (ground-truth rank order).
    pub fn oracle_inorder(&self) -> Vec<NodeId> {
        self.treap.inorder_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::engine::DbConfig;
    use minidb::value::Value;
    use minidb::wal::{carve_frames, BinlogEvent};

    fn build(values: &[u64]) -> (Db, ArxRangeIndex) {
        let db = Db::open(DbConfig::default());
        let mut ix = ArxRangeIndex::create(&db, &Key([8u8; 32]), "arx_age", 7).unwrap();
        for (row, &v) in values.iter().enumerate() {
            ix.insert(v, 1000 + row as u64).unwrap();
        }
        (db, ix)
    }

    #[test]
    fn range_returns_matching_rows() {
        let (_db, mut ix) = build(&[10, 20, 30, 40, 50]);
        let mut rows = ix.range(15, 45).unwrap();
        rows.sort_unstable();
        assert_eq!(rows, vec![1001, 1002, 1003]);
        // Repairs restored the index: another query works.
        let rows = ix.range(0, 100).unwrap();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn index_table_holds_only_ciphertexts() {
        let (db, _ix) = build(&[7, 8, 9]);
        let conn = db.connect("attacker");
        let r = conn.execute("SELECT * FROM arx_age").unwrap();
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            let Value::Bytes(ct) = &row[1] else { panic!() };
            // RND of a u64 value: 8 bytes + overhead; no plaintext visible.
            assert_eq!(ct.len(), 8 + edb_crypto::rnd::OVERHEAD);
        }
    }

    #[test]
    fn every_range_query_writes_repairs_into_the_logs() {
        let (db, mut ix) = build(&(0..32).map(|i| i * 10).collect::<Vec<u64>>());
        // Snapshot the binlog before and after a query.
        let before = db.disk_image();
        let events_before = carve_frames(before.file(minidb::wal::BINLOG_FILE).unwrap()).len();
        let _ = ix.range(100, 150).unwrap();
        let after = db.disk_image();
        let binlog = after.file(minidb::wal::BINLOG_FILE).unwrap();
        let events: Vec<BinlogEvent> = carve_frames(binlog)
            .into_iter()
            .filter_map(|(_, p)| BinlogEvent::decode(p).ok())
            .collect();
        let updates: Vec<&BinlogEvent> = events[events_before..]
            .iter()
            .filter(|e| e.statement.starts_with("UPDATE arx_age"))
            .collect();
        assert!(
            !updates.is_empty(),
            "repair writes must appear in the binlog"
        );
        // Each update names its node id — the traversal transcript.
        for u in &updates {
            assert!(u.statement.contains("WHERE node_id = "), "{}", u.statement);
        }
    }

    #[test]
    fn repairs_reencrypt_the_stored_ciphertexts() {
        let (db, mut ix) = build(&[1, 2, 3]);
        let conn = db.connect("observer");
        let before = conn
            .execute("SELECT ct FROM arx_age ORDER BY node_id")
            .unwrap();
        let _ = ix.range(0, 10).unwrap();
        let after = conn
            .execute("SELECT ct FROM arx_age ORDER BY node_id")
            .unwrap();
        // All three nodes visited → all three ciphertexts changed.
        for (b, a) in before.rows.iter().zip(after.rows.iter()) {
            assert_ne!(b, a, "repair must change the stored ciphertext");
        }
    }

    #[test]
    fn empty_and_memoryless_queries() {
        let db = Db::open(DbConfig::default());
        let mut ix = ArxRangeIndex::create(&db, &Key([9u8; 32]), "empty_ix", 3).unwrap();
        assert!(ix.is_empty());
        assert!(ix.range(0, 5).unwrap().is_empty());
    }
}
