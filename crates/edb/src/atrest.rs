//! Transparent at-rest encryption (InnoDB tablespace encryption, TDE).
//!
//! A key held **in process memory but never written to disk** encrypts
//! every file of the tablespace. §6 "At-rest encryption": an attacker who
//! compromises only the disk learns nothing except side channels such as
//! relative file sizes — but *any higher level of access reveals the
//! entire data*, because the key sits in memory. The key is registered in
//! the DB process heap under a keyring tag (as real keyring plugins do),
//! so a memory snapshot contains it verbatim.

use edb_crypto::{kdf, rnd, Key};
use minidb::engine::Db;
use minidb::snapshot::DiskImage;

use crate::error::EdbResult;

/// Tag preceding key material in the process heap (keyring plugins keep
/// their key store in exactly this kind of tagged in-memory structure).
pub const KEYRING_TAG: &[u8] = b"KEYRING\x00v1\x00";

/// The at-rest encryption layer.
pub struct AtRest {
    key: Key,
}

impl AtRest {
    /// Derives the tablespace key from `master` and registers it in the
    /// DB process heap (where a memory snapshot will find it).
    pub fn install(db: &Db, master: &Key) -> AtRest {
        let key = Key(kdf::derive_key(&master.0, b"at-rest-tablespace"));
        let mut tagged = KEYRING_TAG.to_vec();
        tagged.extend_from_slice(&key.0);
        db.process_alloc(&tagged);
        AtRest { key }
    }

    /// Creates the layer from an explicit key without registering it
    /// anywhere (for attacker-side decryption after key recovery).
    pub fn from_key(key: Key) -> AtRest {
        AtRest { key }
    }

    /// Encrypts every file of a disk image, as the storage layer would
    /// before bytes reach the platters. File names and (up to constant
    /// overhead) sizes are preserved — the side channel the paper notes.
    pub fn encrypt_disk(&self, image: &DiskImage, rng: &mut impl rand::Rng) -> DiskImage {
        let files = image
            .files
            .iter()
            .map(|(name, data)| {
                let file_key = self.file_key(name);
                (name.clone(), rnd::encrypt(&file_key, data, rng))
            })
            .collect();
        DiskImage { files }
    }

    /// Decrypts an at-rest-encrypted disk image (what the attacker does
    /// the moment the key leaks from memory).
    pub fn decrypt_disk(&self, image: &DiskImage) -> EdbResult<DiskImage> {
        let mut files = std::collections::BTreeMap::new();
        for (name, data) in &image.files {
            let file_key = self.file_key(name);
            files.insert(name.clone(), rnd::decrypt(&file_key, data)?);
        }
        Ok(DiskImage { files })
    }

    fn file_key(&self, file_name: &str) -> Key {
        Key(kdf::derive_key(&self.key.0, file_name.as_bytes()))
    }

    /// The raw key bytes (test/oracle accessor).
    pub fn key_bytes(&self) -> &[u8; 32] {
        &self.key.0
    }
}

/// Scans a memory image's heap for a keyring-tagged key — the trivial
/// "attack" that defeats at-rest encryption for every vector stronger
/// than disk theft.
pub fn carve_keyring_key(heap: &[u8]) -> Option<Key> {
    let pos = heap
        .windows(KEYRING_TAG.len())
        .position(|w| w == KEYRING_TAG)?;
    let start = pos + KEYRING_TAG.len();
    let bytes: [u8; 32] = heap.get(start..start + 32)?.try_into().ok()?;
    Some(Key(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::engine::DbConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Small circular logs keep whole-disk encryption fast in debug tests.
    fn small_db() -> Db {
        let mut config = DbConfig::default();
        config.redo_capacity = 1 << 16;
        config.undo_capacity = 1 << 16;
        Db::open(config)
    }

    #[test]
    fn disk_theft_sees_only_sizes() {
        let db = small_db();
        let conn = db.connect("app");
        conn.execute("CREATE TABLE s (id INT PRIMARY KEY, secret TEXT)")
            .unwrap();
        conn.execute("INSERT INTO s VALUES (1, 'the-plaintext-secret')")
            .unwrap();
        db.shutdown();

        let at_rest = AtRest::install(&db, &Key([9u8; 32]));
        let mut rng = StdRng::seed_from_u64(1);
        let plain = db.disk_image();
        let encrypted = at_rest.encrypt_disk(&plain, &mut rng);

        // Same file names, sizes within constant overhead.
        assert_eq!(plain.file_names(), encrypted.file_names());
        for name in plain.file_names() {
            let p = plain.file(name).unwrap().len();
            let e = encrypted.file(name).unwrap().len();
            assert_eq!(e, p + rnd::OVERHEAD);
        }
        // No file contains the plaintext.
        for name in encrypted.file_names() {
            let data = encrypted.file(name).unwrap();
            assert!(
                !data
                    .windows(b"the-plaintext-secret".len())
                    .any(|w| w == b"the-plaintext-secret"),
                "plaintext leaked into encrypted file {name}"
            );
        }
        // Round trip.
        let back = at_rest.decrypt_disk(&encrypted).unwrap();
        assert_eq!(back.file("catalog"), plain.file("catalog"));
    }

    #[test]
    fn memory_snapshot_contains_the_key() {
        let db = small_db();
        let at_rest = AtRest::install(&db, &Key([7u8; 32]));
        let mem = db.memory_image();
        let carved = carve_keyring_key(&mem.heap).expect("key must be in the heap");
        assert_eq!(&carved.0, at_rest.key_bytes());
        // And the carved key actually decrypts the disk.
        let conn = db.connect("app");
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        db.shutdown();
        let mut rng = StdRng::seed_from_u64(2);
        let encrypted = at_rest.encrypt_disk(&db.disk_image(), &mut rng);
        let attacker = AtRest::from_key(carved);
        assert!(attacker.decrypt_disk(&encrypted).is_ok());
    }

    #[test]
    fn wrong_key_fails_decryption() {
        let db = small_db();
        db.connect("app")
            .execute("CREATE TABLE t (id INT PRIMARY KEY)")
            .unwrap();
        db.shutdown();
        let at_rest = AtRest::from_key(Key([1u8; 32]));
        let mut rng = StdRng::seed_from_u64(3);
        let encrypted = at_rest.encrypt_disk(&db.disk_image(), &mut rng);
        let wrong = AtRest::from_key(Key([2u8; 32]));
        assert!(wrong.decrypt_disk(&encrypted).is_err());
    }

    #[test]
    fn carve_requires_tag() {
        assert!(carve_keyring_key(b"no tag here").is_none());
        let mut heap = vec![0u8; 100];
        heap.extend_from_slice(KEYRING_TAG);
        heap.extend_from_slice(&[5u8; 32]);
        assert_eq!(carve_keyring_key(&heap).unwrap().0, [5u8; 32]);
    }
}
