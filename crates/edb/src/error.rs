//! Error type for the encrypted-database layers.

use core::fmt;

use edb_crypto::CryptoError;
use minidb::DbError;

/// Errors from the encrypted-database layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdbError {
    /// The underlying DBMS failed.
    Db(DbError),
    /// A cryptographic operation failed.
    Crypto(CryptoError),
    /// The proxy was misused (unknown table/column, wrong plaintext type).
    Client(String),
}

impl fmt::Display for EdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdbError::Db(e) => write!(f, "dbms error: {e}"),
            EdbError::Crypto(e) => write!(f, "crypto error: {e}"),
            EdbError::Client(m) => write!(f, "client error: {m}"),
        }
    }
}

impl std::error::Error for EdbError {}

impl From<DbError> for EdbError {
    fn from(e: DbError) -> Self {
        EdbError::Db(e)
    }
}

impl From<CryptoError> for EdbError {
    fn from(e: CryptoError) -> Self {
        EdbError::Crypto(e)
    }
}

/// Convenience alias.
pub type EdbResult<T> = Result<T, EdbError>;

/// Renders bytes as a SQL hex literal.
pub fn hex_literal(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2 + 3);
    s.push_str("X'");
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s.push('\'');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_literal_format() {
        assert_eq!(hex_literal(&[0xDE, 0x01]), "X'de01'");
        assert_eq!(hex_literal(&[]), "X''");
    }

    #[test]
    fn error_conversions() {
        let e: EdbError = DbError::UnknownTable("t".into()).into();
        assert!(matches!(e, EdbError::Db(_)));
        let e: EdbError = CryptoError::AuthenticationFailed.into();
        assert!(format!("{e}").contains("crypto"));
    }
}
