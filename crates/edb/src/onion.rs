//! CryptDB-style *adjustable onion encryption*.
//!
//! CryptDB stores each sensitive column at the strongest encryption that
//! still supports the queries seen so far: initially `RND(DET(value))` —
//! semantically secure — and when the first equality query arrives the
//! proxy *peels* the RND layer by sending the server a decryption key for
//! the outer layer, leaving DET ciphertexts that support `=` natively.
//!
//! Two §-relevant consequences, both reproduced here:
//!
//! * **Peeling is a write.** The layer adjustment rewrites every cell of
//!   the column (`UPDATE … SET col = <det ct>`), so the transaction logs
//!   record *when* each column was downgraded and what its DET ciphertexts
//!   are — a snapshot attacker learns the downgrade history even if the
//!   column was peeled back long ago.
//! * **Peeling is a ratchet.** The column never returns to RND, so one
//!   equality query permanently reduces the column to
//!   frequency-analysis-vulnerable DET — the "leakage inheritance" that
//!   §6 exploits via the at-rest histogram.

use std::collections::HashMap;

use edb_crypto::{det, rnd, Key};
use minidb::engine::{Connection, Db};
use minidb::value::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::{hex_literal, EdbError, EdbResult};

/// The onion state of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OnionLevel {
    /// `RND(DET(value))` — semantically secure, supports no predicates.
    Rnd,
    /// `DET(value)` — equality-searchable, leaks the histogram at rest.
    Det,
}

/// An onion-encrypted table with one sensitive text column.
pub struct OnionTable {
    conn: Connection,
    name: String,
    det_key: Key,
    rnd_key: Key,
    level: OnionLevel,
    rows: u64,
    rng: StdRng,
    /// Ratchet log: simulated time at which each peel happened.
    peel_log: Vec<i64>,
    /// Client-side cache of the inner DET cts (used to peel).
    det_cts: HashMap<u64, Vec<u8>>,
}

impl OnionTable {
    /// Creates the table: `id INT PRIMARY KEY, secret BYTES`.
    pub fn create(db: &Db, master: &Key, name: &str, rng_seed: u64) -> EdbResult<OnionTable> {
        let conn = db.connect("onion-proxy");
        conn.execute(&format!(
            "CREATE TABLE {name} (id INT PRIMARY KEY, secret BYTES)"
        ))?;
        Ok(OnionTable {
            conn,
            name: name.to_string(),
            det_key: Key::derive(master, &format!("{name}.det")),
            rnd_key: Key::derive(master, &format!("{name}.rnd")),
            level: OnionLevel::Rnd,
            rows: 0,
            rng: StdRng::seed_from_u64(rng_seed),
            peel_log: Vec::new(),
            det_cts: HashMap::new(),
        })
    }

    /// Current onion level.
    pub fn level(&self) -> OnionLevel {
        self.level
    }

    /// Times at which the column was downgraded.
    pub fn peel_log(&self) -> &[i64] {
        &self.peel_log
    }

    /// Inserts a row. At `Rnd` the stored cell is `RND(DET(value))`; after
    /// a peel, new rows are inserted directly at `DET`.
    pub fn insert(&mut self, value: &str) -> EdbResult<u64> {
        let id = self.rows;
        let inner = det::encrypt(&self.det_key, value.as_bytes());
        self.det_cts.insert(id, inner.clone());
        let cell = match self.level {
            OnionLevel::Rnd => rnd::encrypt(&self.rnd_key, &inner, &mut self.rng),
            OnionLevel::Det => inner,
        };
        self.conn.execute(&format!(
            "INSERT INTO {} VALUES ({id}, {})",
            self.name,
            hex_literal(&cell)
        ))?;
        self.rows += 1;
        Ok(id)
    }

    /// Peels the RND layer so equality predicates can run. Idempotent.
    /// Every cell is rewritten — one logged `UPDATE` per row, committed as
    /// one transaction (the adjustment CryptDB performs server-side with
    /// the delivered layer key; MiniDB has no in-server decrypt UDF, so
    /// the proxy writes the inner ciphertexts itself — the log footprint
    /// is the same).
    pub fn peel_to_det(&mut self) -> EdbResult<()> {
        if self.level == OnionLevel::Det {
            return Ok(());
        }
        self.conn.execute("BEGIN")?;
        for id in 0..self.rows {
            let inner = self.det_cts.get(&id).expect("client cache is complete");
            self.conn.execute(&format!(
                "UPDATE {} SET secret = {} WHERE id = {id}",
                self.name,
                hex_literal(inner)
            ))?;
        }
        self.conn.execute("COMMIT")?;
        self.level = OnionLevel::Det;
        self.peel_log.push(self.conn.db().now());
        // The downgrade itself is telemetry-visible: one ratchet event
        // and a burst of rewrites the size of the column.
        let telemetry = self.conn.db().telemetry();
        telemetry.counter("edb.onion.peel_downgrades").inc();
        telemetry.counter("edb.onion.peel_rewrites").add(self.rows);
        Ok(())
    }

    /// Runs `secret = value`, peeling first if required. Returns matching
    /// row ids.
    pub fn select_eq(&mut self, value: &str) -> EdbResult<Vec<u64>> {
        self.peel_to_det()?;
        let ct = det::encrypt(&self.det_key, value.as_bytes());
        let r = self.conn.execute(&format!(
            "SELECT id FROM {} WHERE secret = {}",
            self.name,
            hex_literal(&ct)
        ))?;
        Ok(r.rows
            .iter()
            .map(|row| match row[0] {
                Value::Int(i) => i as u64,
                _ => unreachable!("id column is INT"),
            })
            .collect())
    }

    /// Decrypts one row through the proxy (any level).
    pub fn read(&mut self, id: u64) -> EdbResult<String> {
        let r = self
            .conn
            .execute(&format!("SELECT secret FROM {} WHERE id = {id}", self.name))?;
        let Some(row) = r.rows.first() else {
            return Err(EdbError::Client(format!("row {id} not found")));
        };
        let Value::Bytes(cell) = &row[0] else {
            return Err(EdbError::Client("expected bytes cell".into()));
        };
        let inner = match self.level {
            OnionLevel::Rnd => rnd::decrypt(&self.rnd_key, cell)?,
            OnionLevel::Det => cell.clone(),
        };
        let plain = det::decrypt(&self.det_key, &inner)?;
        Ok(String::from_utf8_lossy(&plain).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::engine::DbConfig;
    use minidb::wal::BINLOG_FILE;
    use snapshot_attack_helpers::*;

    /// Minimal local forensic helpers (the full ones live in the
    /// `snapshot-attack` crate, which depends on this one).
    mod snapshot_attack_helpers {
        use minidb::wal::{carve_frames, BinlogEvent};

        pub fn binlog_events(raw: &[u8]) -> Vec<BinlogEvent> {
            carve_frames(raw)
                .into_iter()
                .filter_map(|(_, p)| BinlogEvent::decode(p).ok())
                .collect()
        }
    }

    fn small_db() -> Db {
        let mut config = DbConfig::default();
        config.redo_capacity = 2 << 20;
        config.undo_capacity = 2 << 20;
        Db::open(config)
    }

    fn load(t: &mut OnionTable) {
        for v in ["flu", "flu", "diabetes", "flu", "rare"] {
            t.insert(v).unwrap();
        }
    }

    #[test]
    fn rnd_level_hides_equality() {
        let db = small_db();
        let mut t = OnionTable::create(&db, &Key([1u8; 32]), "onions", 3).unwrap();
        load(&mut t);
        assert_eq!(t.level(), OnionLevel::Rnd);
        // At rest, all five cells are distinct (RND): no histogram.
        let conn = db.connect("attacker");
        let r = conn.execute("SELECT secret FROM onions").unwrap();
        let mut cells: Vec<&Value> = r.rows.iter().map(|row| &row[0]).collect();
        cells.sort();
        cells.dedup();
        assert_eq!(cells.len(), 5, "RND cells must all differ");
        // And reads still decrypt.
        assert_eq!(t.read(2).unwrap(), "diabetes");
    }

    #[test]
    fn equality_query_ratchets_to_det() {
        let db = small_db();
        let mut t = OnionTable::create(&db, &Key([2u8; 32]), "onions", 4).unwrap();
        load(&mut t);
        let hits = t.select_eq("flu").unwrap();
        assert_eq!(hits, vec![0, 1, 3]);
        assert_eq!(t.level(), OnionLevel::Det);
        // The ratchet: the at-rest histogram now leaks (3-1-1).
        let conn = db.connect("attacker");
        let r = conn.execute("SELECT secret FROM onions").unwrap();
        let mut counts = std::collections::HashMap::new();
        for row in &r.rows {
            *counts.entry(row[0].clone()).or_insert(0usize) += 1;
        }
        let mut hist: Vec<usize> = counts.values().copied().collect();
        hist.sort_unstable();
        assert_eq!(hist, vec![1, 1, 3]);
        // Reads still work, and later inserts go in at DET.
        assert_eq!(t.read(0).unwrap(), "flu");
        t.insert("flu").unwrap();
        assert_eq!(t.select_eq("flu").unwrap().len(), 4);
    }

    #[test]
    fn peel_is_idempotent() {
        let db = small_db();
        let mut t = OnionTable::create(&db, &Key([3u8; 32]), "onions", 5).unwrap();
        load(&mut t);
        t.peel_to_det().unwrap();
        let first_log = t.peel_log().to_vec();
        t.peel_to_det().unwrap();
        t.select_eq("rare").unwrap();
        assert_eq!(t.peel_log(), first_log.as_slice(), "only one peel event");
    }

    #[test]
    fn peeling_leaves_a_logged_write_burst() {
        let db = small_db();
        let mut t = OnionTable::create(&db, &Key([4u8; 32]), "onions", 6).unwrap();
        load(&mut t);
        let before = binlog_events(db.disk_image().file(BINLOG_FILE).unwrap()).len();
        t.select_eq("flu").unwrap();
        let events = binlog_events(db.disk_image().file(BINLOG_FILE).unwrap());
        let peels: Vec<_> = events[before..]
            .iter()
            .filter(|e| e.statement.starts_with("UPDATE onions SET secret"))
            .collect();
        assert_eq!(peels.len(), 5, "one rewrite per row, all in the logs");
        // All five share one transaction: the downgrade moment is datable.
        let txns: std::collections::BTreeSet<u64> = peels.iter().map(|e| e.txn).collect();
        assert_eq!(txns.len(), 1);
        // And the undo log still holds the *old RND cells* — the snapshot
        // attacker can even prove the column used to be RND.
        let undo =
            minidb::wal::carve_frames(db.disk_image().file(minidb::wal::UNDO_FILE).unwrap()).len();
        assert!(undo > 0);
    }
}
