//! A Seabed-style encrypted analytics table: SPLASHE-split categorical
//! columns with ASHE aggregation, plus the enhanced variant.
//!
//! The client rewrites `SELECT count(*) FROM t WHERE a = v` into
//! `SELECT ASHE_SUM(c_<v>) FROM t` — the server sums one opaque column
//! and learns nothing *from the data*. Enhanced SPLASHE keeps dedicated
//! columns only for frequent values; infrequent values share a DET "tail"
//! column, padded with dummy rows so every tail value appears equally
//! often at rest.
//!
//! The §6 failure: each rewritten query names its column in plain SQL, so
//! the DBMS digest table accumulates an exact *query histogram per
//! plaintext value*, and frequency analysis does the rest.

use edb_crypto::feistel::SmallPrp;
use edb_crypto::splashe::{SplasheColumn, SplasheConfig};
use edb_crypto::{kdf, Key};
use minidb::engine::{Connection, Db};
use minidb::value::Value;

use crate::error::{hex_literal, EdbError, EdbResult};

/// Operating mode.
#[derive(Clone, Debug)]
pub enum SeabedMode {
    /// Basic SPLASHE: every domain value gets a dedicated column.
    Basic,
    /// Enhanced SPLASHE: `frequent` values get dedicated columns; the rest
    /// live in a padded DET tail. Each tail value is padded with dummy
    /// rows up to `pad_each_to` apparent occurrences.
    Enhanced {
        /// Values with dedicated columns.
        frequent: Vec<u32>,
        /// Padding target per tail value.
        pad_each_to: u64,
    },
}

/// One Seabed-protected table with a single sensitive categorical column.
pub struct SeabedTable {
    conn: Connection,
    name: String,
    column: SplasheColumn,
    /// Secret value→column-label permutation: the server must not learn a
    /// column's plaintext from its *name*, only the client knows the map.
    label_prp: SmallPrp,
    mode: SeabedMode,
    domain: u32,
    /// Ids of real (non-padding) rows, in insertion order.
    real_rows: u64,
    /// All row ids ever inserted (real + padding).
    all_rows: u64,
    /// True per-tail-value padding counts (client-side bookkeeping).
    tail_padding: std::collections::BTreeMap<u32, u64>,
}

impl SeabedTable {
    /// Creates the encrypted table. `domain` is the size of the sensitive
    /// column's plaintext domain (values `0..domain`).
    pub fn create(
        db: &Db,
        master: &Key,
        name: &str,
        domain: u32,
        mode: SeabedMode,
    ) -> EdbResult<SeabedTable> {
        let config = match &mode {
            SeabedMode::Basic => SplasheConfig::basic(domain),
            SeabedMode::Enhanced { frequent, .. } => {
                SplasheConfig::enhanced(domain, frequent.clone())?
            }
        };
        let column = SplasheColumn::new(master, &format!("{name}.a"), config);
        let label_prp = SmallPrp::new(
            &kdf::derive_key(&master.0, format!("{name}.labels").as_bytes()),
            domain as u64,
        );
        let conn = db.connect("seabed-proxy");
        let mut cols = vec!["id INT PRIMARY KEY".to_string()];
        for &v in &column.config().dedicated {
            cols.push(format!("c{} INT", label_prp.permute(v as u64)));
        }
        if matches!(mode, SeabedMode::Enhanced { .. }) {
            cols.push("tail BYTES".to_string());
        }
        conn.execute(&format!("CREATE TABLE {name} ({})", cols.join(", ")))?;
        Ok(SeabedTable {
            conn,
            name: name.to_string(),
            column,
            label_prp,
            mode,
            domain,
            real_rows: 0,
            all_rows: 0,
            tail_padding: Default::default(),
        })
    }

    /// Inserts one row whose sensitive value is `value`.
    pub fn insert(&mut self, value: u32) -> EdbResult<()> {
        if value >= self.domain {
            return Err(EdbError::Client(format!("value {value} outside domain")));
        }
        let id = self.all_rows;
        let cell = self.column.encode(id, value)?;
        let mut literals = vec![id.to_string()];
        for ashe in &cell.ashe_cells {
            literals.push((ashe.body as i64).to_string());
        }
        if matches!(self.mode, SeabedMode::Enhanced { .. }) {
            match &cell.det_tail {
                Some(ct) => literals.push(hex_literal(ct)),
                None => literals.push("NULL".to_string()),
            }
        }
        self.conn.execute(&format!(
            "INSERT INTO {} VALUES ({})",
            self.name,
            literals.join(", ")
        ))?;
        self.all_rows += 1;
        self.real_rows += 1;
        Ok(())
    }

    /// Pads the tail (enhanced mode): adds dummy rows so every non-
    /// dedicated value reaches the configured apparent count. Call once
    /// after loading real data.
    pub fn pad_tail(&mut self) -> EdbResult<()> {
        let SeabedMode::Enhanced { pad_each_to, .. } = self.mode.clone() else {
            return Ok(());
        };
        for v in 0..self.domain {
            if self.column.config().is_dedicated(v) {
                continue;
            }
            // Count existing apparent occurrences of v in the tail.
            let ct = self.column.tail_padding_cell(v);
            let r = self.conn.execute(&format!(
                "SELECT COUNT(*) FROM {} WHERE tail = {}",
                self.name,
                hex_literal(&ct)
            ))?;
            let existing = match r.rows[0][0] {
                Value::Int(n) => n as u64,
                _ => 0,
            };
            for _ in existing..pad_each_to {
                let id = self.all_rows;
                // Dummy rows carry ASHE(0) in every dedicated column so
                // they never perturb dedicated counts.
                let cell = self.column.encode(id, v)?;
                let mut literals = vec![id.to_string()];
                for ashe in &cell.ashe_cells {
                    literals.push((ashe.body as i64).to_string());
                }
                literals.push(hex_literal(cell.det_tail.as_ref().expect("tail value")));
                self.conn.execute(&format!(
                    "INSERT INTO {} VALUES ({})",
                    self.name,
                    literals.join(", ")
                ))?;
                self.all_rows += 1;
                *self.tail_padding.entry(v).or_insert(0) += 1;
            }
        }
        Ok(())
    }

    /// The rewritten SQL for `count(a = value)` — exposed so experiments
    /// can inspect what the DBMS sees (and digests).
    pub fn rewrite_count(&self, value: u32) -> EdbResult<String> {
        if self.column.config().is_dedicated(value) {
            let label = self.label_prp.permute(value as u64);
            Ok(format!("SELECT ASHE_SUM(c{label}) FROM {}", self.name))
        } else {
            let ct = self.column.tail_padding_cell(value);
            Ok(format!(
                "SELECT COUNT(*) FROM {} WHERE tail = {}",
                self.name,
                hex_literal(&ct)
            ))
        }
    }

    /// Runs `SELECT count(*) WHERE a = value` through the rewriting.
    pub fn count_eq(&mut self, value: u32) -> EdbResult<u64> {
        if value >= self.domain {
            return Err(EdbError::Client(format!("value {value} outside domain")));
        }
        let sql = self.rewrite_count(value)?;
        let r = self.conn.execute(&sql)?;
        let raw = match r.rows[0][0] {
            Value::Int(n) => n as u64,
            _ => return Err(EdbError::Client("unexpected aggregate type".into())),
        };
        if self.column.config().is_dedicated(value) {
            Ok(self.column.decrypt_count(value, 0..self.all_rows, raw)?)
        } else {
            // Tail counts include padding; the client subtracts it.
            let pad = self.tail_padding.get(&value).copied().unwrap_or(0);
            Ok(raw - pad)
        }
    }

    /// Total rows including padding (server-visible size).
    pub fn apparent_rows(&self) -> u64 {
        self.all_rows
    }

    /// Oracle accessor (ground truth for experiments): the plaintext value
    /// behind a dedicated column label, i.e. the inverse of the secret
    /// permutation. A real attacker does not have this.
    pub fn oracle_value_of_label(&self, label: u32) -> u32 {
        self.label_prp.invert(label as u64) as u32
    }

    /// The DET tail ciphertext for `value` (oracle/test accessor).
    pub fn oracle_tail_ct(&self, value: u32) -> Vec<u8> {
        self.column.tail_padding_cell(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::engine::DbConfig;

    fn load(t: &mut SeabedTable, values: &[u32]) {
        for &v in values {
            t.insert(v).unwrap();
        }
    }

    #[test]
    fn basic_counts_match_plaintext() {
        let db = Db::open(DbConfig::default());
        let mut t =
            SeabedTable::create(&db, &Key([1u8; 32]), "sales", 5, SeabedMode::Basic).unwrap();
        let values = [0u32, 1, 1, 2, 2, 2, 4];
        load(&mut t, &values);
        for v in 0..5 {
            let expect = values.iter().filter(|&&x| x == v).count() as u64;
            assert_eq!(t.count_eq(v).unwrap(), expect, "value {v}");
        }
    }

    #[test]
    fn server_stores_only_opaque_numbers() {
        let db = Db::open(DbConfig::default());
        let mut t =
            SeabedTable::create(&db, &Key([2u8; 32]), "sales", 3, SeabedMode::Basic).unwrap();
        load(&mut t, &[0, 0, 1, 2]);
        // The raw column sums are ASHE-padded: they are not the counts.
        let conn = db.connect("attacker");
        let r = conn.execute("SELECT ASHE_SUM(c0) FROM sales").unwrap();
        let Value::Int(raw) = r.rows[0][0] else {
            panic!()
        };
        assert_ne!(raw, 2, "raw ASHE sum must not equal the plaintext count");
    }

    #[test]
    fn enhanced_mode_counts_and_padding() {
        let db = Db::open(DbConfig::default());
        let mut t = SeabedTable::create(
            &db,
            &Key([3u8; 32]),
            "sales",
            6,
            SeabedMode::Enhanced {
                frequent: vec![0, 1],
                pad_each_to: 5,
            },
        )
        .unwrap();
        // Frequent: 0 (x4), 1 (x3). Infrequent: 3 (x2), 5 (x1).
        load(&mut t, &[0, 0, 0, 0, 1, 1, 1, 3, 3, 5]);
        t.pad_tail().unwrap();
        assert_eq!(t.count_eq(0).unwrap(), 4);
        assert_eq!(t.count_eq(1).unwrap(), 3);
        assert_eq!(t.count_eq(3).unwrap(), 2);
        assert_eq!(t.count_eq(5).unwrap(), 1);
        assert_eq!(t.count_eq(2).unwrap(), 0);
        // At rest, every tail value appears exactly pad_each_to times.
        let conn = db.connect("attacker");
        for v in [2u32, 3, 4, 5] {
            let ct = t.column.tail_padding_cell(v);
            let r = conn
                .execute(&format!(
                    "SELECT COUNT(*) FROM sales WHERE tail = {}",
                    hex_literal(&ct)
                ))
                .unwrap();
            assert_eq!(r.rows[0][0], Value::Int(5), "tail value {v} not padded");
        }
    }

    #[test]
    fn rewrite_names_the_column() {
        let db = Db::open(DbConfig::default());
        let t = SeabedTable::create(&db, &Key([4u8; 32]), "s", 4, SeabedMode::Basic).unwrap();
        let sql = t.rewrite_count(2).unwrap();
        assert!(
            sql.starts_with("SELECT ASHE_SUM(c") && sql.ends_with(" FROM s"),
            "{sql}"
        );
        // The column label must not trivially reveal the value for every
        // value (the map is a secret permutation)...
        let labels: Vec<String> = (0..4).map(|v| t.rewrite_count(v).unwrap()).collect();
        assert!(
            (0..4).any(|v| labels[v as usize] != format!("SELECT ASHE_SUM(c{v}) FROM s")),
            "permutation must not be the identity: {labels:?}"
        );
        // ...but distinct values → distinct SQL → distinct digests. That
        // is the leak the digest table will aggregate.
        assert_ne!(t.rewrite_count(1).unwrap(), t.rewrite_count(2).unwrap());
    }

    #[test]
    fn out_of_domain_rejected() {
        let db = Db::open(DbConfig::default());
        let mut t = SeabedTable::create(&db, &Key([5u8; 32]), "s", 2, SeabedMode::Basic).unwrap();
        assert!(t.insert(2).is_err());
        assert!(t.count_eq(2).is_err());
    }
}
