//! Encrypted-database layers over MiniDB, reproducing the designs the
//! paper analyses in §6:
//!
//! * [`atrest`] — transparent at-rest (tablespace) encryption: strong
//!   against pure disk theft, void against anything that sees memory.
//! * [`onion`] — CryptDB's adjustable onion encryption (`RND(DET(·))`),
//!   whose layer-peeling writes are themselves a logged leakage channel.
//! * [`cryptdb`] — a CryptDB/Mylar-style proxy: DET columns for equality,
//!   Lewi–Wu ORE columns for ranges, SWP searchable columns for keyword
//!   search, with query rewriting that sends *tokens* to the server.
//! * [`seabed`] — Seabed's SPLASHE: per-value ASHE columns with
//!   aggregation rewriting, plus the enhanced variant with a padded DET
//!   tail.
//! * [`arx`] — an Arx-style encrypted range index whose read-repair
//!   protocol turns every range query into logged writes.
//!
//! Each layer is an honest client: it keeps keys client-side, sends only
//! ciphertexts and tokens to the DBMS, and achieves exactly the security
//! its original paper claims *against the abstract model*. The point of
//! the reproduction is that the substrate (MiniDB's logs, diagnostics,
//! caches, and heap) betrays them — see the `snapshot-attack` crate.

pub mod arx;
pub mod atrest;
pub mod cryptdb;
pub mod error;
pub mod onion;
pub mod seabed;

pub use error::EdbError;
