//! A minimal interactive SQL shell against an in-process `mdb-server`.
//!
//! Spins up a [`minidb`] engine, serves it on an ephemeral loopback
//! port, connects an [`MdbClient`] to that port, and REPLs stdin lines
//! as SQL — the full network round trip, in one process:
//!
//! ```text
//! cargo run -p mdb-server --example minidb-cli
//! minidb/0.1 at 127.0.0.1:43617, session 1
//! sql> CREATE TABLE t (id INT PRIMARY KEY, name TEXT)
//! ok (0 rows affected)
//! sql> INSERT INTO t VALUES (1, 'alice'), (2, 'bob')
//! ok (2 rows affected)
//! sql> SELECT * FROM t
//! id | name
//! ---+------
//! 1  | alice
//! 2  | bob
//! (2 rows)
//! sql> \trace
//! span       | start_us | dur_us | detail
//! -----------+----------+--------+-------
//! statement  | 0        | 304    | rows_examined=2 rows_returned=2
//! …
//! sql> \q
//! ```
//!
//! Meta-commands: `\trace` prints the server-side span tree of this
//! session's most recent statement (the `EXPLAIN ANALYZE` renderer over
//! the flight recorder); `\q` quits.

use std::io::{BufRead, Write};

use mdb_server::{MdbClient, MdbServer, ServerOptions};
use minidb::engine::{Db, DbConfig};

fn render(rs: &mdb_server::WireResultSet) -> String {
    if rs.columns.is_empty() {
        return format!("ok ({} rows affected)", rs.rows_affected);
    }
    let mut cells: Vec<Vec<String>> = vec![rs.columns.clone()];
    for row in &rs.rows {
        cells.push(row.iter().map(|v| v.to_string()).collect());
    }
    let widths: Vec<usize> = (0..rs.columns.len())
        .map(|i| cells.iter().map(|r| r[i].len()).max().unwrap_or(0))
        .collect();
    let mut out = String::new();
    for (ri, row) in cells.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        out.push_str(line.join(" | ").trim_end());
        out.push('\n');
        if ri == 0 {
            let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            out.push_str(&sep.join("-+-"));
            out.push('\n');
        }
    }
    out.push_str(&format!("({} rows)", rs.rows.len()));
    out
}

fn main() {
    let db = Db::open(DbConfig::default());
    let srv = MdbServer::start(db, ServerOptions::default()).expect("bind ephemeral port");
    let addr = srv.local_addr();
    let mut client = MdbClient::connect(addr, "cli").expect("connect");
    println!(
        "{} at {addr}, session {}",
        client.server_name(),
        client.session_id()
    );

    let stdin = std::io::stdin();
    loop {
        print!("sql> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let sql = line.trim();
        if sql.is_empty() {
            continue;
        }
        if sql == "\\q" || sql.eq_ignore_ascii_case("quit") || sql.eq_ignore_ascii_case("exit") {
            break;
        }
        if sql == "\\trace" {
            match client.trace() {
                Ok(rs) => println!("{}", render(&rs)),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        match client.query(sql) {
            Ok(rs) => println!("{}", render(&rs)),
            Err(e) => println!("error: {e}"),
        }
    }
    client.close().ok();
}
