//! Property-based tests for the server wire protocol: unicode
//! round-trips, chunked reassembly, mid-stream cuts with resync, and
//! CRC corruption rejection.

use mdb_server::{FrameDecoder, WireError, WireMessage, WireResultSet};
use minidb::value::Value;
use proptest::prelude::*;

fn arb_text() -> impl Strategy<Value = String> {
    // Unicode-heavy but free of the bytes `M S R V` so a cut payload
    // cannot alias the frame magic (multi-byte UTF-8 is all >= 0x80).
    "[a-z0-9 éß❤'=(),]{0,48}".prop_map(|s| s)
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        arb_text().prop_map(Value::Text),
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(Value::Bytes),
    ]
}

fn arb_message() -> impl Strategy<Value = WireMessage> {
    prop_oneof![
        arb_text().prop_map(|user| WireMessage::Hello { user }),
        arb_text().prop_map(|sql| WireMessage::Query { sql }),
        (arb_text(), arb_text()).prop_map(|(name, sql)| WireMessage::Prepare { name, sql }),
        arb_text().prop_map(|name| WireMessage::ExecutePrepared { name }),
        Just(WireMessage::Quit),
        (any::<u64>(), arb_text())
            .prop_map(|(session_id, server)| WireMessage::Greeting { session_id, server }),
        (
            proptest::collection::vec(arb_text(), 0..4),
            proptest::collection::vec(proptest::collection::vec(arb_value(), 0..4), 0..6),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(columns, rows, rows_examined, rows_affected)| {
                WireMessage::Result(WireResultSet {
                    columns,
                    rows,
                    rows_examined,
                    rows_affected,
                })
            }),
        arb_text().prop_map(|message| WireMessage::Error { message }),
        Just(WireMessage::Bye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn payloads_round_trip(m in arb_message()) {
        prop_assert_eq!(WireMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn chunked_streams_reassemble(
        msgs in proptest::collection::vec(arb_message(), 1..6),
        chunk in 1usize..17,
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&m.to_frame());
        }
        let mut dec = FrameDecoder::default();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.feed(piece);
            while let Some(m) = dec.next_message().unwrap() {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
    }

    #[test]
    fn mid_stream_cut_resyncs_to_next_frame(
        a in arb_message(),
        b in arb_message(),
        cut_frac in 0u8..=100,
    ) {
        // Transmit a prefix of frame A (a connection cut mid-frame),
        // then an intact frame B: B must always be recovered.
        let fa = a.to_frame();
        let cut = (fa.len() * cut_frac as usize) / 100;
        let mut stream = fa[..cut].to_vec();
        stream.extend_from_slice(&b.to_frame());
        // Trailing traffic: the decoder only discovers the cut once
        // enough bytes arrive to cover the truncated frame's claimed
        // length — a stream parser cannot detect a cut from silence.
        stream.extend_from_slice(&vec![0u8; fa.len() + 16]);
        let mut dec = FrameDecoder::default();
        dec.feed(&stream);
        let mut got = Vec::new();
        loop {
            match dec.next_message() {
                Ok(Some(m)) => got.push(m),
                Ok(None) => break,
                Err(_) => continue, // the cut may surface as a CRC error
            }
        }
        prop_assert!(got.contains(&b), "B lost after cut at {}/{}", cut, fa.len());
    }

    #[test]
    fn corrupted_payload_byte_is_rejected_then_resynced(
        a in arb_message(),
        b in arb_message(),
        flip in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut fa = a.to_frame();
        let payload_len = fa.len() - 12;
        prop_assume!(payload_len > 0);
        let pos = 8 + (flip as usize % payload_len);
        fa[pos] ^= 1 << bit;
        let mut dec = FrameDecoder::default();
        dec.feed(&fa);
        dec.feed(&b.to_frame());
        // The corrupt frame must never decode as a message; B must
        // still arrive.
        let mut got = Vec::new();
        let mut crc_errors = 0;
        loop {
            match dec.next_message() {
                Ok(Some(m)) => got.push(m),
                Ok(None) => break,
                Err(WireError::Crc { .. }) => crc_errors += 1,
                Err(WireError::Protocol(_)) => {}
            }
        }
        prop_assert!(crc_errors >= 1, "payload corruption must fail the CRC");
        prop_assert!(got.contains(&b));
        prop_assert!(!got.contains(&a) || a == b, "corrupt frame decoded");
    }
}
