//! Property-based tests for the server wire protocol: unicode
//! round-trips, chunked reassembly, mid-stream cuts with resync, CRC
//! corruption rejection, and mixed v1/v2 (trace-context) streams.

use mdb_server::wire::Envelope;
use mdb_server::{FrameDecoder, WireError, WireMessage, WireResultSet};
use mdb_trace::TraceContext;
use minidb::value::Value;
use proptest::prelude::*;

fn arb_text() -> impl Strategy<Value = String> {
    // Unicode-heavy but free of the bytes `M S R V` so a cut payload
    // cannot alias the frame magic (multi-byte UTF-8 is all >= 0x80).
    "[a-z0-9 éß❤'=(),]{0,48}".prop_map(|s| s)
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        arb_text().prop_map(Value::Text),
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(Value::Bytes),
    ]
}

fn arb_message() -> impl Strategy<Value = WireMessage> {
    prop_oneof![
        arb_text().prop_map(|user| WireMessage::Hello { user }),
        arb_text().prop_map(|sql| WireMessage::Query { sql }),
        (arb_text(), arb_text()).prop_map(|(name, sql)| WireMessage::Prepare { name, sql }),
        arb_text().prop_map(|name| WireMessage::ExecutePrepared { name }),
        Just(WireMessage::Quit),
        (any::<u64>(), arb_text())
            .prop_map(|(session_id, server)| WireMessage::Greeting { session_id, server }),
        (
            proptest::collection::vec(arb_text(), 0..4),
            proptest::collection::vec(proptest::collection::vec(arb_value(), 0..4), 0..6),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(columns, rows, rows_examined, rows_affected)| {
                WireMessage::Result(WireResultSet {
                    columns,
                    rows,
                    rows_examined,
                    rows_affected,
                })
            }),
        arb_text().prop_map(|message| WireMessage::Error { message }),
        Just(WireMessage::Bye),
    ]
}

fn arb_ctx() -> impl Strategy<Value = Option<TraceContext>> {
    prop_oneof![
        2 => Just(None),
        3 => (any::<u128>(), any::<u64>(), any::<bool>()).prop_map(|(trace_id, span_id, sampled)| {
            Some(TraceContext { trace_id, span_id, sampled })
        }),
    ]
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (arb_message(), arb_ctx()).prop_map(|(msg, ctx)| Envelope { msg, ctx })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn payloads_round_trip(m in arb_message()) {
        prop_assert_eq!(WireMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn chunked_streams_reassemble(
        msgs in proptest::collection::vec(arb_message(), 1..6),
        chunk in 1usize..17,
    ) {
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&m.to_frame());
        }
        let mut dec = FrameDecoder::default();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.feed(piece);
            while let Some(m) = dec.next_message().unwrap() {
                got.push(m);
            }
        }
        prop_assert_eq!(got, msgs);
    }

    #[test]
    fn mid_stream_cut_resyncs_to_next_frame(
        a in arb_message(),
        b in arb_message(),
        cut_frac in 0u8..=100,
    ) {
        // Transmit a prefix of frame A (a connection cut mid-frame),
        // then an intact frame B: B must always be recovered.
        let fa = a.to_frame();
        let cut = (fa.len() * cut_frac as usize) / 100;
        let mut stream = fa[..cut].to_vec();
        stream.extend_from_slice(&b.to_frame());
        // Trailing traffic: the decoder only discovers the cut once
        // enough bytes arrive to cover the truncated frame's claimed
        // length — a stream parser cannot detect a cut from silence.
        stream.extend_from_slice(&vec![0u8; fa.len() + 16]);
        let mut dec = FrameDecoder::default();
        dec.feed(&stream);
        let mut got = Vec::new();
        loop {
            match dec.next_message() {
                Ok(Some(m)) => got.push(m),
                Ok(None) => break,
                Err(_) => continue, // the cut may surface as a CRC error
            }
        }
        prop_assert!(got.contains(&b), "B lost after cut at {}/{}", cut, fa.len());
    }

    #[test]
    fn corrupted_payload_byte_is_rejected_then_resynced(
        a in arb_message(),
        b in arb_message(),
        flip in any::<u16>(),
        bit in 0u8..8,
    ) {
        let mut fa = a.to_frame();
        let payload_len = fa.len() - 12;
        prop_assume!(payload_len > 0);
        let pos = 8 + (flip as usize % payload_len);
        fa[pos] ^= 1 << bit;
        let mut dec = FrameDecoder::default();
        dec.feed(&fa);
        dec.feed(&b.to_frame());
        // The corrupt frame must never decode as a message; B must
        // still arrive.
        let mut got = Vec::new();
        let mut crc_errors = 0;
        loop {
            match dec.next_message() {
                Ok(Some(m)) => got.push(m),
                Ok(None) => break,
                Err(WireError::Crc { .. }) => crc_errors += 1,
                Err(WireError::Protocol(_)) => {}
            }
        }
        prop_assert!(crc_errors >= 1, "payload corruption must fail the CRC");
        prop_assert!(got.contains(&b));
        prop_assert!(!got.contains(&a) || a == b, "corrupt frame decoded");
    }

    #[test]
    fn mixed_v1_v2_streams_decode_in_order(
        envs in proptest::collection::vec(arb_envelope(), 1..8),
        chunk in 1usize..17,
    ) {
        // A single decoder must handle interleaved protocol versions:
        // context-free envelopes frame as byte-identical v1 `MSRV`
        // frames, context-carrying ones as v2 `MSV2` frames, in any
        // order, fed in arbitrary chunk sizes.
        let mut stream = Vec::new();
        for e in &envs {
            stream.extend_from_slice(&e.to_frame());
        }
        let mut dec = FrameDecoder::default();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            dec.feed(piece);
            while let Some(e) = dec.next_envelope().unwrap() {
                got.push(e);
            }
        }
        prop_assert_eq!(got, envs);
    }

    #[test]
    fn next_message_drops_ctx_but_keeps_the_payload(
        m in arb_message(),
        ctx in arb_ctx(),
    ) {
        // A v1-era consumer (`next_message`) pointed at a v2 stream
        // still sees every message — the context slot is versioned
        // out, not a hard break.
        let env = Envelope { msg: m.clone(), ctx };
        let mut dec = FrameDecoder::default();
        dec.feed(&env.to_frame());
        prop_assert_eq!(dec.next_message().unwrap(), Some(m));
        prop_assert_eq!(dec.next_message().unwrap(), None);
    }

    #[test]
    fn cut_v2_frame_resyncs_onto_either_version(
        a in arb_envelope(),
        b in arb_envelope(),
        cut_frac in 0u8..=100,
    ) {
        // A mid-frame cut in either protocol version must not take the
        // decoder's ability to resync onto the *other* version with it.
        let fa = a.to_frame();
        let cut = (fa.len() * cut_frac as usize) / 100;
        let mut stream = fa[..cut].to_vec();
        stream.extend_from_slice(&b.to_frame());
        stream.extend_from_slice(&vec![0u8; fa.len() + 16]);
        let mut dec = FrameDecoder::default();
        dec.feed(&stream);
        let mut got = Vec::new();
        loop {
            match dec.next_envelope() {
                Ok(Some(e)) => got.push(e),
                Ok(None) => break,
                Err(_) => continue, // the cut may surface as a CRC error
            }
        }
        prop_assert!(got.contains(&b), "B lost after cut at {}/{}", cut, fa.len());
    }
}
