//! Multi-threaded wire stress: 8 concurrent client connections mixing
//! transactional writes with snapshot and read-committed reads, all
//! over real TCP against one shared engine.
//!
//! Invariant under test: every writer keeps its account pair's balance
//! sum constant *per transaction*, so no reader — autocommit or
//! snapshot — may ever observe a torn total (one update of a pair
//! without the other) or a future version (a commit after its pinned
//! snapshot).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mdb_server::{MdbClient, MdbServer, ServerOptions};
use minidb::engine::{Db, DbConfig};
use minidb::value::Value;

const WRITERS: usize = 4;
const PAIR_SUM: i64 = 1000;
const TXNS_PER_WRITER: usize = 25;

fn total(rows: &[Vec<Value>]) -> i64 {
    rows.iter()
        .map(|r| match r[0] {
            Value::Int(v) => v,
            _ => panic!("non-int balance"),
        })
        .sum()
}

#[test]
fn eight_connections_never_observe_torn_or_future_versions() {
    let db = Db::open(DbConfig::default());
    let srv = MdbServer::start(db.clone(), ServerOptions::default()).unwrap();
    let addr = srv.local_addr();

    let setup = db.connect("setup");
    setup
        .execute("CREATE TABLE accounts (id INT PRIMARY KEY, bal INT)")
        .unwrap();
    // One disjoint account pair per writer; each pair sums to PAIR_SUM.
    for w in 0..WRITERS as i64 {
        setup
            .execute(&format!(
                "INSERT INTO accounts VALUES ({}, {}), ({}, {})",
                2 * w,
                PAIR_SUM / 2,
                2 * w + 1,
                PAIR_SUM / 2
            ))
            .unwrap();
    }
    let grand_total = PAIR_SUM * WRITERS as i64;

    let done = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // 4 writer connections: move a varying amount within the pair, both
    // legs inside one transaction.
    for w in 0..WRITERS {
        let h = std::thread::spawn(move || {
            let mut c = MdbClient::connect(addr, &format!("writer{w}")).unwrap();
            for i in 0..TXNS_PER_WRITER {
                let x = ((i as i64 * 37 + w as i64 * 11) % PAIR_SUM).abs();
                c.query("BEGIN").unwrap();
                c.query(&format!(
                    "UPDATE accounts SET bal = {x} WHERE id = {}",
                    2 * w
                ))
                .unwrap();
                c.query(&format!(
                    "UPDATE accounts SET bal = {} WHERE id = {}",
                    PAIR_SUM - x,
                    2 * w + 1
                ))
                .unwrap();
                // Occasionally abandon the transfer instead.
                if i % 7 == 3 {
                    c.query("ROLLBACK").unwrap();
                } else {
                    c.query("COMMIT").unwrap();
                }
            }
            c.close().unwrap();
        });
        handles.push(h);
    }

    // 2 autocommit readers: read-committed totals must always balance.
    for r in 0..2 {
        let done = Arc::clone(&done);
        let h = std::thread::spawn(move || {
            let mut c = MdbClient::connect(addr, &format!("rc{r}")).unwrap();
            while !done.load(Ordering::SeqCst) {
                let rs = c.query("SELECT bal FROM accounts").unwrap();
                assert_eq!(rs.rows.len(), 2 * WRITERS);
                assert_eq!(total(&rs.rows), grand_total, "torn read-committed total");
            }
            c.close().unwrap();
        });
        handles.push(h);
    }

    // 2 snapshot readers: inside BEGIN..COMMIT, repeated reads must be
    // byte-identical (no future versions) and balanced (no torn pairs).
    for r in 0..2 {
        let done = Arc::clone(&done);
        let h = std::thread::spawn(move || {
            let mut c = MdbClient::connect(addr, &format!("snap{r}")).unwrap();
            while !done.load(Ordering::SeqCst) {
                c.query("BEGIN").unwrap();
                let first = c.query("SELECT bal FROM accounts ORDER BY id").unwrap();
                assert_eq!(total(&first.rows), grand_total, "torn snapshot total");
                for _ in 0..3 {
                    let again = c.query("SELECT bal FROM accounts ORDER BY id").unwrap();
                    assert_eq!(
                        again.rows, first.rows,
                        "snapshot drifted: saw a future version"
                    );
                }
                c.query("COMMIT").unwrap();
            }
            c.close().unwrap();
        });
        handles.push(h);
    }

    // Join writers first, then release the readers.
    for h in handles.drain(..WRITERS) {
        h.join().unwrap();
    }
    done.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().unwrap();
    }

    // Quiescent state: committed balances still sum, and vacuum can
    // reclaim every superseded version the run left behind.
    let rs = setup.execute("SELECT bal FROM accounts").unwrap();
    let sum: i64 = rs
        .rows
        .iter()
        .map(|r| match r[0] {
            Value::Int(v) => v,
            _ => unreachable!(),
        })
        .sum();
    assert_eq!(sum, grand_total);
    assert!(
        db.version_count() > 0,
        "the run must have archived versions"
    );
    let (_reclaimed, remaining) = db.vacuum();
    assert_eq!(remaining, 0);
}
