//! The server half: a nonblocking accept loop plus one worker thread
//! per client connection, each owning an engine [`Connection`] and the
//! session state (prepared-text cache) that rides on it.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use minidb::engine::{Db, QueryResult};
use parking_lot::Mutex;

use crate::wire::{FrameDecoder, WireMessage, WireResultSet};

/// How long the accept loop sleeps when no connection is pending, and
/// how long a session read blocks before re-checking shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(2);
const READ_POLL: Duration = Duration::from_millis(20);

/// SQL-server configuration.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Listen address (`"127.0.0.1:0"` binds an ephemeral port; read it
    /// back via [`MdbServer::local_addr`]).
    pub listen: String,
    /// Identification string sent in the greeting.
    pub server_name: String,
    /// Per-session prepared-statement cache capacity; `PREPARE` beyond
    /// it is refused.
    pub prepared_cache_cap: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            listen: "127.0.0.1:0".into(),
            server_name: "minidb/0.1".into(),
            prepared_cache_cap: 64,
        }
    }
}

/// The SQL server: an accept loop on its own thread, one worker thread
/// per connected client, all executing against one shared [`Db`].
///
/// Lifecycle follows the obs server: a shutdown flag every thread
/// polls, and `stop()` joins the accept thread first, then the workers,
/// with no lock held across a join.
pub struct MdbServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

struct Stats {
    connections: mdb_telemetry::Counter,
    statements: mdb_telemetry::Counter,
    wire_errors: mdb_telemetry::Counter,
}

impl MdbServer {
    /// Binds `options.listen` and starts accepting clients for `db`.
    pub fn start(db: Db, options: ServerOptions) -> std::io::Result<MdbServer> {
        let listener = TcpListener::bind(options.listen.as_str())?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let registry = db.telemetry();
        let stats = Arc::new(Stats {
            connections: registry.counter("server.connections"),
            statements: registry.counter("server.statements"),
            wire_errors: registry.counter("server.wire_errors"),
        });
        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let workers = Arc::clone(&workers);
            std::thread::spawn(move || {
                accept_loop(&listener, &db, &options, &shutdown, &workers, &stats)
            })
        };
        Ok(MdbServer {
            addr,
            shutdown,
            accept_handle: Some(accept_handle),
            workers,
        })
    }

    /// The bound address (resolves an ephemeral `:0` port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop, then joins every session worker. Sessions
    /// notice the flag at their next read poll; an open transaction on
    /// a severed session rolls back when its engine connection drops.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Take the handles out, then join outside the lock: a worker
        // exiting concurrently must never deadlock against stop().
        let handles: Vec<_> = std::mem::take(&mut *self.workers.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for MdbServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    db: &Db,
    options: &ServerOptions,
    shutdown: &Arc<AtomicBool>,
    workers: &Mutex<Vec<JoinHandle<()>>>,
    stats: &Arc<Stats>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                stats.connections.inc();
                let db = db.clone();
                let options = options.clone();
                let shutdown = Arc::clone(shutdown);
                let stats = Arc::clone(stats);
                let handle = std::thread::spawn(move || {
                    // Session errors only poison this connection.
                    let _ = serve_session(&db, stream, &options, &shutdown, &stats);
                });
                workers.lock().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => break,
        }
    }
}

fn send(stream: &mut TcpStream, msg: &WireMessage) -> std::io::Result<()> {
    stream.write_all(&msg.to_frame())
}

fn to_wire(r: QueryResult) -> WireMessage {
    WireMessage::Result(WireResultSet {
        columns: r.columns,
        rows: r.rows,
        rows_examined: r.rows_examined,
        rows_affected: r.rows_affected,
    })
}

fn serve_session(
    db: &Db,
    mut stream: TcpStream,
    options: &ServerOptions,
    shutdown: &AtomicBool,
    stats: &Stats,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_nodelay(true).ok();
    let mut decoder = FrameDecoder::default();
    let mut buf = [0u8; 4096];

    // Session state: established on Hello.
    let mut conn: Option<minidb::engine::Connection> = None;
    let mut prepared: HashMap<String, String> = HashMap::new();

    'session: while !shutdown.load(Ordering::SeqCst) {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        decoder.feed(&buf[..n]);
        loop {
            let env = match decoder.next_envelope() {
                Ok(Some(e)) => e,
                Ok(None) => break,
                Err(e) => {
                    // Corrupt frame: report, stay connected — the
                    // decoder has already resynced past it.
                    stats.wire_errors.inc();
                    send(
                        &mut stream,
                        &WireMessage::Error {
                            message: e.to_string(),
                        },
                    )?;
                    continue;
                }
            };
            // The trace context rides on the envelope, not the message:
            // any statement-bearing frame may carry one.
            let ctx = env.ctx;
            match env.msg {
                WireMessage::Hello { user } => {
                    if conn.is_some() {
                        send(
                            &mut stream,
                            &WireMessage::Error {
                                message: "session already established".into(),
                            },
                        )?;
                        continue;
                    }
                    let c = db.connect(&user);
                    send(
                        &mut stream,
                        &WireMessage::Greeting {
                            session_id: c.id,
                            server: options.server_name.clone(),
                        },
                    )?;
                    conn = Some(c);
                }
                WireMessage::Query { sql } => {
                    let Some(c) = conn.as_ref() else {
                        send(&mut stream, &hello_first())?;
                        continue;
                    };
                    stats.statements.inc();
                    let reply = match c.execute_traced(&sql, ctx) {
                        Ok(r) => to_wire(r),
                        Err(e) => WireMessage::Error {
                            message: e.to_string(),
                        },
                    };
                    send(&mut stream, &reply)?;
                }
                WireMessage::Trace => {
                    let Some(c) = conn.as_ref() else {
                        send(&mut stream, &hello_first())?;
                        continue;
                    };
                    let reply = match c.last_trace_rendered() {
                        Some(r) => to_wire(r),
                        None => WireMessage::Error {
                            message: "no trace recorded for this session \
                                      (flight recorder empty or disabled)"
                                .into(),
                        },
                    };
                    send(&mut stream, &reply)?;
                }
                WireMessage::Prepare { name, sql } => {
                    if conn.is_none() {
                        send(&mut stream, &hello_first())?;
                        continue;
                    }
                    if prepared.len() >= options.prepared_cache_cap && !prepared.contains_key(&name)
                    {
                        send(
                            &mut stream,
                            &WireMessage::Error {
                                message: format!(
                                    "prepared cache full ({} statements)",
                                    options.prepared_cache_cap
                                ),
                            },
                        )?;
                        continue;
                    }
                    prepared.insert(name, sql);
                    send(&mut stream, &WireMessage::Result(WireResultSet::default()))?;
                }
                WireMessage::ExecutePrepared { name } => {
                    let Some(c) = conn.as_ref() else {
                        send(&mut stream, &hello_first())?;
                        continue;
                    };
                    let Some(sql) = prepared.get(&name).cloned() else {
                        send(
                            &mut stream,
                            &WireMessage::Error {
                                message: format!("unknown prepared statement '{name}'"),
                            },
                        )?;
                        continue;
                    };
                    stats.statements.inc();
                    let reply = match c.execute_traced(&sql, ctx) {
                        Ok(r) => to_wire(r),
                        Err(e) => WireMessage::Error {
                            message: e.to_string(),
                        },
                    };
                    send(&mut stream, &reply)?;
                }
                WireMessage::Quit => {
                    send(&mut stream, &WireMessage::Bye)?;
                    break 'session;
                }
                // Server → client messages arriving at the server are a
                // confused (or malicious) peer.
                WireMessage::Greeting { .. }
                | WireMessage::Result(_)
                | WireMessage::Error { .. }
                | WireMessage::Bye => {
                    stats.wire_errors.inc();
                    send(
                        &mut stream,
                        &WireMessage::Error {
                            message: "unexpected server-side message".into(),
                        },
                    )?;
                }
            }
        }
    }
    // `conn` drops here: the engine disconnects the processlist entry
    // and rolls back any transaction the client left open.
    Ok(())
}

fn hello_first() -> WireMessage {
    WireMessage::Error {
        message: "say Hello first".into(),
    }
}
