//! The client/server wire protocol: framed request/response messages.
//!
//! A v1 message is one frame:
//!
//! ```text
//! "MSRV" || len:u32 LE || payload (len bytes) || crc32(payload):u32 LE
//! ```
//!
//! Protocol v2 adds an optional distributed trace context without
//! breaking v1 decoders on the same stream. A v2 frame uses its own
//! magic and prefixes the message payload with a context slot:
//!
//! ```text
//! "MSV2" || len:u32 LE || ctx_flag:u8 || [ctx: 25 bytes if flag=1]
//!        || message payload || crc32(whole payload):u32 LE
//! ```
//!
//! Senders emit v1 frames whenever no context is attached, so a
//! context-free v2 client is byte-identical to a v1 client, and
//! [`FrameDecoder`] resyncs over *both* magics — a stream may
//! interleave versions freely (mid-stream protocol upgrades, mixed
//! client fleets).
//!
//! The framing deliberately mirrors the binlog's (`magic || len ||
//! payload`, [`minidb::wal::frame`]) with a CRC-32 trailer bolted on —
//! the same integrity check the trace log uses
//! ([`mdb_trace::record::crc32`]). The consequence the threat-model
//! cares about: a packet capture of the SQL session carves with the
//! same resync loop as a stolen log file. Statement text crosses this
//! channel verbatim, before any EDB layer touches the rows — and in
//! v2, so does the trace id that joins the capture to every other
//! node's logs (the E19 surface).

use mdb_trace::TraceContext;
use minidb::value::Value;

/// v1 frame magic: `b"MSRV"` — **M**iniDB **S**e**RV**er.
pub const FRAME_MAGIC: [u8; 4] = *b"MSRV";

/// v2 frame magic: a v2 frame carries a trace-context slot before the
/// message payload.
pub const FRAME_MAGIC_V2: [u8; 4] = *b"MSV2";

/// Upper bound on one frame's payload; longer claims are treated as
/// garbage so a corrupt length field cannot balloon the decode buffer.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// CRC-32 (IEEE), re-exported from the trace log's record format so
/// both logs checksum identically.
pub use mdb_trace::record::crc32;

/// Wire-protocol decode error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Payload bytes did not parse as a message.
    Protocol(String),
    /// The CRC-32 trailer did not match the payload.
    Crc { expected: u32, found: u32 },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Protocol(m) => write!(f, "protocol error: {m}"),
            WireError::Crc { expected, found } => {
                write!(
                    f,
                    "crc mismatch: expected {expected:#010x}, found {found:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

type WireResult<T> = Result<T, WireError>;

/// Message type tags on the wire.
const TAG_HELLO: u8 = 1;
const TAG_QUERY: u8 = 2;
const TAG_PREPARE: u8 = 3;
const TAG_EXECUTE_PREPARED: u8 = 4;
const TAG_QUIT: u8 = 5;
const TAG_TRACE: u8 = 6;
const TAG_GREETING: u8 = 16;
const TAG_RESULT: u8 = 17;
const TAG_ERROR: u8 = 18;
const TAG_BYE: u8 = 19;

/// Value type tags inside a result row.
const VTAG_NULL: u8 = 0;
const VTAG_INT: u8 = 1;
const VTAG_TEXT: u8 = 2;
const VTAG_BYTES: u8 = 3;

/// A query result as shipped over the wire — the fields of
/// [`minidb::engine::QueryResult`], detached from the engine.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireResultSet {
    /// Result column names (empty for DML/DDL).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Rows the execution examined.
    pub rows_examined: u64,
    /// Rows affected by DML.
    pub rows_affected: u64,
}

/// One protocol message, either direction.
#[derive(Clone, Debug, PartialEq)]
pub enum WireMessage {
    /// Client → server: open a session as `user`. Must be first.
    Hello {
        /// User name recorded in the engine's processlist.
        user: String,
    },
    /// Client → server: execute one SQL statement.
    Query {
        /// The statement text.
        sql: String,
    },
    /// Client → server: cache `sql` under `name` in this session.
    Prepare {
        /// Statement handle.
        name: String,
        /// The statement text to cache.
        sql: String,
    },
    /// Client → server: execute a previously prepared statement.
    ExecutePrepared {
        /// Statement handle from a prior [`WireMessage::Prepare`].
        name: String,
    },
    /// Client → server: render the session's most recent statement
    /// trace (the `\trace` meta-command). Answered with a
    /// [`WireMessage::Result`] span table, or [`WireMessage::Error`]
    /// when the flight recorder holds none.
    Trace,
    /// Client → server: close the session.
    Quit,
    /// Server → client: session established.
    Greeting {
        /// The engine connection id backing this session.
        session_id: u64,
        /// Server identification string.
        server: String,
    },
    /// Server → client: a statement's result set.
    Result(WireResultSet),
    /// Server → client: a statement failed.
    Error {
        /// The engine's error rendering.
        message: String,
    },
    /// Server → client: acknowledges [`WireMessage::Quit`].
    Bye,
}

fn w_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn w_str(out: &mut Vec<u8>, s: &str) {
    w_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn w_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(VTAG_NULL),
        Value::Int(i) => {
            out.push(VTAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Text(s) => {
            out.push(VTAG_TEXT);
            w_str(out, s);
        }
        Value::Bytes(b) => {
            out.push(VTAG_BYTES);
            w_u32(out, b.len() as u32);
            out.extend_from_slice(b);
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let b = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| WireError::Protocol("truncated message".into()))?;
        self.pos += n;
        Ok(b)
    }

    fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> WireResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> WireResult<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| WireError::Protocol("invalid utf-8 in string".into()))
    }

    fn value(&mut self) -> WireResult<Value> {
        Ok(match self.u8()? {
            VTAG_NULL => Value::Null,
            VTAG_INT => Value::Int(self.i64()?),
            VTAG_TEXT => Value::Text(self.str()?),
            VTAG_BYTES => {
                let n = self.u32()? as usize;
                Value::Bytes(self.take(n)?.to_vec())
            }
            other => return Err(WireError::Protocol(format!("unknown value tag {other}"))),
        })
    }
}

impl WireMessage {
    /// Serializes the message payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WireMessage::Hello { user } => {
                out.push(TAG_HELLO);
                w_str(&mut out, user);
            }
            WireMessage::Query { sql } => {
                out.push(TAG_QUERY);
                w_str(&mut out, sql);
            }
            WireMessage::Prepare { name, sql } => {
                out.push(TAG_PREPARE);
                w_str(&mut out, name);
                w_str(&mut out, sql);
            }
            WireMessage::ExecutePrepared { name } => {
                out.push(TAG_EXECUTE_PREPARED);
                w_str(&mut out, name);
            }
            WireMessage::Trace => out.push(TAG_TRACE),
            WireMessage::Quit => out.push(TAG_QUIT),
            WireMessage::Greeting { session_id, server } => {
                out.push(TAG_GREETING);
                w_u64(&mut out, *session_id);
                w_str(&mut out, server);
            }
            WireMessage::Result(rs) => {
                out.push(TAG_RESULT);
                w_u32(&mut out, rs.columns.len() as u32);
                for c in &rs.columns {
                    w_str(&mut out, c);
                }
                w_u32(&mut out, rs.rows.len() as u32);
                for row in &rs.rows {
                    w_u32(&mut out, row.len() as u32);
                    for v in row {
                        w_value(&mut out, v);
                    }
                }
                w_u64(&mut out, rs.rows_examined);
                w_u64(&mut out, rs.rows_affected);
            }
            WireMessage::Error { message } => {
                out.push(TAG_ERROR);
                w_str(&mut out, message);
            }
            WireMessage::Bye => out.push(TAG_BYE),
        }
        out
    }

    /// Parses a message payload.
    pub fn decode(buf: &[u8]) -> WireResult<WireMessage> {
        let mut c = Cursor { buf, pos: 0 };
        let msg = match c.u8()? {
            TAG_HELLO => WireMessage::Hello { user: c.str()? },
            TAG_QUERY => WireMessage::Query { sql: c.str()? },
            TAG_PREPARE => WireMessage::Prepare {
                name: c.str()?,
                sql: c.str()?,
            },
            TAG_EXECUTE_PREPARED => WireMessage::ExecutePrepared { name: c.str()? },
            TAG_TRACE => WireMessage::Trace,
            TAG_QUIT => WireMessage::Quit,
            TAG_GREETING => WireMessage::Greeting {
                session_id: c.u64()?,
                server: c.str()?,
            },
            TAG_RESULT => {
                let ncols = c.u32()? as usize;
                let mut columns = Vec::with_capacity(ncols.min(1024));
                for _ in 0..ncols {
                    columns.push(c.str()?);
                }
                let nrows = c.u32()? as usize;
                let mut rows = Vec::with_capacity(nrows.min(1024));
                for _ in 0..nrows {
                    let width = c.u32()? as usize;
                    let mut row = Vec::with_capacity(width.min(1024));
                    for _ in 0..width {
                        row.push(c.value()?);
                    }
                    rows.push(row);
                }
                WireMessage::Result(WireResultSet {
                    columns,
                    rows,
                    rows_examined: c.u64()?,
                    rows_affected: c.u64()?,
                })
            }
            TAG_ERROR => WireMessage::Error { message: c.str()? },
            TAG_BYE => WireMessage::Bye,
            other => {
                return Err(WireError::Protocol(format!("unknown message tag {other}")));
            }
        };
        if c.pos != buf.len() {
            return Err(WireError::Protocol("trailing bytes in message".into()));
        }
        Ok(msg)
    }

    /// Frames the encoded message as a v1 frame:
    /// `magic || len || payload || crc32(payload)`.
    pub fn to_frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut out = Vec::with_capacity(payload.len() + 12);
        out.extend_from_slice(&FRAME_MAGIC);
        w_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
        w_u32(&mut out, crc32(&payload));
        out
    }
}

/// A message plus the distributed trace context it travelled with —
/// what v2 framing puts on the wire and what [`FrameDecoder`] yields.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// The protocol message.
    pub msg: WireMessage,
    /// Distributed trace context, when the sender attached one.
    pub ctx: Option<TraceContext>,
}

impl Envelope {
    /// A context-free envelope.
    pub fn plain(msg: WireMessage) -> Envelope {
        Envelope { msg, ctx: None }
    }

    /// Frames the envelope for the TCP transport: a v2 frame when a
    /// context is attached, the byte-identical v1 frame otherwise —
    /// so senders never pay the context slot for context-free traffic
    /// and v1 peers keep decoding them.
    pub fn to_frame(&self) -> Vec<u8> {
        let Some(ctx) = self.ctx else {
            return self.msg.to_frame();
        };
        let mut payload = Vec::with_capacity(64);
        payload.push(1u8);
        ctx.encode(&mut payload);
        payload.extend_from_slice(&self.msg.encode());
        let mut out = Vec::with_capacity(payload.len() + 12);
        out.extend_from_slice(&FRAME_MAGIC_V2);
        w_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
        w_u32(&mut out, crc32(&payload));
        out
    }

    /// Parses a v2 frame payload (context slot + message).
    fn decode_v2(payload: &[u8]) -> WireResult<Envelope> {
        let (&flag, rest) = payload
            .split_first()
            .ok_or_else(|| WireError::Protocol("empty v2 payload".into()))?;
        match flag {
            0 => Ok(Envelope {
                msg: WireMessage::decode(rest)?,
                ctx: None,
            }),
            1 => {
                if rest.len() < TraceContext::WIRE_LEN {
                    return Err(WireError::Protocol("truncated trace context".into()));
                }
                let ctx = TraceContext::decode(rest)
                    .ok_or_else(|| WireError::Protocol("bad trace context".into()))?;
                Ok(Envelope {
                    msg: WireMessage::decode(&rest[TraceContext::WIRE_LEN..])?,
                    ctx: Some(ctx),
                })
            }
            other => Err(WireError::Protocol(format!("unknown ctx flag {other}"))),
        }
    }
}

/// Incremental frame parser: feed raw stream bytes, pop whole
/// envelopes. Resyncs on either frame magic (v1 `MSRV`, v2 `MSV2`)
/// after garbage or a mid-frame cut, exactly like the binlog carver
/// and the replication decoder — the wire stream is designed to be
/// carvable, and one stream may interleave protocol versions.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

/// Whether the last `keep` bytes of `buf` are a prefix of either magic.
fn magic_prefix_keep(buf: &[u8]) -> usize {
    (1..4.min(buf.len() + 1))
        .rev()
        .find(|&k| {
            let tail = &buf[buf.len() - k..];
            FRAME_MAGIC.starts_with(tail) || FRAME_MAGIC_V2.starts_with(tail)
        })
        .unwrap_or(0)
}

impl FrameDecoder {
    /// Appends raw bytes from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete message, if one is buffered, discarding
    /// any attached trace context (v1 callers).
    pub fn next_message(&mut self) -> WireResult<Option<WireMessage>> {
        Ok(self.next_envelope()?.map(|e| e.msg))
    }

    /// Pops the next complete envelope, if one is buffered.
    ///
    /// A frame whose CRC trailer mismatches (or whose length field is
    /// absurd) is rejected with an error; the decoder then resyncs past
    /// that magic, so subsequent intact frames still decode.
    pub fn next_envelope(&mut self) -> WireResult<Option<Envelope>> {
        loop {
            // Drop garbage before the next magic (either version),
            // keeping up to 3 trailing bytes that may be a magic
            // prefix still arriving.
            let start = self
                .buf
                .windows(4)
                .position(|w| w == FRAME_MAGIC || w == FRAME_MAGIC_V2)
                .unwrap_or_else(|| self.buf.len() - magic_prefix_keep(&self.buf));
            if start > 0 {
                self.buf.drain(..start);
            }
            if self.buf.len() < 8 {
                return Ok(None);
            }
            let v2 = self.buf[..4] == FRAME_MAGIC_V2;
            let len = u32::from_le_bytes(self.buf[4..8].try_into().unwrap()) as usize;
            if len > MAX_FRAME_LEN {
                // A corrupt length field: skip this magic and resync.
                self.buf.drain(..4);
                continue;
            }
            if self.buf.len() < 12 + len {
                return Ok(None);
            }
            let payload = &self.buf[8..8 + len];
            let expected = crc32(payload);
            let found = u32::from_le_bytes(self.buf[8 + len..12 + len].try_into().unwrap());
            if found != expected {
                self.buf.drain(..4);
                return Err(WireError::Crc { expected, found });
            }
            let env = if v2 {
                Envelope::decode_v2(payload)
            } else {
                WireMessage::decode(payload).map(Envelope::plain)
            };
            self.buf.drain(..12 + len);
            return env.map(Some);
        }
    }

    /// Bytes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> WireMessage {
        WireMessage::Result(WireResultSet {
            columns: vec!["id".into(), "name".into(), "blob".into()],
            rows: vec![
                vec![Value::Int(1), Value::Text("alice".into()), Value::Null],
                vec![
                    Value::Int(2),
                    Value::Text("bób".into()),
                    Value::Bytes(vec![0, 255, 7]),
                ],
            ],
            rows_examined: 9,
            rows_affected: 0,
        })
    }

    #[test]
    fn messages_round_trip() {
        let msgs = [
            WireMessage::Hello { user: "app".into() },
            WireMessage::Query {
                sql: "SELECT * FROM t WHERE name = 'héllo'".into(),
            },
            WireMessage::Prepare {
                name: "q1".into(),
                sql: "SELECT 1".into(),
            },
            WireMessage::ExecutePrepared { name: "q1".into() },
            WireMessage::Trace,
            WireMessage::Quit,
            WireMessage::Greeting {
                session_id: 42,
                server: "minidb".into(),
            },
            sample_result(),
            WireMessage::Error {
                message: "unknown table: t".into(),
            },
            WireMessage::Bye,
        ];
        for m in &msgs {
            assert_eq!(&WireMessage::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WireMessage::decode(&[]).is_err());
        assert!(WireMessage::decode(&[250]).is_err());
        let mut enc = WireMessage::Quit.encode();
        enc.push(0);
        assert!(WireMessage::decode(&enc).is_err(), "trailing byte");
    }

    #[test]
    fn frame_decoder_reassembles_split_frames() {
        let a = WireMessage::Query {
            sql: "BEGIN".into(),
        };
        let b = sample_result();
        let mut stream = Vec::new();
        stream.extend_from_slice(&a.to_frame());
        stream.extend_from_slice(&b.to_frame());
        let mut dec = FrameDecoder::default();
        let mut got = Vec::new();
        for byte in stream {
            dec.feed(&[byte]);
            while let Some(m) = dec.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, vec![a, b]);
    }

    #[test]
    fn frame_decoder_resyncs_after_garbage() {
        let m = WireMessage::Quit;
        let mut dec = FrameDecoder::default();
        dec.feed(&[0xAA, 0xBB, 0xCC]);
        dec.feed(&m.to_frame());
        assert_eq!(dec.next_message().unwrap(), Some(m));
        assert_eq!(dec.next_message().unwrap(), None);
    }

    #[test]
    fn v2_envelope_round_trips_with_and_without_context() {
        let ctx = TraceContext {
            trace_id: 0xFEED_F00D,
            span_id: 0x1234,
            sampled: true,
        };
        let traced = Envelope {
            msg: WireMessage::Query {
                sql: "SELECT secret FROM accounts".into(),
            },
            ctx: Some(ctx),
        };
        let plain = Envelope::plain(WireMessage::Bye);
        // Context-free envelopes emit byte-identical v1 frames.
        assert_eq!(plain.to_frame(), WireMessage::Bye.to_frame());
        assert_eq!(&traced.to_frame()[..4], &FRAME_MAGIC_V2);
        let mut dec = FrameDecoder::default();
        dec.feed(&traced.to_frame());
        dec.feed(&plain.to_frame());
        assert_eq!(dec.next_envelope().unwrap(), Some(traced));
        assert_eq!(dec.next_envelope().unwrap(), Some(plain));
        assert_eq!(dec.next_envelope().unwrap(), None);
    }

    #[test]
    fn mixed_version_stream_decodes_through_next_message() {
        // A v1 caller (next_message) reading a v2 frame still gets the
        // message; the context is simply dropped.
        let traced = Envelope {
            msg: WireMessage::Query {
                sql: "BEGIN".into(),
            },
            ctx: Some(TraceContext::generate()),
        };
        let mut dec = FrameDecoder::default();
        dec.feed(&[0x00, 0x4D]); // garbage + a magic-prefix byte
        dec.feed(&WireMessage::Quit.to_frame());
        dec.feed(&traced.to_frame());
        assert_eq!(dec.next_message().unwrap(), Some(WireMessage::Quit));
        assert_eq!(dec.next_message().unwrap(), Some(traced.msg));
    }

    #[test]
    fn v2_payload_corruption_is_rejected() {
        // Bad ctx flag.
        let mut payload = vec![7u8];
        payload.extend_from_slice(&WireMessage::Quit.encode());
        assert!(Envelope::decode_v2(&payload).is_err());
        // Truncated context.
        let payload = vec![1u8, 0, 0];
        assert!(Envelope::decode_v2(&payload).is_err());
        assert!(Envelope::decode_v2(&[]).is_err());
    }

    #[test]
    fn crc_corruption_is_rejected_then_resynced() {
        let bad = WireMessage::Query {
            sql: "SELECT secret FROM accounts".into(),
        };
        let good = WireMessage::Bye;
        let mut frame = bad.to_frame();
        let n = frame.len();
        frame[n - 2] ^= 0x40; // flip a bit in the CRC trailer
        let mut dec = FrameDecoder::default();
        dec.feed(&frame);
        dec.feed(&good.to_frame());
        assert!(matches!(dec.next_message(), Err(WireError::Crc { .. })));
        assert_eq!(dec.next_message().unwrap(), Some(good));
    }
}
