//! # mdb-server — the multi-client SQL front end
//!
//! A zero-dependency TCP server that turns the embedded [`minidb`]
//! engine into a networked DBMS: a nonblocking accept loop, one worker
//! thread per client connection, and a framed wire protocol
//! (`"MSRV" || len || payload || crc32`, [`wire`]) carrying SQL text
//! out and result rows back.
//!
//! Each session owns one engine [`minidb::engine::Connection`], so the
//! engine's transaction scoping applies unchanged: `BEGIN` pins an MVCC
//! snapshot, concurrent sessions read consistent row versions from the
//! version store, and a session that disconnects mid-transaction rolls
//! back.
//!
//! ## Why this crate is also a leakage surface
//!
//! The wire protocol is the plaintext channel the paper's §3–§5
//! machinery only ever sees *after* the fact: every statement crosses
//! it verbatim, framed exactly like a binlog record (magic + length +
//! CRC), so a passive capture of the TCP stream carves with the same
//! resync loop as a stolen log file. The MVCC layer the server leans on
//! adds its own persistent echo — superseded row versions in
//! `undo_versions.ibd` (experiment e18, `core::forensics::versions`).
//!
//! ## Quick example
//!
//! ```
//! use minidb::engine::{Db, DbConfig};
//! use mdb_server::{MdbClient, MdbServer, ServerOptions};
//!
//! let db = Db::open(DbConfig::default());
//! let srv = MdbServer::start(db, ServerOptions::default()).unwrap();
//! let mut c = MdbClient::connect(srv.local_addr(), "app").unwrap();
//! c.query("CREATE TABLE t (id INT PRIMARY KEY, v INT)").unwrap();
//! c.query("INSERT INTO t VALUES (1, 10)").unwrap();
//! let r = c.query("SELECT v FROM t").unwrap();
//! assert_eq!(r.rows.len(), 1);
//! c.close().unwrap();
//! ```

pub mod client;
pub mod server;
pub mod wire;

pub use client::{ClientError, MdbClient};
pub use server::{MdbServer, ServerOptions};
pub use wire::{FrameDecoder, WireError, WireMessage, WireResultSet};

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::engine::{Db, DbConfig};
    use minidb::value::Value;

    fn start() -> (Db, MdbServer) {
        let db = Db::open(DbConfig::default());
        let srv = MdbServer::start(db.clone(), ServerOptions::default()).unwrap();
        (db, srv)
    }

    #[test]
    fn ephemeral_port_resolves_to_real_address() {
        let (_db, srv) = start();
        let addr = srv.local_addr();
        assert_ne!(addr.port(), 0, "bound port must be concrete");
        assert!(addr.ip().is_loopback());
    }

    #[test]
    fn handshake_query_and_quit() {
        let (db, srv) = start();
        let mut c = MdbClient::connect(srv.local_addr(), "cli").unwrap();
        assert_eq!(c.server_name(), "minidb/0.1");
        assert!(c.session_id() > 0);
        c.query("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
            .unwrap();
        let r = c
            .query("INSERT INTO t VALUES (1, 'alice'), (2, 'bob')")
            .unwrap();
        assert_eq!(r.rows_affected, 2);
        let r = c.query("SELECT name FROM t ORDER BY id").unwrap();
        assert_eq!(r.columns, vec!["name"]);
        assert_eq!(r.rows[1][0], Value::Text("bob".into()));
        c.close().unwrap();
        // Server-side counters observed the session.
        let snap = db.metrics_snapshot();
        assert_eq!(snap.counter("server.connections"), Some(1));
        assert_eq!(snap.counter("server.statements"), Some(3));
    }

    #[test]
    fn statement_errors_keep_the_session_alive() {
        let (_db, srv) = start();
        let mut c = MdbClient::connect(srv.local_addr(), "cli").unwrap();
        let err = c.query("SELECT * FROM nope").unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "{err}");
        // The session still works after the error.
        c.query("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        c.close().unwrap();
    }

    #[test]
    fn prepared_text_cache_round_trip_and_cap() {
        let db = Db::open(DbConfig::default());
        let srv = MdbServer::start(
            db,
            ServerOptions {
                prepared_cache_cap: 2,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let mut c = MdbClient::connect(srv.local_addr(), "cli").unwrap();
        c.query("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        c.prepare("ins", "INSERT INTO t VALUES (1)").unwrap();
        c.prepare("all", "SELECT * FROM t").unwrap();
        c.execute_prepared("ins").unwrap();
        let r = c.execute_prepared("all").unwrap();
        assert_eq!(r.rows.len(), 1);
        // Cap enforced; re-preparing an existing name is allowed.
        let err = c.prepare("third", "SELECT 1").unwrap_err();
        assert!(matches!(err, ClientError::Server(m) if m.contains("prepared cache full")));
        c.prepare("all", "SELECT id FROM t").unwrap();
        let err = c.execute_prepared("missing").unwrap_err();
        assert!(matches!(err, ClientError::Server(m) if m.contains("unknown prepared")));
        c.close().unwrap();
    }

    #[test]
    fn disconnect_mid_transaction_rolls_back() {
        let (db, srv) = start();
        let setup = db.connect("setup");
        setup
            .execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        setup.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        {
            let mut c = MdbClient::connect(srv.local_addr(), "cli").unwrap();
            c.query("BEGIN").unwrap();
            c.query("UPDATE t SET v = 99 WHERE id = 1").unwrap();
            // Drop the client without COMMIT: the stream closes and the
            // server session's engine connection rolls the txn back.
        }
        // Wait for the server worker to notice the EOF and clean up.
        for _ in 0..200 {
            let r = setup.execute("SELECT v FROM t WHERE id = 1").unwrap();
            if r.rows[0][0] == Value::Int(10) && db.version_count() == 0 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let r = setup.execute("SELECT v FROM t WHERE id = 1").unwrap();
        assert_eq!(
            r.rows[0][0],
            Value::Int(10),
            "txn rolled back on disconnect"
        );
    }

    #[test]
    fn two_sessions_see_snapshot_isolation_over_the_wire() {
        let (_db, srv) = start();
        let mut a = MdbClient::connect(srv.local_addr(), "a").unwrap();
        let mut b = MdbClient::connect(srv.local_addr(), "b").unwrap();
        a.query("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        a.query("INSERT INTO t VALUES (1, 100)").unwrap();
        b.query("BEGIN").unwrap();
        let r = b.query("SELECT v FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(100));
        a.query("UPDATE t SET v = 200 WHERE id = 1").unwrap();
        let r = b.query("SELECT v FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(100), "snapshot pinned at BEGIN");
        b.query("COMMIT").unwrap();
        let r = b.query("SELECT v FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(200));
        a.close().unwrap();
        b.close().unwrap();
    }
}
