//! The client half: a blocking connector speaking the [`crate::wire`]
//! protocol. One [`MdbClient`] is one server session — and therefore
//! one engine connection, one transaction scope, one MVCC snapshot at
//! a time.
//!
//! The client is also the *root* of every distributed trace: with
//! tracing on (the default) each statement gets a fresh
//! [`TraceContext`] that rides the v2 frame to the server, and the
//! client records its own `wire_send` / `wire_recv` spans into an
//! attached [`Recorder`] — the client lane of a merged multi-node
//! timeline ([`mdb_trace::merge`]).

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use mdb_trace::{Recorder, TraceBuilder, TraceContext};

use crate::wire::{Envelope, FrameDecoder, WireError, WireMessage, WireResultSet};

/// Client-side protocol error.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The byte stream failed to parse.
    Wire(WireError),
    /// The server reported a statement error.
    Server(String),
    /// The server sent a message this call did not expect.
    Unexpected(String),
    /// The server closed the stream.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected message: {m}"),
            ClientError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Simulated cost model for the client's own spans (µs): the wire
/// spans bracket the round trip so the gap midpoint is the client's
/// estimate of the server statement's midpoint (the merge anchor).
const CLIENT_TOTAL_US: u64 = 400;
const WIRE_SEND_START_US: u64 = 50;
const WIRE_SPAN_US: u64 = 50;
const WIRE_RECV_START_US: u64 = 300;

/// A connected SQL session.
pub struct MdbClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    session_id: u64,
    server: String,
    /// Whether statements carry a distributed trace context (v2 frames).
    tracing: bool,
    /// Mark only every Nth context sampled (the sampling mitigation);
    /// 1 = every statement.
    sample_every: u64,
    statements_sent: u64,
    /// Context the most recent statement travelled under.
    last_ctx: Option<TraceContext>,
    /// Client-side flight recorder for `wire_send`/`wire_recv` spans.
    recorder: Option<Recorder>,
    /// The client's own simulated clock (UNIX seconds), advancing one
    /// second per statement like the engine's default cost model —
    /// deliberately *not* synchronized with the server, so the merged
    /// timeline has a real clock offset to estimate.
    clock_unix: i64,
}

impl MdbClient {
    /// Connects, performs the Hello/Greeting handshake as `user`.
    pub fn connect(addr: impl ToSocketAddrs, user: &str) -> Result<MdbClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = MdbClient {
            stream,
            decoder: FrameDecoder::default(),
            session_id: 0,
            server: String::new(),
            tracing: true,
            sample_every: 1,
            statements_sent: 0,
            last_ctx: None,
            recorder: None,
            clock_unix: 0,
        };
        client.send(&WireMessage::Hello { user: user.into() })?;
        match client.recv()? {
            WireMessage::Greeting { session_id, server } => {
                client.session_id = session_id;
                client.server = server;
                Ok(client)
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Enables or disables distributed tracing. Off, every frame is
    /// v1 — byte-identical to a pre-tracing client.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// The sampling mitigation: only every `every`-th statement's
    /// context is marked sampled (unsampled contexts still propagate,
    /// but recorders drop them). `1` samples everything.
    pub fn set_trace_sampling(&mut self, every: u64) {
        self.sample_every = every.max(1);
    }

    /// Attaches a flight recorder for the client's own spans (set its
    /// node identity first — it labels the client lane in a merge).
    pub fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    /// Sets the client's simulated clock (UNIX seconds). It advances
    /// one second per statement.
    pub fn set_clock(&mut self, unix: i64) {
        self.clock_unix = unix;
    }

    /// The context the most recent statement travelled under, if any.
    pub fn last_ctx(&self) -> Option<TraceContext> {
        self.last_ctx
    }

    /// The engine connection id backing this session.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The server identification string from the greeting.
    pub fn server_name(&self) -> &str {
        &self.server
    }

    /// Executes one SQL statement and waits for its result.
    pub fn query(&mut self, sql: &str) -> Result<WireResultSet, ClientError> {
        self.statement(WireMessage::Query { sql: sql.into() }, sql)
    }

    /// Caches `sql` under `name` in the server-side session.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<(), ClientError> {
        self.send(&WireMessage::Prepare {
            name: name.into(),
            sql: sql.into(),
        })?;
        self.expect_result().map(|_| ())
    }

    /// Executes a statement prepared with [`MdbClient::prepare`].
    pub fn execute_prepared(&mut self, name: &str) -> Result<WireResultSet, ClientError> {
        self.statement(
            WireMessage::ExecutePrepared { name: name.into() },
            &format!("EXECUTE {name}"),
        )
    }

    /// Fetches the server-side trace of this session's most recent
    /// statement, rendered as the `EXPLAIN ANALYZE` span table (the
    /// `\trace` meta-command).
    pub fn trace(&mut self) -> Result<WireResultSet, ClientError> {
        self.send(&WireMessage::Trace)?;
        self.expect_result()
    }

    /// One statement round trip: generate the root context, frame,
    /// send, await the result, and record the client-side spans.
    fn statement(
        &mut self,
        msg: WireMessage,
        display_sql: &str,
    ) -> Result<WireResultSet, ClientError> {
        let ctx = if self.tracing {
            let mut c = TraceContext::generate();
            c.sampled = self.statements_sent.is_multiple_of(self.sample_every);
            Some(c)
        } else {
            None
        };
        self.statements_sent += 1;
        self.last_ctx = ctx;
        let started = self.clock_unix;
        self.clock_unix += 1;
        self.stream
            .write_all(&Envelope { msg, ctx }.to_frame())
            .map_err(ClientError::Io)?;
        let result = self.expect_result();
        if let (Some(rec), Some(ctx)) = (&self.recorder, ctx) {
            if rec.is_enabled() && ctx.sampled {
                let mut b = TraceBuilder::new(
                    self.session_id,
                    started,
                    display_sql,
                    &minidb::sql::digest_text(display_sql),
                );
                b.set_ctx(ctx);
                b.begin("wire_send");
                b.end(WIRE_SPAN_US);
                b.begin("wire_recv");
                b.end(WIRE_SPAN_US);
                let mut t = b.finish(CLIENT_TOTAL_US);
                // Place the wire spans at the modeled offsets so the
                // send→recv gap midpoint is a usable merge anchor.
                t.root.children[0].start_us = WIRE_SEND_START_US;
                t.root.children[1].start_us = WIRE_RECV_START_US;
                if let Ok(rs) = &result {
                    t.root
                        .attrs
                        .push(("rows_examined".into(), rs.rows_examined));
                }
                rec.record(t);
            }
        }
        result
    }

    /// Closes the session gracefully (Quit/Bye).
    pub fn close(mut self) -> Result<(), ClientError> {
        self.send(&WireMessage::Quit)?;
        match self.recv()? {
            WireMessage::Bye => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    fn send(&mut self, msg: &WireMessage) -> Result<(), ClientError> {
        self.stream.write_all(&msg.to_frame())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<WireMessage, ClientError> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(msg) = self.decoder.next_message()? {
                return Ok(msg);
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(ClientError::Closed);
            }
            self.decoder.feed(&buf[..n]);
        }
    }

    fn expect_result(&mut self) -> Result<WireResultSet, ClientError> {
        match self.recv()? {
            WireMessage::Result(rs) => Ok(rs),
            WireMessage::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
