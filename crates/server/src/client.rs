//! The client half: a blocking connector speaking the [`crate::wire`]
//! protocol. One [`MdbClient`] is one server session — and therefore
//! one engine connection, one transaction scope, one MVCC snapshot at
//! a time.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{FrameDecoder, WireError, WireMessage, WireResultSet};

/// Client-side protocol error.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The byte stream failed to parse.
    Wire(WireError),
    /// The server reported a statement error.
    Server(String),
    /// The server sent a message this call did not expect.
    Unexpected(String),
    /// The server closed the stream.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected message: {m}"),
            ClientError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A connected SQL session.
pub struct MdbClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    session_id: u64,
    server: String,
}

impl MdbClient {
    /// Connects, performs the Hello/Greeting handshake as `user`.
    pub fn connect(addr: impl ToSocketAddrs, user: &str) -> Result<MdbClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = MdbClient {
            stream,
            decoder: FrameDecoder::default(),
            session_id: 0,
            server: String::new(),
        };
        client.send(&WireMessage::Hello { user: user.into() })?;
        match client.recv()? {
            WireMessage::Greeting { session_id, server } => {
                client.session_id = session_id;
                client.server = server;
                Ok(client)
            }
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The engine connection id backing this session.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The server identification string from the greeting.
    pub fn server_name(&self) -> &str {
        &self.server
    }

    /// Executes one SQL statement and waits for its result.
    pub fn query(&mut self, sql: &str) -> Result<WireResultSet, ClientError> {
        self.send(&WireMessage::Query { sql: sql.into() })?;
        self.expect_result()
    }

    /// Caches `sql` under `name` in the server-side session.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<(), ClientError> {
        self.send(&WireMessage::Prepare {
            name: name.into(),
            sql: sql.into(),
        })?;
        self.expect_result().map(|_| ())
    }

    /// Executes a statement prepared with [`MdbClient::prepare`].
    pub fn execute_prepared(&mut self, name: &str) -> Result<WireResultSet, ClientError> {
        self.send(&WireMessage::ExecutePrepared { name: name.into() })?;
        self.expect_result()
    }

    /// Closes the session gracefully (Quit/Bye).
    pub fn close(mut self) -> Result<(), ClientError> {
        self.send(&WireMessage::Quit)?;
        match self.recv()? {
            WireMessage::Bye => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    fn send(&mut self, msg: &WireMessage) -> Result<(), ClientError> {
        self.stream.write_all(&msg.to_frame())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<WireMessage, ClientError> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(msg) = self.decoder.next_message()? {
                return Ok(msg);
            }
            let n = self.stream.read(&mut buf)?;
            if n == 0 {
                return Err(ClientError::Closed);
            }
            self.decoder.feed(&buf[..n]);
        }
    }

    fn expect_result(&mut self) -> Result<WireResultSet, ClientError> {
        match self.recv()? {
            WireMessage::Result(rs) => Ok(rs),
            WireMessage::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }
}
