//! Property-based tests for the cryptographic schemes: correctness and
//! leakage-profile invariants under arbitrary inputs.

use std::cmp::Ordering;

use edb_crypto::ashe::{aggregate, AsheKey};
use edb_crypto::feistel::SmallPrp;
use edb_crypto::ore::{compare, compare_leak, OreKey, OreParams};
use edb_crypto::swp::{server_match, SwpClient};
use edb_crypto::treap::EncTreap;
use edb_crypto::{det, rnd, Key};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rnd_round_trips(data in proptest::collection::vec(any::<u8>(), 0..512), seed in any::<u64>()) {
        let key = Key([11u8; 32]);
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = rnd::encrypt(&key, &data, &mut rng);
        prop_assert_eq!(rnd::decrypt(&key, &ct).unwrap(), data);
    }

    #[test]
    fn rnd_tamper_always_detected(
        data in proptest::collection::vec(any::<u8>(), 1..128),
        flip in any::<usize>(),
    ) {
        let key = Key([12u8; 32]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut ct = rnd::encrypt(&key, &data, &mut rng);
        let idx = flip % ct.len();
        ct[idx] ^= 0x01;
        prop_assert!(rnd::decrypt(&key, &ct).is_err());
    }

    #[test]
    fn det_is_deterministic_and_injective(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let key = Key([13u8; 32]);
        let ca = det::encrypt(&key, &a);
        let cb = det::encrypt(&key, &b);
        prop_assert_eq!(ca == cb, a == b);
        prop_assert_eq!(det::decrypt(&key, &ca).unwrap(), a);
    }

    #[test]
    fn ore_compare_matches_plaintext_order(x in any::<u32>(), y in any::<u32>(), seed in any::<u64>()) {
        let key = OreKey::new(&Key([14u8; 32]), OreParams::PAPER).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let left = key.encrypt_left(x as u64).unwrap();
        let right = key.encrypt_right(y as u64, &mut rng).unwrap();
        prop_assert_eq!(compare(&left, &right).unwrap(), (x as u64).cmp(&(y as u64)));
    }

    #[test]
    fn ore_msdb_leak_is_exactly_the_top_differing_bit(x in any::<u32>(), y in any::<u32>()) {
        prop_assume!(x != y);
        let key = OreKey::new(&Key([15u8; 32]), OreParams::PAPER).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let left = key.encrypt_left(x as u64).unwrap();
        let right = key.encrypt_right(y as u64, &mut rng).unwrap();
        let leak = compare_leak(&left, &right).unwrap();
        let expected = (x ^ y).leading_zeros();
        prop_assert_eq!(leak.msdb, Some(expected));
    }

    #[test]
    fn ore_serialization_round_trips(x in any::<u32>(), seed in any::<u64>()) {
        use edb_crypto::ore::{LeftCiphertext, RightCiphertext};
        let key = OreKey::new(&Key([16u8; 32]), OreParams::PAPER).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let left = key.encrypt_left(x as u64).unwrap();
        let right = key.encrypt_right(x as u64, &mut rng).unwrap();
        prop_assert_eq!(LeftCiphertext::from_bytes(&left.to_bytes()).unwrap(), left);
        prop_assert_eq!(RightCiphertext::from_bytes(&right.to_bytes()).unwrap(), right);
    }

    #[test]
    fn ashe_sums_decrypt_over_arbitrary_id_sets(
        entries in proptest::collection::btree_map(any::<u64>(), any::<u64>(), 1..40),
    ) {
        let k = AsheKey::new(&Key([17u8; 32]), "col");
        let cts: Vec<_> = entries.iter().map(|(&id, &v)| k.encrypt(id, v)).collect();
        let sum = aggregate(&cts);
        let expect = entries.values().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(k.decrypt_sum(entries.keys().copied(), sum), expect);
    }

    #[test]
    fn ashe_telescoping_matches_generic(lo in 0u64..1000, len in 1u64..50) {
        let k = AsheKey::new_telescoping(&Key([18u8; 32]), "col");
        let hi = lo + len - 1;
        let cts: Vec<_> = (lo..=hi).map(|id| k.encrypt(id, id * 7)).collect();
        let sum = aggregate(&cts);
        let expect: u64 = (lo..=hi).map(|id| id * 7).fold(0u64, |a, v| a.wrapping_add(v));
        prop_assert_eq!(k.decrypt_range_sum(lo, hi, sum), expect);
        prop_assert_eq!(k.decrypt_sum(lo..=hi, sum), expect);
    }

    #[test]
    fn swp_complete_and_sound(
        words in proptest::collection::vec("[a-z]{1,12}", 1..20),
        probe in "[a-z]{1,12}",
    ) {
        let client = SwpClient::new(&Key([19u8; 32]));
        let td = client.trapdoor(&probe);
        for (pos, w) in words.iter().enumerate() {
            let ct = client.encrypt_word(7, pos as u32, w);
            prop_assert_eq!(server_match(&td, &ct), *w == probe, "word {}", w);
        }
    }

    #[test]
    fn feistel_is_a_bijection(n in 1u64..300, key in any::<[u8; 32]>()) {
        let prp = SmallPrp::new(&key, n);
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = prp.permute(x);
            prop_assert!(y < n);
            prop_assert!(!seen[y as usize]);
            seen[y as usize] = true;
            prop_assert_eq!(prp.invert(y), x);
        }
    }

    #[test]
    fn treap_range_matches_sorted_model(
        values in proptest::collection::vec(0u64..200, 1..60),
        lo in 0u64..200,
        width in 0u64..100,
        seed in any::<u64>(),
    ) {
        let hi = lo.saturating_add(width);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut treap = EncTreap::new(Key([20u8; 32]));
        for &v in &values {
            treap.insert(v, &mut rng);
        }
        // Model: plain filter.
        let mut expect: Vec<u64> = values.iter().copied().filter(|v| (lo..=hi).contains(v)).collect();
        expect.sort_unstable();
        let res = treap.range(lo, hi, &mut rng).unwrap();
        let mut got: Vec<u64> = res.matches.iter().map(|&id| treap.oracle_value(id)).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
        // Repairs exactly mirror the visits, and clear consumption.
        let repairs = treap.drain_repairs();
        prop_assert_eq!(repairs.len(), res.visited.len());
        prop_assert!(treap.range(lo, hi, &mut rng).is_ok());
    }

    #[test]
    fn treap_inorder_is_always_sorted(
        values in proptest::collection::vec(any::<u64>(), 0..80),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut treap = EncTreap::new(Key([21u8; 32]));
        for &v in &values {
            treap.insert(v, &mut rng);
        }
        let inorder: Vec<u64> = treap.inorder_ids().iter().map(|&id| treap.oracle_value(id)).collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(inorder, sorted);
    }
}

#[test]
fn ore_total_order_transitivity_spot_check() {
    // Deterministic cross-check that comparisons are mutually consistent.
    let key = OreKey::new(&Key([22u8; 32]), OreParams::PAPER).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let values = [5u64, 900, 5, 77, u32::MAX as u64];
    for &x in &values {
        let left = key.encrypt_left(x).unwrap();
        for &y in &values {
            let right = key.encrypt_right(y, &mut rng).unwrap();
            let ord = compare(&left, &right).unwrap();
            assert_eq!(ord, x.cmp(&y));
            assert_eq!(ord == Ordering::Equal, x == y);
        }
    }
}
