//! Error type shared by the scheme implementations.

use core::fmt;

/// Errors returned by the encryption schemes in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A ciphertext failed authentication (wrong key or tampered bytes).
    AuthenticationFailed,
    /// A ciphertext was structurally malformed (wrong length, bad framing).
    Malformed(&'static str),
    /// A plaintext was outside the domain a scheme supports.
    DomainViolation(&'static str),
    /// An index/protocol operation was invoked in an invalid state, e.g.
    /// traversing a consumed Arx treap node before it was repaired.
    InvalidState(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => write!(f, "ciphertext failed authentication"),
            CryptoError::Malformed(what) => write!(f, "malformed ciphertext: {what}"),
            CryptoError::DomainViolation(what) => write!(f, "plaintext outside domain: {what}"),
            CryptoError::InvalidState(what) => write!(f, "invalid state: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}
