//! BigFoot-style authenticated encryption for write-ahead-log records
//! (Pei & Shmatikov, PAPERS.md).
//!
//! The paper's §3 attacks (E2/E3/E14) work because redo, undo, binlog,
//! and relay-log records hit disk in plaintext. This module seals each
//! log record with ChaCha20 + HMAC-SHA-256 (encrypt-then-MAC, the same
//! composition as [`crate::rnd`]) under a **deterministic nonce derived
//! from the record's log position**: the stream id plus the record's
//! sequence number (the LSN for redo/undo, the GTID-style event
//! sequence for the binlog). Log positions are unique for the life of a
//! server, so the nonce never repeats under one key — and the record
//! needs no stored random nonce, keeping the overhead to the 9-byte
//! header plus the 16-byte tag.
//!
//! The header (`stream || seq`) is authenticated but not encrypted:
//! crash recovery must know a record's position *before* it can check
//! the tag, and position is exactly what the attacker already gets from
//! the record's offset in the file. **Leakage profile:** per-record
//! lengths, stream ids, and sequence numbers — no row images, no
//! statement text, no timestamps.

use crate::chacha20;
use crate::hmac::{ct_eq, hmac_parts};
use crate::kdf;
use crate::CryptoError;
use crate::Key;

/// Stream id of redo-log records (nonce domain separation).
pub const STREAM_REDO: u8 = 1;
/// Stream id of undo-log records.
pub const STREAM_UNDO: u8 = 2;
/// Stream id of binlog (and therefore relay-log) events.
pub const STREAM_BINLOG: u8 = 3;

/// Sealed-record header: `stream (1) || seq (8, LE)`.
pub const HEADER_LEN: usize = 9;

/// Length of the MAC tag appended to sealed records.
pub const TAG_LEN: usize = 16;

/// Total size overhead of sealing: header plus tag.
pub const OVERHEAD: usize = HEADER_LEN + TAG_LEN;

/// The 96-bit ChaCha20 nonce for a `(stream, seq)` log position.
fn nonce_for(stream: u8, seq: u64) -> [u8; chacha20::NONCE_LEN] {
    let mut n = [0u8; chacha20::NONCE_LEN];
    n[0] = stream;
    n[4..12].copy_from_slice(&seq.to_le_bytes());
    n
}

/// Seals one log record: `stream || seq || ciphertext || tag`.
///
/// The tag covers the header and the ciphertext, so a record spliced to
/// a different log position (or a bit-flipped body) fails to open.
pub fn seal(key: &Key, stream: u8, seq: u64, plaintext: &[u8]) -> Vec<u8> {
    let enc_key = kdf::derive_key(&key.0, b"logenc-enc");
    let mac_key = kdf::derive_key(&key.0, b"logenc-mac");
    let nonce = nonce_for(stream, seq);

    let mut out = Vec::with_capacity(plaintext.len() + OVERHEAD);
    out.push(stream);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(plaintext);
    chacha20::xor_stream(&enc_key, &nonce, 1, &mut out[HEADER_LEN..]);

    let tag = hmac_parts(&mac_key, &[&out[..HEADER_LEN], &out[HEADER_LEN..]]);
    out.extend_from_slice(&tag[..TAG_LEN]);
    out
}

/// Opens a sealed record, returning `(stream, seq, plaintext)`.
///
/// Self-describing: the header carries the nonce inputs, so a carver
/// that resynchronized on a sealed frame can open it without any
/// external position bookkeeping.
pub fn open(key: &Key, sealed: &[u8]) -> Result<(u8, u64, Vec<u8>), CryptoError> {
    if sealed.len() < OVERHEAD {
        return Err(CryptoError::Malformed(
            "sealed record shorter than overhead",
        ));
    }
    let enc_key = kdf::derive_key(&key.0, b"logenc-enc");
    let mac_key = kdf::derive_key(&key.0, b"logenc-mac");

    let (header, rest) = sealed.split_at(HEADER_LEN);
    let (body, tag) = rest.split_at(rest.len() - TAG_LEN);
    let stream = header[0];
    let seq = u64::from_le_bytes(header[1..9].try_into().unwrap());

    let expect = hmac_parts(&mac_key, &[header, body]);
    if !ct_eq(&expect[..TAG_LEN], tag) {
        return Err(CryptoError::AuthenticationFailed);
    }

    let mut plain = body.to_vec();
    chacha20::xor_stream(&enc_key, &nonce_for(stream, seq), 1, &mut plain);
    Ok((stream, seq, plain))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key {
        Key([0x17; 32])
    }

    #[test]
    fn round_trip_all_streams() {
        for stream in [STREAM_REDO, STREAM_UNDO, STREAM_BINLOG] {
            for len in [0usize, 1, 16, 64, 1000] {
                let pt: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
                let sealed = seal(&key(), stream, 42, &pt);
                assert_eq!(sealed.len(), len + OVERHEAD);
                assert_eq!(open(&key(), &sealed).unwrap(), (stream, 42, pt));
            }
        }
    }

    #[test]
    fn nonce_is_position_deterministic_but_stream_separated() {
        // Same position, same bytes: sealing is deterministic by design
        // (the position *is* the nonce).
        let a = seal(&key(), STREAM_REDO, 9, b"payload");
        let b = seal(&key(), STREAM_REDO, 9, b"payload");
        assert_eq!(a, b);
        // Redo and undo records share LSN values; the stream id keeps
        // their keystreams disjoint.
        let c = seal(&key(), STREAM_UNDO, 9, b"payload");
        assert_ne!(&a[HEADER_LEN..], &c[HEADER_LEN..]);
        // Different positions never share a keystream.
        let d = seal(&key(), STREAM_REDO, 10, b"payload");
        assert_ne!(&a[HEADER_LEN..], &d[HEADER_LEN..]);
    }

    #[test]
    fn tamper_and_splice_detected() {
        let mut sealed = seal(&key(), STREAM_BINLOG, 3, b"INSERT INTO t VALUES (1)");
        for i in 0..sealed.len() {
            sealed[i] ^= 1;
            assert_eq!(
                open(&key(), &sealed),
                Err(CryptoError::AuthenticationFailed)
            );
            sealed[i] ^= 1;
        }
        assert!(open(&key(), &sealed).is_ok());
    }

    #[test]
    fn wrong_key_and_truncation_rejected() {
        let sealed = seal(&key(), STREAM_REDO, 1, b"row bytes");
        assert_eq!(
            open(&Key([0x18; 32]), &sealed),
            Err(CryptoError::AuthenticationFailed)
        );
        assert!(matches!(
            open(&key(), &sealed[..OVERHEAD - 1]),
            Err(CryptoError::Malformed(_))
        ));
    }

    #[test]
    fn ciphertext_hides_plaintext_bytes() {
        let pt = b"SECRET-MARKER-0123456789";
        let sealed = seal(&key(), STREAM_BINLOG, 7, pt);
        let window = &sealed[HEADER_LEN..sealed.len() - TAG_LEN];
        assert!(!window.windows(6).any(|w| pt.windows(6).any(|p| p == w)));
    }
}
