//! BigFoot-style authenticated encryption for write-ahead-log records
//! (Pei & Shmatikov, PAPERS.md).
//!
//! The paper's §3 attacks (E2/E3/E14) work because redo, undo, binlog,
//! and relay-log records hit disk in plaintext. This module seals each
//! log record with ChaCha20 + HMAC-SHA-256 (encrypt-then-MAC, the same
//! composition as [`crate::rnd`]) under a **deterministic nonce derived
//! from the record's log position**: the stream id plus the record's
//! sequence number (the LSN for redo/undo, the GTID-style event
//! sequence for the binlog).
//!
//! Log positions are unique only *per server*, and a replicated fleet
//! shares one log key — the primary and a replica both seal their own
//! redo/undo/binlog at `(stream, seq) = (REDO, 1), (REDO, 2), …` with
//! different plaintexts. Sealing under the master key alone would reuse
//! the ChaCha20 keystream across nodes, letting a keyless attacker who
//! images both machines XOR ciphertexts into plaintext XORs. So every
//! record is sealed under a **per-origin subkey**, derived from the
//! shared key and the sealing node's server id (the `origin`): position
//! uniqueness then only has to hold per origin, which the per-server
//! monotonicity of LSNs and event sequences guarantees. No stored
//! random nonce is needed, keeping the overhead to the 17-byte header
//! plus the 16-byte tag.
//!
//! The header (`stream || origin || seq`) is authenticated but not
//! encrypted: crash recovery must know a record's position *before* it
//! can check the tag, and position is exactly what the attacker already
//! gets from the record's offset in the file. Carrying the origin in
//! the header also lets any key holder open any node's records —
//! shipped binlog frames stay under the primary's sealing end-to-end.
//! **Leakage profile:** per-record lengths, stream ids, origin ids, and
//! sequence numbers — no row images, no statement text, no timestamps.

use crate::chacha20;
use crate::hmac::{ct_eq, hmac_parts};
use crate::kdf;
use crate::CryptoError;
use crate::Key;

/// Stream id of redo-log records (nonce domain separation).
pub const STREAM_REDO: u8 = 1;
/// Stream id of undo-log records.
pub const STREAM_UNDO: u8 = 2;
/// Stream id of binlog (and therefore relay-log) events.
pub const STREAM_BINLOG: u8 = 3;

/// Sealed-record header: `stream (1) || origin (8, LE) || seq (8, LE)`.
pub const HEADER_LEN: usize = 17;

/// Length of the MAC tag appended to sealed records.
pub const TAG_LEN: usize = 16;

/// Total size overhead of sealing: header plus tag.
pub const OVERHEAD: usize = HEADER_LEN + TAG_LEN;

/// The 96-bit ChaCha20 nonce for a `(stream, seq)` log position. Unique
/// per origin subkey: positions are monotonic for the life of a server.
fn nonce_for(stream: u8, seq: u64) -> [u8; chacha20::NONCE_LEN] {
    let mut n = [0u8; chacha20::NONCE_LEN];
    n[0] = stream;
    n[4..12].copy_from_slice(&seq.to_le_bytes());
    n
}

/// Derives the per-origin `(enc, mac)` subkeys. Distinct origins give
/// computationally independent keystreams under one shared fleet key.
fn subkeys(key: &Key, origin: u64) -> ([u8; 32], [u8; 32]) {
    let mut label = [0u8; 18];
    label[..10].copy_from_slice(b"logenc-enc");
    label[10..].copy_from_slice(&origin.to_le_bytes());
    let enc = kdf::derive_key(&key.0, &label);
    label[..10].copy_from_slice(b"logenc-mac");
    let mac = kdf::derive_key(&key.0, &label);
    (enc, mac)
}

/// Seals one log record originated by node `origin` (its server id):
/// `stream || origin || seq || ciphertext || tag`.
///
/// The tag covers the header and the ciphertext, so a record spliced to
/// a different log position or node (or a bit-flipped body) fails to
/// open.
pub fn seal(key: &Key, origin: u64, stream: u8, seq: u64, plaintext: &[u8]) -> Vec<u8> {
    let (enc_key, mac_key) = subkeys(key, origin);
    let nonce = nonce_for(stream, seq);

    let mut out = Vec::with_capacity(plaintext.len() + OVERHEAD);
    out.push(stream);
    out.extend_from_slice(&origin.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(plaintext);
    chacha20::xor_stream(&enc_key, &nonce, 1, &mut out[HEADER_LEN..]);

    let tag = hmac_parts(&mac_key, &[&out[..HEADER_LEN], &out[HEADER_LEN..]]);
    out.extend_from_slice(&tag[..TAG_LEN]);
    out
}

/// Opens a sealed record, returning `(origin, stream, seq, plaintext)`.
///
/// Self-describing: the header carries the subkey and nonce inputs, so
/// any holder of the shared key — a recovering server, a replica
/// applying a frame the *primary* sealed, a carver that resynchronized
/// mid-file — can open it without external position bookkeeping.
pub fn open(key: &Key, sealed: &[u8]) -> Result<(u64, u8, u64, Vec<u8>), CryptoError> {
    if sealed.len() < OVERHEAD {
        return Err(CryptoError::Malformed(
            "sealed record shorter than overhead",
        ));
    }
    let (header, rest) = sealed.split_at(HEADER_LEN);
    let (body, tag) = rest.split_at(rest.len() - TAG_LEN);
    let stream = header[0];
    let origin = u64::from_le_bytes(header[1..9].try_into().unwrap());
    let seq = u64::from_le_bytes(header[9..17].try_into().unwrap());
    let (enc_key, mac_key) = subkeys(key, origin);

    let expect = hmac_parts(&mac_key, &[header, body]);
    if !ct_eq(&expect[..TAG_LEN], tag) {
        return Err(CryptoError::AuthenticationFailed);
    }

    let mut plain = body.to_vec();
    chacha20::xor_stream(&enc_key, &nonce_for(stream, seq), 1, &mut plain);
    Ok((origin, stream, seq, plain))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key {
        Key([0x17; 32])
    }

    #[test]
    fn round_trip_all_streams() {
        for stream in [STREAM_REDO, STREAM_UNDO, STREAM_BINLOG] {
            for len in [0usize, 1, 16, 64, 1000] {
                let pt: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
                let sealed = seal(&key(), 1, stream, 42, &pt);
                assert_eq!(sealed.len(), len + OVERHEAD);
                assert_eq!(open(&key(), &sealed).unwrap(), (1, stream, 42, pt));
            }
        }
    }

    #[test]
    fn nonce_is_position_deterministic_but_stream_separated() {
        // Same origin and position, same bytes: sealing is deterministic
        // by design (the position *is* the nonce).
        let a = seal(&key(), 1, STREAM_REDO, 9, b"payload");
        let b = seal(&key(), 1, STREAM_REDO, 9, b"payload");
        assert_eq!(a, b);
        // Redo and undo records share LSN values; the stream id keeps
        // their keystreams disjoint.
        let c = seal(&key(), 1, STREAM_UNDO, 9, b"payload");
        assert_ne!(&a[HEADER_LEN..], &c[HEADER_LEN..]);
        // Different positions never share a keystream.
        let d = seal(&key(), 1, STREAM_REDO, 10, b"payload");
        assert_ne!(&a[HEADER_LEN..], &d[HEADER_LEN..]);
    }

    #[test]
    fn fleet_nodes_never_share_a_keystream() {
        // A primary and a replica share one fleet key and both seal
        // their own logs at the same (stream, seq) positions with
        // *different* plaintexts — the E20 fleet shape. Per-origin
        // subkeys must keep the keystreams disjoint, or XORing the two
        // cold images would hand a keyless attacker the plaintext XOR.
        let pt_a = b"primary-row-AAAAAAAA";
        let pt_b = b"replica-row-BBBBBBBB";
        let a = seal(&key(), 1, STREAM_BINLOG, 0, pt_a);
        let b = seal(&key(), 2, STREAM_BINLOG, 0, pt_b);
        let body_a = &a[HEADER_LEN..a.len() - TAG_LEN];
        let body_b = &b[HEADER_LEN..b.len() - TAG_LEN];
        let ct_xor: Vec<u8> = body_a.iter().zip(body_b).map(|(x, y)| x ^ y).collect();
        let pt_xor: Vec<u8> = pt_a.iter().zip(pt_b).map(|(x, y)| x ^ y).collect();
        assert_ne!(ct_xor, pt_xor, "cross-node keystream reuse");
        // Same plaintext, different origins: still distinct ciphertext.
        let c = seal(&key(), 2, STREAM_BINLOG, 0, pt_a);
        assert_ne!(&a[HEADER_LEN..], &c[HEADER_LEN..]);
        // And both still open for any holder of the shared key.
        assert_eq!(open(&key(), &a).unwrap().0, 1);
        assert_eq!(open(&key(), &b).unwrap().0, 2);
    }

    #[test]
    fn tamper_and_splice_detected() {
        let mut sealed = seal(&key(), 3, STREAM_BINLOG, 3, b"INSERT INTO t VALUES (1)");
        for i in 0..sealed.len() {
            sealed[i] ^= 1;
            assert_eq!(
                open(&key(), &sealed),
                Err(CryptoError::AuthenticationFailed)
            );
            sealed[i] ^= 1;
        }
        assert!(open(&key(), &sealed).is_ok());
    }

    #[test]
    fn wrong_key_and_truncation_rejected() {
        let sealed = seal(&key(), 1, STREAM_REDO, 1, b"row bytes");
        assert_eq!(
            open(&Key([0x18; 32]), &sealed),
            Err(CryptoError::AuthenticationFailed)
        );
        assert!(matches!(
            open(&key(), &sealed[..OVERHEAD - 1]),
            Err(CryptoError::Malformed(_))
        ));
    }

    #[test]
    fn ciphertext_hides_plaintext_bytes() {
        let pt = b"SECRET-MARKER-0123456789";
        let sealed = seal(&key(), 1, STREAM_BINLOG, 7, pt);
        let window = &sealed[HEADER_LEN..sealed.len() - TAG_LEN];
        assert!(!window.windows(6).any(|w| pt.windows(6).any(|p| p == w)));
    }
}
