//! Minimal HKDF-style key derivation (extract-and-expand over HMAC-SHA-256).

use crate::hmac::hmac_parts;

/// Derives a 32-byte subkey from `master` and a context `label`.
///
/// Distinct labels give computationally independent keys; the same
/// `(master, label)` always gives the same key, so the encrypted-database
/// layers can re-derive column keys instead of storing them.
pub fn derive_key(master: &[u8; 32], label: &[u8]) -> [u8; 32] {
    hmac_parts(master, &[b"edb-kdf-v1", label])
}

/// Expands a key into `n` bytes of pseudorandom output.
pub fn expand(key: &[u8; 32], label: &[u8], n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n);
    let mut counter: u64 = 0;
    while out.len() < n {
        let blockbytes = hmac_parts(key, &[b"edb-kdf-expand", label, &counter.to_le_bytes()]);
        let take = (n - out.len()).min(blockbytes.len());
        out.extend_from_slice(&blockbytes[..take]);
        counter += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_label_separated() {
        let m = [1u8; 32];
        assert_eq!(derive_key(&m, b"a"), derive_key(&m, b"a"));
        assert_ne!(derive_key(&m, b"a"), derive_key(&m, b"b"));
        assert_ne!(derive_key(&m, b"a"), derive_key(&[2u8; 32], b"a"));
    }

    #[test]
    fn expand_lengths() {
        let k = [5u8; 32];
        for n in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(expand(&k, b"ctx", n).len(), n);
        }
        // Prefix property: expanding to a longer length extends the shorter.
        let short = expand(&k, b"ctx", 40);
        let long = expand(&k, b"ctx", 80);
        assert_eq!(&long[..40], &short[..]);
    }
}
