//! ChaCha20 stream cipher (RFC 8439), used by the randomized encryption
//! scheme and as the keystream for deterministic (SIV-style) encryption.

/// ChaCha20 key size in bytes.
pub const KEY_LEN: usize = 32;

/// ChaCha20 nonce size in bytes.
pub const NONCE_LEN: usize = 12;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 block.
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }

    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs `data` in place with the ChaCha20 keystream.
///
/// Encryption and decryption are the same operation. The counter starts at
/// `initial_counter` (RFC 8439 uses 1 for AEAD payloads; we follow that).
pub fn xor_stream(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(64) {
        let ks = block(key, counter, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 section 2.3.2.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let out = block(&key, 1, &nonce);
        assert_eq!(hex(&out[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
        assert_eq!(hex(&out[48..]), "b5129cd1de164eb9cbd083e8a2503c4e");
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 section 2.4.2: the "sunscreen" plaintext.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        xor_stream(&key, &nonce, 1, &mut data);
        assert_eq!(
            hex(&data[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        // Round-trip.
        xor_stream(&key, &nonce, 1, &mut data);
        assert!(data.starts_with(b"Ladies and Gentlemen"));
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = [7u8; 32];
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        xor_stream(&key, &[0u8; 12], 0, &mut a);
        xor_stream(&key, &[1u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let mut long = vec![0u8; 130];
        xor_stream(&key, &nonce, 5, &mut long);
        let b0 = block(&key, 5, &nonce);
        let b1 = block(&key, 6, &nonce);
        let b2 = block(&key, 7, &nonce);
        assert_eq!(&long[..64], &b0[..]);
        assert_eq!(&long[64..128], &b1[..]);
        assert_eq!(&long[128..130], &b2[..2]);
    }
}
