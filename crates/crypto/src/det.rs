//! Deterministic encryption (DET) in SIV style: the nonce is a PRF of the
//! plaintext, so equal plaintexts produce equal ciphertexts.
//!
//! DET is what CryptDB uses for equality predicates and joins, and what
//! Seabed uses for join columns and the enhanced-SPLASHE tail.
//!
//! **Leakage profile (snapshot, no queries):** the full equality pattern —
//! i.e. the plaintext *histogram shape*. This is what makes DET columns
//! vulnerable to frequency analysis (`snapshot-attack::attacks::frequency`)
//! whenever the attacker has an auxiliary model of the plaintext
//! distribution, per Naveed–Kamara–Wright and Lacharité–Paterson.

use crate::chacha20;
use crate::hmac::hmac_parts;
use crate::kdf;
use crate::CryptoError;
use crate::Key;

/// Encrypts deterministically: `DET(k, m)` is a function of `(k, m)` only.
pub fn encrypt(key: &Key, plaintext: &[u8]) -> Vec<u8> {
    let siv_key = kdf::derive_key(&key.0, b"det-siv");
    let tag = hmac_parts(&siv_key, &[plaintext]);
    let mut nonce = [0u8; chacha20::NONCE_LEN];
    nonce.copy_from_slice(&tag[..chacha20::NONCE_LEN]);
    crate::rnd::encrypt_with_nonce(key, plaintext, &nonce)
}

/// Decrypts a DET ciphertext, verifying both the MAC and the SIV binding.
pub fn decrypt(key: &Key, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    let plain = crate::rnd::decrypt(key, ciphertext)?;
    // Recompute the synthetic IV to reject mix-and-match forgeries that
    // splice a valid nonce onto a different valid body.
    let siv_key = kdf::derive_key(&key.0, b"det-siv");
    let tag = hmac_parts(&siv_key, &[&plain]);
    if !crate::hmac::ct_eq(
        &tag[..chacha20::NONCE_LEN],
        &ciphertext[..chacha20::NONCE_LEN],
    ) {
        return Err(CryptoError::AuthenticationFailed);
    }
    Ok(plain)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> Key {
        Key([0x10; 32])
    }

    #[test]
    fn deterministic() {
        assert_eq!(encrypt(&key(), b"indiana"), encrypt(&key(), b"indiana"));
        assert_ne!(encrypt(&key(), b"indiana"), encrypt(&key(), b"arizona"));
    }

    #[test]
    fn round_trip() {
        for msg in [&b""[..], b"x", b"a longer message spanning blocks....."] {
            let ct = encrypt(&key(), msg);
            assert_eq!(decrypt(&key(), &ct).unwrap(), msg);
        }
    }

    #[test]
    fn equality_pattern_leaks_histogram() {
        // The property the attacks exploit: the multiset of ciphertexts
        // reveals the multiset shape of plaintexts.
        let values = [b"a".as_ref(), b"b", b"a", b"c", b"a", b"b"];
        let cts: Vec<_> = values.iter().map(|v| encrypt(&key(), v)).collect();
        let mut counts = std::collections::HashMap::new();
        for ct in &cts {
            *counts.entry(ct.clone()).or_insert(0usize) += 1;
        }
        let mut histogram: Vec<usize> = counts.values().copied().collect();
        histogram.sort_unstable();
        assert_eq!(histogram, vec![1, 2, 3]);
    }

    #[test]
    fn keys_separate() {
        let ct = encrypt(&key(), b"m");
        assert!(decrypt(&Key([0x11; 32]), &ct).is_err());
    }

    #[test]
    fn tamper_detected() {
        let mut ct = encrypt(&key(), b"payload");
        ct[0] ^= 0xFF;
        assert!(decrypt(&key(), &ct).is_err());
    }
}
