//! Seabed's ASHE: additively symmetric homomorphic encryption (OSDI 2016).
//!
//! `Enc_k(id, x) = x + F_k(id)  (mod 2⁶⁴)` — a one-time pad from a PRF over
//! the row identifier. Sums of ciphertexts decrypt by subtracting the sum
//! of pads, so the server can answer `SUM`/`COUNT` aggregations without
//! learning anything. For *contiguous* id ranges, Seabed's telescoping
//! variant `x + F_k(id) − F_k(id−1)` lets the client strip the pads of an
//! entire range `[a, b]` with just two PRF calls.
//!
//! **Leakage profile:** none from ciphertexts (each pad is used once).
//! Seabed's weakness in the paper is *not* ASHE itself but the SPLASHE
//! query rewriting around it — see [`crate::splashe`].

use crate::hmac::Prf;
use crate::kdf;
use crate::Key;

/// An ASHE ciphertext: the row id it is bound to and the padded value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsheCiphertext {
    /// Row identifier the pad was derived from.
    pub id: u64,
    /// `value + pad (mod 2^64)`.
    pub body: u64,
}

/// Key for ASHE encryption/decryption.
#[derive(Clone)]
pub struct AsheKey {
    prf: Prf,
    telescoping: bool,
}

impl AsheKey {
    /// Creates a key in the basic (independent-pad) mode.
    pub fn new(master: &Key, column_label: &str) -> Self {
        AsheKey {
            prf: Prf::new(&kdf::derive_key(
                &master.0,
                format!("ashe:{column_label}").as_bytes(),
            )),
            telescoping: false,
        }
    }

    /// Creates a key in the telescoping mode (`pad(id) = F(id) − F(id−1)`),
    /// enabling O(1) decryption of contiguous-range sums.
    pub fn new_telescoping(master: &Key, column_label: &str) -> Self {
        let mut k = Self::new(master, column_label);
        k.telescoping = true;
        k
    }

    fn f(&self, id: u64) -> u64 {
        self.prf.eval_u64(&[b"ashe-pad", &id.to_le_bytes()])
    }

    fn pad(&self, id: u64) -> u64 {
        if self.telescoping {
            self.f(id).wrapping_sub(self.f(id.wrapping_sub(1)))
        } else {
            self.f(id)
        }
    }

    /// Encrypts `value` for row `id`.
    pub fn encrypt(&self, id: u64, value: u64) -> AsheCiphertext {
        AsheCiphertext {
            id,
            body: value.wrapping_add(self.pad(id)),
        }
    }

    /// Decrypts a single ciphertext.
    pub fn decrypt(&self, ct: AsheCiphertext) -> u64 {
        ct.body.wrapping_sub(self.pad(ct.id))
    }

    /// Decrypts an aggregated sum over an explicit id set.
    ///
    /// `sum_body` must be the wrapping sum of the `body` fields of the
    /// ciphertexts whose ids are listed in `ids`.
    pub fn decrypt_sum(&self, ids: impl IntoIterator<Item = u64>, sum_body: u64) -> u64 {
        let mut pads: u64 = 0;
        for id in ids {
            pads = pads.wrapping_add(self.pad(id));
        }
        sum_body.wrapping_sub(pads)
    }

    /// Decrypts an aggregated sum over the contiguous id range `lo..=hi`
    /// with two PRF calls. Requires a telescoping key.
    ///
    /// # Panics
    ///
    /// Panics if the key is not telescoping or `lo > hi`.
    pub fn decrypt_range_sum(&self, lo: u64, hi: u64, sum_body: u64) -> u64 {
        assert!(self.telescoping, "range decryption needs a telescoping key");
        assert!(lo <= hi, "empty range");
        // Σ_{i=lo..=hi} (F(i) − F(i−1)) telescopes to F(hi) − F(lo−1).
        let pads = self.f(hi).wrapping_sub(self.f(lo.wrapping_sub(1)));
        sum_body.wrapping_sub(pads)
    }
}

/// Wrapping sum of ciphertext bodies, the server-side aggregation
/// (`ashe(...)` in Seabed's rewritten queries).
pub fn aggregate<'a>(cts: impl IntoIterator<Item = &'a AsheCiphertext>) -> u64 {
    cts.into_iter()
        .fold(0u64, |acc, c| acc.wrapping_add(c.body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> AsheKey {
        AsheKey::new(&Key([0x21; 32]), "sales")
    }

    #[test]
    fn single_round_trip() {
        let k = key();
        for (id, v) in [(0u64, 0u64), (1, 17), (99, u64::MAX), (7, 1 << 40)] {
            assert_eq!(k.decrypt(k.encrypt(id, v)), v);
        }
    }

    #[test]
    fn additive_homomorphism() {
        let k = key();
        let values = [(1u64, 10u64), (2, 20), (5, 12), (9, 0)];
        let cts: Vec<_> = values.iter().map(|&(id, v)| k.encrypt(id, v)).collect();
        let sum = aggregate(&cts);
        let plain: u64 = values.iter().map(|&(_, v)| v).sum();
        assert_eq!(k.decrypt_sum(values.iter().map(|&(id, _)| id), sum), plain);
    }

    #[test]
    fn telescoping_range_sum() {
        let k = AsheKey::new_telescoping(&Key([0x22; 32]), "col");
        let cts: Vec<_> = (10u64..=30).map(|id| k.encrypt(id, id * 3)).collect();
        let sum = aggregate(&cts);
        let plain: u64 = (10u64..=30).map(|id| id * 3).sum();
        assert_eq!(k.decrypt_range_sum(10, 30, sum), plain);
        // Telescoping keys also round-trip individual cells.
        assert_eq!(k.decrypt(k.encrypt(77, 123)), 123);
    }

    #[test]
    fn ciphertexts_hide_plaintexts() {
        // Equal values in different rows give unrelated bodies, and the
        // body of a known plaintext reveals nothing about another row.
        let k = key();
        let a = k.encrypt(1, 5);
        let b = k.encrypt(2, 5);
        assert_ne!(a.body, b.body);
    }

    #[test]
    fn wrapping_behaviour() {
        let k = key();
        let a = k.encrypt(1, u64::MAX);
        let b = k.encrypt(2, 2);
        let sum = aggregate([&a, &b]);
        // u64::MAX + 2 wraps to 1.
        assert_eq!(k.decrypt_sum([1u64, 2], sum), 1);
    }

    #[test]
    #[should_panic(expected = "telescoping")]
    fn range_sum_requires_telescoping() {
        key().decrypt_range_sum(0, 1, 0);
    }
}
