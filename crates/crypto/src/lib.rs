//! From-scratch cryptographic primitives and property-revealing encryption
//! (PRE) schemes used by encrypted databases, as surveyed in *Why Your
//! Encrypted Database Is Not Secure* (HotOS 2017).
//!
//! The crate provides two layers:
//!
//! * **Primitives** — [`sha256`], [`hmac`], [`chacha20`], a small-domain
//!   Feistel PRP ([`feistel`]), and a key-derivation helper ([`kdf`]).
//!   These exist because the reproduction environment is offline; they are
//!   textbook constructions written for clarity and test coverage, **not**
//!   audited implementations. Do not reuse them to protect real data.
//! * **Schemes** — the encryption schemes whose leakage the paper studies:
//!   randomized (semantically secure) encryption ([`rnd`]), deterministic
//!   encryption ([`det`]), Song–Wagner–Perrig searchable encryption
//!   ([`swp`]), Lewi–Wu order-revealing encryption ([`ore`]), Seabed's
//!   additively symmetric homomorphic encryption ([`ashe`]) and SPLASHE
//!   ([`splashe`]), and an Arx-style encrypted treap index ([`treap`]).
//!
//! Each scheme module documents its *leakage profile*: what a party holding
//! only ciphertexts (a "snapshot attacker") learns, and what a party that
//! additionally holds query tokens learns. The attack suite in the
//! `snapshot-attack` crate exploits exactly those profiles.

pub mod ashe;
pub mod chacha20;
pub mod det;
pub mod error;
pub mod feistel;
pub mod hmac;
pub mod kdf;
pub mod logenc;
pub mod ore;
pub mod rnd;
pub mod sha256;
pub mod splashe;
pub mod swp;
pub mod treap;

pub use error::CryptoError;

/// A 256-bit symmetric key, the key type used throughout this crate.
///
/// Keys are intentionally plain byte arrays: the paper's snapshot attacker
/// reads them out of process memory, and the reproduction needs to model
/// that (see the `edb` crate's at-rest layer).
#[derive(Clone, PartialEq, Eq)]
pub struct Key(pub [u8; 32]);

impl Key {
    /// Derives a key from a human-readable label and a master key.
    ///
    /// This is the standard way the higher layers obtain per-purpose keys
    /// (one for DET columns, one per SWP column, and so on) so that a single
    /// master secret drives an entire encrypted database.
    pub fn derive(master: &Key, label: &str) -> Key {
        Key(kdf::derive_key(&master.0, label.as_bytes()))
    }

    /// Generates a fresh random key from the given RNG.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Key {
        let mut k = [0u8; 32];
        rng.fill(&mut k);
        Key(k)
    }
}

impl core::fmt::Debug for Key {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Keys are deliberately not printed: debug output ends up in logs,
        // and leaking keys through logs is one of the paper's themes.
        write!(f, "Key(<redacted>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_keys_differ_by_label() {
        let master = Key([7u8; 32]);
        let a = Key::derive(&master, "det");
        let b = Key::derive(&master, "swp");
        assert_ne!(a.0, b.0);
        // Derivation is deterministic.
        assert_eq!(a.0, Key::derive(&master, "det").0);
    }

    #[test]
    fn debug_never_prints_key_material() {
        let k = Key([0xAB; 32]);
        let s = format!("{k:?}");
        assert!(!s.contains("AB") && !s.contains("ab"));
        assert!(s.contains("redacted"));
    }
}
