//! HMAC-SHA-256 (RFC 2104), the PRF used by every scheme in this crate.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_parts(key, &[message])
}

/// Computes HMAC over several length-framed segments.
///
/// Framing makes `(["ab","c"])` and `(["a","bc"])` produce different tags,
/// which the schemes rely on when building tweaked PRFs like
/// `F(k, (block_index, prefix, value))`.
pub fn hmac_parts(key: &[u8], parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut k_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let d = crate::sha256::digest(key);
        k_block[..DIGEST_LEN].copy_from_slice(&d);
    } else {
        k_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= k_block[i];
        opad[i] ^= k_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    for p in parts {
        inner.update(&(p.len() as u64).to_le_bytes());
        inner.update(p);
    }
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// A PRF with convenient output shapes, wrapping HMAC-SHA-256.
///
/// # Examples
///
/// ```
/// use edb_crypto::hmac::Prf;
///
/// let prf = Prf::new(&[1u8; 32]);
/// let a = prf.eval_u64(&[b"tweak", b"input"]);
/// let b = prf.eval_u64(&[b"tweak", b"input"]);
/// assert_eq!(a, b);
/// ```
#[derive(Clone)]
pub struct Prf {
    key: Vec<u8>,
}

impl Prf {
    /// Creates a PRF keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        Prf { key: key.to_vec() }
    }

    /// Full 32-byte PRF output.
    pub fn eval(&self, parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
        hmac_parts(&self.key, parts)
    }

    /// PRF output truncated to a `u64`.
    pub fn eval_u64(&self, parts: &[&[u8]]) -> u64 {
        let d = self.eval(parts);
        u64::from_le_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]])
    }

    /// PRF output reduced modulo `n` (requires `n > 0`).
    ///
    /// The bias from the modular reduction is negligible for the domain
    /// sizes used here (`n` ≤ 2³²  ≪  2⁶⁴).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn eval_mod(&self, parts: &[&[u8]], n: u64) -> u64 {
        assert!(n > 0, "modulus must be positive");
        self.eval_u64(parts) % n
    }
}

/// Constant-time equality for MAC verification.
///
/// Returns `true` iff `a == b`, inspecting every byte regardless of where
/// the first mismatch occurs.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test case 1 (unframed single-part message matches the RFC
    /// only through `raw_hmac` below, so we re-derive it here).
    fn raw_hmac(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
        let mut k_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = crate::sha256::digest(key);
            k_block[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= k_block[i];
            opad[i] ^= k_block[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        inner.update(msg);
        let id = inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&opad);
        outer.update(&id);
        outer.finalize()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = raw_hmac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = raw_hmac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = raw_hmac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn framing_distinguishes_part_boundaries() {
        let k = [9u8; 32];
        assert_ne!(
            hmac_parts(&k, &[b"ab", b"c"]),
            hmac_parts(&k, &[b"a", b"bc"])
        );
        assert_ne!(hmac_parts(&k, &[b"abc"]), hmac_parts(&k, &[b"abc", b""]));
    }

    #[test]
    fn keys_matter() {
        assert_ne!(hmac(&[1u8; 32], b"m"), hmac(&[2u8; 32], b"m"));
    }

    #[test]
    fn prf_mod_in_range() {
        let prf = Prf::new(&[3u8; 32]);
        for i in 0u64..200 {
            let v = prf.eval_mod(&[&i.to_le_bytes()], 7);
            assert!(v < 7);
        }
    }

    #[test]
    fn ct_eq_behaves() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"sama"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }
}
