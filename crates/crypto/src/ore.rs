//! Lewi–Wu order-revealing encryption (CCS 2016), the left/right
//! construction with configurable block size.
//!
//! Plaintexts are `width`-bit unsigned integers processed in blocks of
//! `block_bits` bits, most significant block first. A **right ciphertext**
//! (stored in the database) contains, for every block index and every
//! candidate block value, a blinded comparison result; a **left ciphertext**
//! (the *query token*) contains, per block, a PRF key and a permuted slot
//! index that unlock exactly one of those comparison results.
//!
//! **Leakage profile:**
//!
//! * right ciphertexts alone — nothing: every entry is blinded by
//!   `H(F(k₁, ·), nonce)` with a per-ciphertext nonce, so the encryption is
//!   semantically secure *at rest*. This is the basis for Lewi–Wu-style
//!   "snapshot security" claims.
//! * a left ciphertext applied to a right ciphertext — the order of the two
//!   plaintexts **and the index of the most significant differing block**
//!   ([`compare_leak`]). With 1-bit blocks that index pins down one
//!   plaintext bit of each operand and the pairwise equality of all more
//!   significant bits — the leakage the paper's §6 simulation accumulates
//!   into 12–25% of all database bits.

use core::cmp::Ordering;

use crate::feistel::SmallPrp;
use crate::hmac::{hmac_parts, Prf};
use crate::kdf;
use crate::CryptoError;
use crate::Key;

/// Comparison encodings inside right-ciphertext slots (values mod 3).
const CMP_EQ: u8 = 0;
const CMP_LT: u8 = 1;
const CMP_GT: u8 = 2;

/// Parameters of the ORE scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OreParams {
    /// Plaintext width in bits (≤ 64).
    pub width: u32,
    /// Block size in bits; the paper's simulation uses 1.
    pub block_bits: u32,
}

impl OreParams {
    /// The configuration used by the paper's §6 simulation: 32-bit values,
    /// 1-bit blocks.
    pub const PAPER: OreParams = OreParams {
        width: 32,
        block_bits: 1,
    };

    /// Number of blocks per plaintext.
    pub fn num_blocks(&self) -> u32 {
        self.width / self.block_bits
    }

    /// Number of possible values per block.
    pub fn block_space(&self) -> u64 {
        1u64 << self.block_bits
    }

    fn validate(&self) -> Result<(), CryptoError> {
        if self.width == 0 || self.width > 64 {
            return Err(CryptoError::DomainViolation("width must be in 1..=64"));
        }
        if self.block_bits == 0 || !self.width.is_multiple_of(self.block_bits) {
            return Err(CryptoError::DomainViolation("block_bits must divide width"));
        }
        if self.block_bits > 8 {
            return Err(CryptoError::DomainViolation(
                "block_bits > 8 makes right ciphertexts impractically large",
            ));
        }
        Ok(())
    }
}

/// Secret key for the Lewi–Wu scheme.
#[derive(Clone)]
pub struct OreKey {
    params: OreParams,
    /// PRF used for slot-unblinding keys (k₁ in the paper).
    prf1: Prf,
    /// PRF used to key the per-prefix slot permutations (k₂ in the paper).
    prf2: [u8; 32],
}

/// A left ciphertext — the query token delegated to the server.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeftCiphertext {
    /// Per block: (unblinding key, permuted slot index).
    pub blocks: Vec<([u8; 32], u16)>,
}

/// A right ciphertext — the form stored in the database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RightCiphertext {
    /// Per-ciphertext nonce feeding the blinding hash.
    pub nonce: [u8; 16],
    /// `blocks[i][slot]` is a blinded comparison value in `0..3`.
    pub blocks: Vec<Vec<u8>>,
}

/// Result of a comparison together with the structural leakage it incurs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompareLeak {
    /// The revealed order relation.
    pub ordering: Ordering,
    /// Index (0 = most significant) of the first differing block, or `None`
    /// when the plaintexts are equal.
    pub msdb: Option<u32>,
}

fn prefix_bytes(x: u64, block_idx: u32, params: &OreParams) -> [u8; 8] {
    // The value of the blocks strictly above `block_idx`, right-aligned.
    let consumed = block_idx * params.block_bits;
    let prefix = if consumed == 0 {
        0
    } else {
        x >> (params.width - consumed)
    };
    prefix.to_le_bytes()
}

fn block_value(x: u64, block_idx: u32, params: &OreParams) -> u64 {
    let shift = params.width - (block_idx + 1) * params.block_bits;
    (x >> shift) & (params.block_space() - 1)
}

/// `H(key, nonce) mod 3`: the blinding hash.
fn blind(key: &[u8; 32], nonce: &[u8; 16]) -> u8 {
    let d = hmac_parts(key, &[b"ore-blind", nonce]);
    (u64::from_le_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]]) % 3) as u8
}

impl OreKey {
    /// Creates an ORE key for the given parameters.
    pub fn new(master: &Key, params: OreParams) -> Result<Self, CryptoError> {
        params.validate()?;
        Ok(OreKey {
            params,
            prf1: Prf::new(&kdf::derive_key(&master.0, b"ore-k1")),
            prf2: kdf::derive_key(&master.0, b"ore-k2"),
        })
    }

    /// Scheme parameters.
    pub fn params(&self) -> OreParams {
        self.params
    }

    fn check_domain(&self, x: u64) -> Result<(), CryptoError> {
        if self.params.width < 64 && x >> self.params.width != 0 {
            return Err(CryptoError::DomainViolation("plaintext exceeds width"));
        }
        Ok(())
    }

    /// Permutation over block values for `(block_idx, prefix)`.
    fn slot_prp(&self, block_idx: u32, prefix: &[u8; 8]) -> SmallPrp {
        let k = hmac_parts(&self.prf2, &[b"ore-perm", &block_idx.to_le_bytes(), prefix]);
        SmallPrp::new(&k, self.params.block_space())
    }

    /// Unblinding key for `(block_idx, prefix, block_value)`.
    fn slot_key(&self, block_idx: u32, prefix: &[u8; 8], b: u64) -> [u8; 32] {
        self.prf1.eval(&[
            b"ore-slot",
            &block_idx.to_le_bytes(),
            prefix,
            &b.to_le_bytes(),
        ])
    }

    /// Encrypts `x` as a left ciphertext (query token).
    pub fn encrypt_left(&self, x: u64) -> Result<LeftCiphertext, CryptoError> {
        self.check_domain(x)?;
        let mut blocks = Vec::with_capacity(self.params.num_blocks() as usize);
        for i in 0..self.params.num_blocks() {
            let prefix = prefix_bytes(x, i, &self.params);
            let xi = block_value(x, i, &self.params);
            let key = self.slot_key(i, &prefix, xi);
            let pos = self.slot_prp(i, &prefix).permute(xi) as u16;
            blocks.push((key, pos));
        }
        Ok(LeftCiphertext { blocks })
    }

    /// Encrypts `y` as a right ciphertext using randomness from `rng`.
    pub fn encrypt_right<R: rand::Rng + ?Sized>(
        &self,
        y: u64,
        rng: &mut R,
    ) -> Result<RightCiphertext, CryptoError> {
        self.check_domain(y)?;
        let mut nonce = [0u8; 16];
        rng.fill(&mut nonce);
        let space = self.params.block_space();
        let mut blocks = Vec::with_capacity(self.params.num_blocks() as usize);
        for i in 0..self.params.num_blocks() {
            let prefix = prefix_bytes(y, i, &self.params);
            let yi = block_value(y, i, &self.params);
            let prp = self.slot_prp(i, &prefix);
            let mut slots = vec![0u8; space as usize];
            for b in 0..space {
                let cmp = match b.cmp(&yi) {
                    Ordering::Equal => CMP_EQ,
                    Ordering::Less => CMP_LT,
                    Ordering::Greater => CMP_GT,
                };
                let k = self.slot_key(i, &prefix, b);
                let slot = prp.permute(b) as usize;
                slots[slot] = (cmp + blind(&k, &nonce)) % 3;
            }
            blocks.push(slots);
        }
        Ok(RightCiphertext { nonce, blocks })
    }
}

impl LeftCiphertext {
    /// Serializes the token (as it would travel inside a SQL statement).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.blocks.len() * 34);
        out.extend_from_slice(&(self.blocks.len() as u16).to_le_bytes());
        for (key, pos) in &self.blocks {
            out.extend_from_slice(key);
            out.extend_from_slice(&pos.to_le_bytes());
        }
        out
    }

    /// Parses a token from bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<LeftCiphertext, CryptoError> {
        if buf.len() < 2 {
            return Err(CryptoError::Malformed("short left ciphertext"));
        }
        let n = u16::from_le_bytes([buf[0], buf[1]]) as usize;
        if buf.len() != 2 + n * 34 {
            return Err(CryptoError::Malformed("left ciphertext length"));
        }
        let mut blocks = Vec::with_capacity(n);
        for i in 0..n {
            let off = 2 + i * 34;
            let mut key = [0u8; 32];
            key.copy_from_slice(&buf[off..off + 32]);
            let pos = u16::from_le_bytes([buf[off + 32], buf[off + 33]]);
            blocks.push((key, pos));
        }
        Ok(LeftCiphertext { blocks })
    }
}

impl RightCiphertext {
    /// Serializes the stored ciphertext.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.nonce);
        out.extend_from_slice(&(self.blocks.len() as u16).to_le_bytes());
        for slots in &self.blocks {
            out.extend_from_slice(&(slots.len() as u16).to_le_bytes());
            out.extend_from_slice(slots);
        }
        out
    }

    /// Parses a stored ciphertext from bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<RightCiphertext, CryptoError> {
        if buf.len() < 18 {
            return Err(CryptoError::Malformed("short right ciphertext"));
        }
        let mut nonce = [0u8; 16];
        nonce.copy_from_slice(&buf[..16]);
        let n = u16::from_le_bytes([buf[16], buf[17]]) as usize;
        let mut pos = 18;
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            let Some(len_bytes) = buf.get(pos..pos + 2) else {
                return Err(CryptoError::Malformed("truncated right ciphertext"));
            };
            let len = u16::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
            pos += 2;
            let Some(slots) = buf.get(pos..pos + len) else {
                return Err(CryptoError::Malformed("truncated right ciphertext"));
            };
            pos += len;
            blocks.push(slots.to_vec());
        }
        if pos != buf.len() {
            return Err(CryptoError::Malformed("trailing right-ciphertext bytes"));
        }
        Ok(RightCiphertext { nonce, blocks })
    }
}

/// Compares a query token against a stored ciphertext, additionally
/// reporting the leaked most-significant-differing-block index.
///
/// This is a keyless operation: anyone holding the two ciphertexts — e.g. a
/// snapshot attacker who carved the token out of a log — can run it. That
/// asymmetry is the crux of the paper's §6 analysis.
pub fn compare_leak(
    left: &LeftCiphertext,
    right: &RightCiphertext,
) -> Result<CompareLeak, CryptoError> {
    if left.blocks.len() != right.blocks.len() {
        return Err(CryptoError::Malformed("block count mismatch"));
    }
    for (i, ((key, pos), slots)) in left.blocks.iter().zip(right.blocks.iter()).enumerate() {
        let slot = *pos as usize;
        if slot >= slots.len() {
            return Err(CryptoError::Malformed("slot index out of range"));
        }
        let res = (slots[slot] + 3 - blind(key, &right.nonce)) % 3;
        match res {
            CMP_EQ => continue,
            CMP_LT => {
                return Ok(CompareLeak {
                    ordering: Ordering::Less,
                    msdb: Some(i as u32),
                })
            }
            _ => {
                return Ok(CompareLeak {
                    ordering: Ordering::Greater,
                    msdb: Some(i as u32),
                })
            }
        }
    }
    Ok(CompareLeak {
        ordering: Ordering::Equal,
        msdb: None,
    })
}

/// Compares a token against a stored ciphertext, returning only the order.
pub fn compare(left: &LeftCiphertext, right: &RightCiphertext) -> Result<Ordering, CryptoError> {
    compare_leak(left, right).map(|l| l.ordering)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(params: OreParams) -> OreKey {
        OreKey::new(&Key([0x33; 32]), params).unwrap()
    }

    #[test]
    fn correctness_one_bit_blocks() {
        let k = key(OreParams::PAPER);
        let mut rng = StdRng::seed_from_u64(7);
        let values = [0u64, 1, 2, 3, 100, 1 << 16, u32::MAX as u64, 0xDEAD_BEEF];
        for &x in &values {
            let left = k.encrypt_left(x).unwrap();
            for &y in &values {
                let right = k.encrypt_right(y, &mut rng).unwrap();
                assert_eq!(compare(&left, &right).unwrap(), x.cmp(&y), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn correctness_multi_bit_blocks() {
        let params = OreParams {
            width: 16,
            block_bits: 4,
        };
        let k = key(params);
        let mut rng = StdRng::seed_from_u64(8);
        for trial in 0..200u64 {
            let x = Prf::new(&[1; 32]).eval_u64(&[&trial.to_le_bytes()]) & 0xFFFF;
            let y = Prf::new(&[2; 32]).eval_u64(&[&trial.to_le_bytes()]) & 0xFFFF;
            let left = k.encrypt_left(x).unwrap();
            let right = k.encrypt_right(y, &mut rng).unwrap();
            assert_eq!(compare(&left, &right).unwrap(), x.cmp(&y), "{x} vs {y}");
        }
    }

    #[test]
    fn msdb_leak_matches_plaintext_structure() {
        let k = key(OreParams::PAPER);
        let mut rng = StdRng::seed_from_u64(9);
        let cases = [
            (0b1000u64 << 28, 0b1001u64 << 28, 3u32),
            (0u64, 1u64, 31),
            (u32::MAX as u64, 0u64, 0),
        ];
        for &(x, y, expect_msdb) in &cases {
            let left = k.encrypt_left(x).unwrap();
            let right = k.encrypt_right(y, &mut rng).unwrap();
            let leak = compare_leak(&left, &right).unwrap();
            assert_eq!(leak.msdb, Some(expect_msdb), "{x:#x} vs {y:#x}");
        }
        // Equal values leak no msdb.
        let left = k.encrypt_left(42).unwrap();
        let right = k.encrypt_right(42, &mut rng).unwrap();
        let leak = compare_leak(&left, &right).unwrap();
        assert_eq!(leak.ordering, Ordering::Equal);
        assert_eq!(leak.msdb, None);
    }

    #[test]
    fn right_ciphertexts_are_randomized() {
        let k = key(OreParams::PAPER);
        let mut rng = StdRng::seed_from_u64(10);
        let a = k.encrypt_right(1234, &mut rng).unwrap();
        let b = k.encrypt_right(1234, &mut rng).unwrap();
        assert_ne!(a, b, "right encryptions of equal values must differ");
    }

    #[test]
    fn domain_enforced() {
        let params = OreParams {
            width: 8,
            block_bits: 1,
        };
        let k = key(params);
        assert!(k.encrypt_left(255).is_ok());
        assert!(matches!(
            k.encrypt_left(256),
            Err(CryptoError::DomainViolation(_))
        ));
    }

    #[test]
    fn invalid_params_rejected() {
        let m = Key([0; 32]);
        for p in [
            OreParams {
                width: 0,
                block_bits: 1,
            },
            OreParams {
                width: 65,
                block_bits: 1,
            },
            OreParams {
                width: 32,
                block_bits: 5,
            },
            OreParams {
                width: 32,
                block_bits: 0,
            },
            OreParams {
                width: 32,
                block_bits: 16,
            },
        ] {
            assert!(OreKey::new(&m, p).is_err(), "{p:?}");
        }
    }

    #[test]
    fn serialization_round_trips() {
        let k = key(OreParams::PAPER);
        let mut rng = StdRng::seed_from_u64(12);
        let left = k.encrypt_left(0xCAFE).unwrap();
        let right = k.encrypt_right(0xBEEF, &mut rng).unwrap();
        let left2 = LeftCiphertext::from_bytes(&left.to_bytes()).unwrap();
        let right2 = RightCiphertext::from_bytes(&right.to_bytes()).unwrap();
        assert_eq!(left2, left);
        assert_eq!(right2, right);
        assert_eq!(compare(&left2, &right2).unwrap(), 0xCAFEu64.cmp(&0xBEEF));
        assert!(LeftCiphertext::from_bytes(&[1]).is_err());
        assert!(RightCiphertext::from_bytes(&[0; 5]).is_err());
        let mut trunc = right.to_bytes();
        trunc.pop();
        assert!(RightCiphertext::from_bytes(&trunc).is_err());
    }

    #[test]
    fn mismatched_widths_detected() {
        let k8 = key(OreParams {
            width: 8,
            block_bits: 1,
        });
        let k32 = key(OreParams::PAPER);
        let mut rng = StdRng::seed_from_u64(11);
        let left = k8.encrypt_left(1).unwrap();
        let right = k32.encrypt_right(1, &mut rng).unwrap();
        assert!(compare(&left, &right).is_err());
    }
}
