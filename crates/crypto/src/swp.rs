//! Song–Wagner–Perrig (SWP) searchable symmetric encryption, the scheme
//! family behind CryptDB's SEARCH onion and Mylar.
//!
//! Each word occurrence is encrypted as `C = X ⊕ (S ‖ F_{k_X}(S))` where
//! `X` is a deterministic encoding of the word, `S` is per-position
//! pseudorandomness, and `k_X` is derived from the left half of `X`. A
//! search trapdoor for word `w` is `(X_w, k_{X_w})`; the server XORs each
//! stored `C` with `X_w` and checks the internal consistency
//! `F_{k_{X_w}}(S) = T`, which holds exactly when the position holds `w`.
//!
//! **Leakage profile:**
//!
//! * ciphertexts alone — nothing beyond the number of word positions
//!   (semantic security; every `C` is pseudorandom);
//! * ciphertexts **plus one trapdoor** — the full access pattern of that
//!   word: which positions (hence which documents) match, and therefore the
//!   word's *result count*. This is the leakage the count attack
//!   (Cash et al., CCS'15) converts into plaintext recovery, and §6 of the
//!   paper shows trapdoors are recoverable from any realistic snapshot.

use crate::hmac::{ct_eq, hmac_parts};
use crate::kdf;
use crate::Key;

/// Byte length of the word encoding `X` (split into two 16-byte halves).
pub const WORD_ENC_LEN: usize = 32;

/// Byte length of one encrypted word position.
pub const CIPHERTEXT_LEN: usize = WORD_ENC_LEN;

/// One encrypted word occurrence in a document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WordCiphertext(pub [u8; CIPHERTEXT_LEN]);

/// A search trapdoor: everything the server needs to test positions for one
/// specific word. **Possession of this value breaks semantic security** —
/// that is the paper's point, because the DBMS writes it to logs, caches,
/// and the heap.
#[derive(Clone, PartialEq, Eq)]
pub struct Trapdoor {
    /// Deterministic encoding of the word.
    pub word_enc: [u8; WORD_ENC_LEN],
    /// Match key derived from the left half of `word_enc`.
    pub match_key: [u8; 32],
}

impl core::fmt::Debug for Trapdoor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Printing a trapdoor into a debug log would be exactly the bug the
        // paper describes; show only a short fingerprint.
        write!(
            f,
            "Trapdoor({:02x}{:02x}{:02x}..)",
            self.word_enc[0], self.word_enc[1], self.word_enc[2]
        )
    }
}

impl Trapdoor {
    /// Serializes the trapdoor to bytes (as it would appear in a query
    /// string sent to the DBMS, e.g. hex inside a `WHERE` clause).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(WORD_ENC_LEN + 32);
        v.extend_from_slice(&self.word_enc);
        v.extend_from_slice(&self.match_key);
        v
    }

    /// Parses a trapdoor from bytes (what the snapshot attacker does after
    /// carving one out of a log file or heap dump).
    pub fn from_bytes(bytes: &[u8]) -> Option<Trapdoor> {
        if bytes.len() != WORD_ENC_LEN + 32 {
            return None;
        }
        let mut word_enc = [0u8; WORD_ENC_LEN];
        word_enc.copy_from_slice(&bytes[..WORD_ENC_LEN]);
        let mut match_key = [0u8; 32];
        match_key.copy_from_slice(&bytes[WORD_ENC_LEN..]);
        Some(Trapdoor {
            word_enc,
            match_key,
        })
    }
}

/// Client-side state for an SWP-searchable column.
#[derive(Clone)]
pub struct SwpClient {
    k_word: [u8; 32],
    k_derive: [u8; 32],
    k_stream: [u8; 32],
}

impl SwpClient {
    /// Creates a client from a master key.
    pub fn new(master: &Key) -> Self {
        SwpClient {
            k_word: kdf::derive_key(&master.0, b"swp-word"),
            k_derive: kdf::derive_key(&master.0, b"swp-derive"),
            k_stream: kdf::derive_key(&master.0, b"swp-stream"),
        }
    }

    fn word_encoding(&self, word: &str) -> [u8; WORD_ENC_LEN] {
        hmac_parts(&self.k_word, &[word.as_bytes()])
    }

    fn match_key_for(&self, word_enc: &[u8; WORD_ENC_LEN]) -> [u8; 32] {
        hmac_parts(&self.k_derive, &[&word_enc[..16]])
    }

    /// Encrypts the word at `(doc_id, position)`.
    pub fn encrypt_word(&self, doc_id: u64, position: u32, word: &str) -> WordCiphertext {
        let x = self.word_encoding(word);
        let k_x = self.match_key_for(&x);
        // Per-position pseudorandomness S (16 bytes).
        let s_full = hmac_parts(
            &self.k_stream,
            &[&doc_id.to_le_bytes(), &position.to_le_bytes()],
        );
        let s = &s_full[..16];
        let t_full = hmac_parts(&k_x, &[s]);
        let t = &t_full[..16];

        let mut c = [0u8; CIPHERTEXT_LEN];
        c[..16].copy_from_slice(s);
        c[16..].copy_from_slice(t);
        for (i, b) in c.iter_mut().enumerate() {
            *b ^= x[i];
        }
        WordCiphertext(c)
    }

    /// Produces the search trapdoor for `word`.
    pub fn trapdoor(&self, word: &str) -> Trapdoor {
        let word_enc = self.word_encoding(word);
        let match_key = self.match_key_for(&word_enc);
        Trapdoor {
            word_enc,
            match_key,
        }
    }
}

/// Server-side matching: returns whether `ciphertext` holds the trapdoor's
/// word. Requires no keys beyond the trapdoor itself.
pub fn server_match(trapdoor: &Trapdoor, ciphertext: &WordCiphertext) -> bool {
    let mut unmasked = ciphertext.0;
    for (i, b) in unmasked.iter_mut().enumerate() {
        *b ^= trapdoor.word_enc[i];
    }
    let (s, t) = unmasked.split_at(16);
    let expect = hmac_parts(&trapdoor.match_key, &[s]);
    ct_eq(&expect[..16], t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client() -> SwpClient {
        SwpClient::new(&Key([0x77; 32]))
    }

    #[test]
    fn completeness() {
        let c = client();
        let td = c.trapdoor("energy");
        for doc in 0..20u64 {
            let ct = c.encrypt_word(doc, 3, "energy");
            assert!(server_match(&td, &ct), "doc {doc}");
        }
    }

    #[test]
    fn soundness() {
        let c = client();
        let td = c.trapdoor("energy");
        for (i, w) in ["enron", "power", "meeting", "Energy", "energ", "energyy"]
            .iter()
            .enumerate()
        {
            let ct = c.encrypt_word(i as u64, 0, w);
            assert!(!server_match(&td, &ct), "false match on {w}");
        }
    }

    #[test]
    fn ciphertexts_hide_equality() {
        // Same word at different positions yields different ciphertexts:
        // without a trapdoor, the server cannot even see repeats.
        let c = client();
        let a = c.encrypt_word(1, 0, "secret");
        let b = c.encrypt_word(1, 1, "secret");
        let d = c.encrypt_word(2, 0, "secret");
        assert_ne!(a, b);
        assert_ne!(a, d);
    }

    #[test]
    fn trapdoor_round_trips_through_bytes() {
        let c = client();
        let td = c.trapdoor("pipeline");
        let parsed = Trapdoor::from_bytes(&td.to_bytes()).unwrap();
        assert_eq!(parsed, td);
        let ct = c.encrypt_word(9, 9, "pipeline");
        assert!(server_match(&parsed, &ct));
        assert!(Trapdoor::from_bytes(&[0u8; 5]).is_none());
    }

    #[test]
    fn carved_trapdoor_reveals_access_pattern() {
        // The §6 scenario in miniature: an attacker who finds a trapdoor in
        // a snapshot can compute the word's result count.
        let c = client();
        let docs: Vec<Vec<&str>> = vec![
            vec!["price", "gas"],
            vec!["price", "energy"],
            vec!["meeting"],
            vec!["price"],
        ];
        let mut index = Vec::new();
        for (doc_id, words) in docs.iter().enumerate() {
            for (pos, w) in words.iter().enumerate() {
                index.push((doc_id as u64, c.encrypt_word(doc_id as u64, pos as u32, w)));
            }
        }
        let td = c.trapdoor("price");
        let matching_docs: std::collections::BTreeSet<u64> = index
            .iter()
            .filter(|(_, ct)| server_match(&td, ct))
            .map(|(d, _)| *d)
            .collect();
        assert_eq!(matching_docs.into_iter().collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn debug_formats_are_redacted() {
        let td = client().trapdoor("w");
        let s = format!("{td:?}");
        assert!(s.len() < 32, "debug output should be a fingerprint: {s}");
    }
}
