//! An Arx-style encrypted treap range index (Poddar et al., Arx).
//!
//! Arx-RANGE evaluates range queries over *semantically secure* ciphertexts
//! by walking an index tree whose per-node comparison gadgets (garbled
//! circuits in Arx) can be used **once**: after a traversal touches a node,
//! the node is *consumed* and the client must *repair* it by uploading a
//! fresh encryption, which the server writes back to storage.
//!
//! This module reproduces exactly that interaction pattern with a treap
//! (randomized BST): node values are RND-encrypted, a range query visits
//! the standard BST search paths, every visited node is marked consumed,
//! and [`EncTreap::drain_repairs`] yields the re-encryption writes the
//! client must issue.
//!
//! **Leakage profile:** the stored index alone is semantically secure — this
//! is Arx's snapshot-security claim. But each repair is a *write*, and
//! writes land in the DBMS transaction logs. A snapshot of persistent state
//! therefore contains one logged write per visited node per range query:
//! a full traversal transcript (§6 "Arx"), from which visit frequencies and
//! query rank leak.

use rand::Rng;

use crate::rnd;
use crate::CryptoError;
use crate::Key;

/// Identifier of a treap node (stable across repairs).
pub type NodeId = u32;

/// A node as the *server* sees it: structure plus an opaque ciphertext.
#[derive(Clone, Debug)]
pub struct ServerNode {
    /// Node identifier.
    pub id: NodeId,
    /// RND encryption of the node's value; changes on every repair.
    pub ciphertext: Vec<u8>,
    /// Left child.
    pub left: Option<NodeId>,
    /// Right child.
    pub right: Option<NodeId>,
    /// Whether the node's comparison gadget has been consumed since the
    /// last repair.
    pub consumed: bool,
}

struct Node {
    value: u64,
    priority: u64,
    ciphertext: Vec<u8>,
    left: Option<NodeId>,
    right: Option<NodeId>,
    consumed: bool,
}

/// A pending repair write: the fresh ciphertext for a consumed node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Repair {
    /// Node being repaired.
    pub node: NodeId,
    /// Replacement ciphertext.
    pub new_ciphertext: Vec<u8>,
}

/// Outcome of a range query.
#[derive(Clone, Debug)]
pub struct RangeResult {
    /// Ids of nodes whose values fall in the queried range, in key order.
    pub matches: Vec<NodeId>,
    /// Every node the traversal touched (the consumed set), in visit order.
    pub visited: Vec<NodeId>,
}

/// The encrypted treap, modelling both the client (which holds the key and
/// plaintext ordering) and the server-resident encrypted structure.
pub struct EncTreap {
    key: Key,
    nodes: Vec<Node>,
    root: Option<NodeId>,
    pending_repairs: Vec<Repair>,
}

impl EncTreap {
    /// Creates an empty index under `key`.
    pub fn new(key: Key) -> Self {
        EncTreap {
            key,
            nodes: Vec::new(),
            root: None,
            pending_repairs: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Inserts `value`, returning the new node's id.
    pub fn insert<R: Rng + ?Sized>(&mut self, value: u64, rng: &mut R) -> NodeId {
        let id = self.nodes.len() as NodeId;
        let ciphertext = rnd::encrypt(&self.key, &value.to_le_bytes(), rng);
        self.nodes.push(Node {
            value,
            priority: rng.gen(),
            ciphertext,
            left: None,
            right: None,
            consumed: false,
        });
        self.root = Some(self.insert_at(self.root, id));
        id
    }

    fn insert_at(&mut self, root: Option<NodeId>, id: NodeId) -> NodeId {
        let Some(r) = root else { return id };
        if self.nodes[id as usize].value < self.nodes[r as usize].value {
            let new_left = self.insert_at(self.nodes[r as usize].left, id);
            self.nodes[r as usize].left = Some(new_left);
            if self.nodes[new_left as usize].priority > self.nodes[r as usize].priority {
                return self.rotate_right(r);
            }
        } else {
            let new_right = self.insert_at(self.nodes[r as usize].right, id);
            self.nodes[r as usize].right = Some(new_right);
            if self.nodes[new_right as usize].priority > self.nodes[r as usize].priority {
                return self.rotate_left(r);
            }
        }
        r
    }

    fn rotate_right(&mut self, r: NodeId) -> NodeId {
        let l = self.nodes[r as usize]
            .left
            .expect("rotate_right needs left child");
        self.nodes[r as usize].left = self.nodes[l as usize].right;
        self.nodes[l as usize].right = Some(r);
        l
    }

    fn rotate_left(&mut self, r: NodeId) -> NodeId {
        let l = self.nodes[r as usize]
            .right
            .expect("rotate_left needs right child");
        self.nodes[r as usize].right = self.nodes[l as usize].left;
        self.nodes[l as usize].left = Some(r);
        l
    }

    /// Runs the range query `lo..=hi`.
    ///
    /// Every node whose comparison gadget the traversal uses becomes
    /// consumed and is queued for repair; call [`Self::drain_repairs`] (and
    /// apply the writes to storage) afterwards, as the Arx client must.
    ///
    /// Returns an error if the traversal reaches a node that is still
    /// consumed — using a one-time gadget twice is a protocol violation.
    pub fn range<R: Rng + ?Sized>(
        &mut self,
        lo: u64,
        hi: u64,
        rng: &mut R,
    ) -> Result<RangeResult, CryptoError> {
        let mut result = RangeResult {
            matches: Vec::new(),
            visited: Vec::new(),
        };
        self.range_walk(self.root, lo, hi, &mut result)?;
        // Queue repairs for everything we consumed (fresh randomness).
        for &id in &result.visited {
            let value = self.nodes[id as usize].value;
            let new_ct = rnd::encrypt(&self.key, &value.to_le_bytes(), rng);
            self.nodes[id as usize].ciphertext = new_ct.clone();
            self.pending_repairs.push(Repair {
                node: id,
                new_ciphertext: new_ct,
            });
        }
        Ok(result)
    }

    fn range_walk(
        &mut self,
        node: Option<NodeId>,
        lo: u64,
        hi: u64,
        out: &mut RangeResult,
    ) -> Result<(), CryptoError> {
        let Some(id) = node else { return Ok(()) };
        let n = &mut self.nodes[id as usize];
        if n.consumed {
            return Err(CryptoError::InvalidState(
                "treap node gadget already consumed; repair required",
            ));
        }
        n.consumed = true;
        out.visited.push(id);
        let value = n.value;
        let (left, right) = (n.left, n.right);
        // Rotations during insert can leave duplicates of `value` in either
        // subtree, so both boundary comparisons must be non-strict.
        if lo <= value {
            self.range_walk(left, lo, hi, out)?;
        }
        if lo <= value && value <= hi {
            out.matches.push(id);
        }
        if hi >= value {
            self.range_walk(right, lo, hi, out)?;
        }
        Ok(())
    }

    /// Takes the queued repair writes and clears the consumed flags, i.e.
    /// performs the client's repair round.
    pub fn drain_repairs(&mut self) -> Vec<Repair> {
        for r in &self.pending_repairs {
            self.nodes[r.node as usize].consumed = false;
        }
        std::mem::take(&mut self.pending_repairs)
    }

    /// Decrypts a node's current ciphertext (client-side).
    pub fn decrypt_node(&self, id: NodeId) -> Result<u64, CryptoError> {
        let n = self
            .nodes
            .get(id as usize)
            .ok_or(CryptoError::Malformed("unknown node id"))?;
        let plain = rnd::decrypt(&self.key, &n.ciphertext)?;
        let bytes: [u8; 8] = plain
            .as_slice()
            .try_into()
            .map_err(|_| CryptoError::Malformed("node plaintext width"))?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// The server's view of the structure (ids, ciphertexts, links) — what
    /// a snapshot of the index itself reveals.
    pub fn server_view(&self) -> Vec<ServerNode> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| ServerNode {
                id: i as NodeId,
                ciphertext: n.ciphertext.clone(),
                left: n.left,
                right: n.right,
                consumed: n.consumed,
            })
            .collect()
    }

    /// In-order node ids (the total order the structure reveals *if* the
    /// attacker can reconstruct traversals — see the paper's rank-leakage
    /// argument).
    pub fn inorder_ids(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.inorder_walk(self.root, &mut out);
        out
    }

    fn inorder_walk(&self, node: Option<NodeId>, out: &mut Vec<NodeId>) {
        if let Some(id) = node {
            self.inorder_walk(self.nodes[id as usize].left, out);
            out.push(id);
            self.inorder_walk(self.nodes[id as usize].right, out);
        }
    }

    /// Plaintext value of a node — test/oracle accessor for the attack
    /// evaluation harness (ground truth), not part of the protocol.
    pub fn oracle_value(&self, id: NodeId) -> u64 {
        self.nodes[id as usize].value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(values: &[u64], seed: u64) -> (EncTreap, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = EncTreap::new(Key([0x61; 32]));
        for &v in values {
            t.insert(v, &mut rng);
        }
        (t, rng)
    }

    #[test]
    fn inorder_is_sorted() {
        let values = [50u64, 20, 80, 10, 30, 70, 90, 25, 60];
        let (t, _) = build(&values, 1);
        let inorder: Vec<u64> = t
            .inorder_ids()
            .iter()
            .map(|&id| t.oracle_value(id))
            .collect();
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        assert_eq!(inorder, sorted);
    }

    #[test]
    fn range_query_finds_exactly_the_range() {
        let values: Vec<u64> = (0..100).map(|i| i * 7 % 101).collect();
        let (mut t, mut rng) = build(&values, 2);
        let res = t.range(20, 40, &mut rng).unwrap();
        let mut got: Vec<u64> = res.matches.iter().map(|&id| t.oracle_value(id)).collect();
        got.sort_unstable();
        let mut expect: Vec<u64> = values
            .iter()
            .copied()
            .filter(|&v| (20..=40).contains(&v))
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
        t.drain_repairs();
    }

    #[test]
    fn visited_superset_of_matches_and_consumption_enforced() {
        let (mut t, mut rng) = build(&[5, 3, 8, 1, 4, 7, 9], 3);
        let res = t.range(3, 5, &mut rng).unwrap();
        for m in &res.matches {
            assert!(res.visited.contains(m));
        }
        // Without repair, overlapping traversal fails.
        assert!(matches!(
            t.range(3, 5, &mut rng),
            Err(CryptoError::InvalidState(_))
        ));
        // After repair, it succeeds again.
        let repairs = t.drain_repairs();
        assert_eq!(repairs.len(), res.visited.len());
        assert!(t.range(3, 5, &mut rng).is_ok());
    }

    #[test]
    fn repairs_reencrypt_with_fresh_randomness() {
        let (mut t, mut rng) = build(&[10, 20, 30], 4);
        let before: Vec<Vec<u8>> = t
            .server_view()
            .iter()
            .map(|n| n.ciphertext.clone())
            .collect();
        let res = t.range(0, 100, &mut rng).unwrap();
        let repairs = t.drain_repairs();
        assert_eq!(repairs.len(), res.visited.len());
        for r in &repairs {
            assert_ne!(
                r.new_ciphertext, before[r.node as usize],
                "repair must change the ciphertext"
            );
            // But it still decrypts to the same value.
            assert_eq!(t.decrypt_node(r.node).unwrap(), t.oracle_value(r.node));
        }
    }

    #[test]
    fn reads_are_writes_the_core_arx_leak() {
        // The property §6 exploits: every range query produces exactly
        // |visited| repair writes — a 1:1 read/write correlation.
        let (mut t, mut rng) = build(&(0..64).collect::<Vec<u64>>(), 5);
        for (lo, hi) in [(0u64, 3u64), (10, 20), (60, 63)] {
            let res = t.range(lo, hi, &mut rng).unwrap();
            let repairs = t.drain_repairs();
            assert_eq!(
                repairs.iter().map(|r| r.node).collect::<Vec<_>>(),
                res.visited,
                "repair writes mirror the traversal exactly"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut t = EncTreap::new(Key([0; 32]));
        assert!(t.is_empty());
        let res = t.range(0, 10, &mut rng).unwrap();
        assert!(res.matches.is_empty() && res.visited.is_empty());
        t.insert(5, &mut rng);
        let res = t.range(0, 10, &mut rng).unwrap();
        assert_eq!(res.matches.len(), 1);
        t.drain_repairs();
        let res = t.range(6, 10, &mut rng).unwrap();
        assert!(res.matches.is_empty());
        assert_eq!(res.visited.len(), 1, "root still inspected");
    }

    #[test]
    fn duplicate_values_all_reported() {
        let (mut t, mut rng) = build(&[5, 5, 5, 2, 8], 7);
        let res = t.range(5, 5, &mut rng).unwrap();
        assert_eq!(res.matches.len(), 3);
        t.drain_repairs();
    }

    #[test]
    fn server_view_is_ciphertext_only() {
        let (t, _) = build(&[1, 2, 3], 8);
        for n in t.server_view() {
            // 8-byte plaintext + RND overhead.
            assert_eq!(n.ciphertext.len(), 8 + rnd::OVERHEAD);
            assert!(!n.consumed);
        }
    }
}
