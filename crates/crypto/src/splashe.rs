//! Seabed's SPLASHE: splitting a sensitive categorical column into one
//! ASHE column per plaintext value to defeat frequency analysis.
//!
//! For a column with domain `{v₀ … v_{D−1}}`, SPLASHE stores row `r` as `D`
//! ASHE ciphertexts: `c_j = ASHE(1)` if the row's value is `v_j`, else
//! `ASHE(0)`. A query `SELECT count(*) WHERE a = v_j` is rewritten to
//! `SELECT ashe(c_j)` — the server sums one column and learns nothing
//! from the data. **Enhanced SPLASHE** saves space by giving dedicated
//! columns only to *frequent* values and storing the infrequent tail in a
//! single DET column, padded with dummy rows so tail counts look uniform.
//!
//! **Leakage profile (the paper's §6 point):** the *data* leaks nothing,
//! but the rewritten query names the column `c_j` in plaintext SQL. A
//! DBMS's digest table (`events_statements_summary_by_digest`) counts
//! queries per canonical form, and distinct columns canonicalize to
//! *distinct* forms — so a snapshot of the DBMS hands the attacker an exact
//! per-value query histogram, ready for frequency analysis. With enhanced
//! SPLASHE the DET tail additionally lets the attacker tie recovered
//! values back to individual rows.

use crate::ashe::{AsheCiphertext, AsheKey};
use crate::det;
use crate::CryptoError;
use crate::Key;

/// Configuration of a SPLASHE-protected column.
#[derive(Clone, Debug)]
pub struct SplasheConfig {
    /// Size of the plaintext domain; plaintexts are `0..domain_size`.
    pub domain_size: u32,
    /// Values that receive a dedicated ASHE column. In basic SPLASHE this
    /// is the whole domain; enhanced SPLASHE lists only frequent values.
    pub dedicated: Vec<u32>,
}

impl SplasheConfig {
    /// Basic SPLASHE: every domain value gets a dedicated column.
    pub fn basic(domain_size: u32) -> Self {
        SplasheConfig {
            domain_size,
            dedicated: (0..domain_size).collect(),
        }
    }

    /// Enhanced SPLASHE: only `frequent` values get dedicated columns; the
    /// rest share a padded DET column.
    pub fn enhanced(domain_size: u32, frequent: Vec<u32>) -> Result<Self, CryptoError> {
        if frequent.iter().any(|&v| v >= domain_size) {
            return Err(CryptoError::DomainViolation(
                "frequent value outside domain",
            ));
        }
        Ok(SplasheConfig {
            domain_size,
            dedicated: frequent,
        })
    }

    /// Whether `value` has a dedicated column.
    pub fn is_dedicated(&self, value: u32) -> bool {
        self.dedicated.contains(&value)
    }
}

/// An encrypted SPLASHE cell: the per-row ciphertexts replacing one
/// plaintext categorical value.
#[derive(Clone, Debug)]
pub struct SplasheCell {
    /// One ASHE ciphertext per dedicated value, in `config.dedicated` order.
    pub ashe_cells: Vec<AsheCiphertext>,
    /// DET encryption of the value when it is not dedicated (enhanced mode
    /// tail); `None` for dedicated values.
    pub det_tail: Option<Vec<u8>>,
}

/// Client-side encoder/decoder for a SPLASHE column.
pub struct SplasheColumn {
    config: SplasheConfig,
    ashe_keys: Vec<AsheKey>,
    det_key: Key,
}

impl SplasheColumn {
    /// Creates the column state from a master key.
    pub fn new(master: &Key, column_label: &str, config: SplasheConfig) -> Self {
        let ashe_keys = config
            .dedicated
            .iter()
            .map(|v| AsheKey::new(master, &format!("{column_label}:splashe:{v}")))
            .collect();
        SplasheColumn {
            config,
            ashe_keys,
            det_key: Key::derive(master, &format!("{column_label}:splashe-det")),
        }
    }

    /// Column configuration.
    pub fn config(&self) -> &SplasheConfig {
        &self.config
    }

    /// Encodes one row's value into its SPLASHE cell.
    pub fn encode(&self, row_id: u64, value: u32) -> Result<SplasheCell, CryptoError> {
        if value >= self.config.domain_size {
            return Err(CryptoError::DomainViolation("value outside domain"));
        }
        let ashe_cells = self
            .config
            .dedicated
            .iter()
            .zip(self.ashe_keys.iter())
            .map(|(&v, k)| k.encrypt(row_id, u64::from(v == value)))
            .collect();
        let det_tail = if self.config.is_dedicated(value) {
            None
        } else {
            Some(det::encrypt(&self.det_key, &value.to_le_bytes()))
        };
        Ok(SplasheCell {
            ashe_cells,
            det_tail,
        })
    }

    /// Decrypts the count returned by the server for dedicated value `v`.
    ///
    /// `sum_body` is the server-side wrapping sum over the rows in `ids` of
    /// the ASHE column dedicated to `v`.
    pub fn decrypt_count(
        &self,
        v: u32,
        ids: impl IntoIterator<Item = u64>,
        sum_body: u64,
    ) -> Result<u64, CryptoError> {
        let idx = self.config.dedicated.iter().position(|&d| d == v).ok_or(
            CryptoError::DomainViolation("value has no dedicated column"),
        )?;
        Ok(self.ashe_keys[idx].decrypt_sum(ids, sum_body))
    }

    /// Decrypts a DET tail cell back to its value.
    pub fn decrypt_tail(&self, ct: &[u8]) -> Result<u32, CryptoError> {
        let plain = det::decrypt(&self.det_key, ct)?;
        let bytes: [u8; 4] = plain
            .as_slice()
            .try_into()
            .map_err(|_| CryptoError::Malformed("tail plaintext width"))?;
        Ok(u32::from_le_bytes(bytes))
    }

    /// The DET ciphertext a dummy padding row stores for tail value `v`
    /// (enhanced SPLASHE pads infrequent values to a uniform count).
    pub fn tail_padding_cell(&self, v: u32) -> Vec<u8> {
        det::encrypt(&self.det_key, &v.to_le_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ashe::aggregate;

    fn master() -> Key {
        Key([0x55; 32])
    }

    #[test]
    fn basic_counts_round_trip() {
        let col = SplasheColumn::new(&master(), "state", SplasheConfig::basic(4));
        // Rows with values: two 0s, one 1, three 3s.
        let values = [0u32, 0, 1, 3, 3, 3];
        let cells: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(id, &v)| col.encode(id as u64, v).unwrap())
            .collect();
        for (v, expect) in [(0u32, 2u64), (1, 1), (2, 0), (3, 3)] {
            let idx = v as usize;
            let sum = aggregate(cells.iter().map(|c| &c.ashe_cells[idx]));
            let ids = 0..values.len() as u64;
            assert_eq!(col.decrypt_count(v, ids, sum).unwrap(), expect, "value {v}");
        }
    }

    #[test]
    fn basic_has_no_det_tail() {
        let col = SplasheColumn::new(&master(), "c", SplasheConfig::basic(3));
        for v in 0..3 {
            assert!(col.encode(0, v).unwrap().det_tail.is_none());
        }
    }

    #[test]
    fn enhanced_tail_is_det() {
        let cfg = SplasheConfig::enhanced(10, vec![0, 1]).unwrap();
        let col = SplasheColumn::new(&master(), "c", cfg);
        let a = col.encode(0, 7).unwrap();
        let b = col.encode(1, 7).unwrap();
        let c = col.encode(2, 8).unwrap();
        // DET: equal tail values share a ciphertext, distinct ones differ.
        assert_eq!(a.det_tail, b.det_tail);
        assert_ne!(a.det_tail, c.det_tail);
        assert_eq!(col.decrypt_tail(a.det_tail.as_ref().unwrap()).unwrap(), 7);
        // Dedicated values produce no tail cell.
        assert!(col.encode(3, 1).unwrap().det_tail.is_none());
        // Dedicated ASHE cells still count correctly in enhanced mode.
        assert_eq!(a.ashe_cells.len(), 2);
    }

    #[test]
    fn enhanced_rejects_out_of_domain_frequent_set() {
        assert!(SplasheConfig::enhanced(4, vec![4]).is_err());
    }

    #[test]
    fn encode_rejects_out_of_domain_value() {
        let col = SplasheColumn::new(&master(), "c", SplasheConfig::basic(4));
        assert!(col.encode(0, 4).is_err());
    }

    #[test]
    fn padding_cells_merge_with_real_tail_histogram() {
        let cfg = SplasheConfig::enhanced(5, vec![0]).unwrap();
        let col = SplasheColumn::new(&master(), "c", cfg);
        let real = col.encode(0, 3).unwrap().det_tail.unwrap();
        let pad = col.tail_padding_cell(3);
        // Padding is indistinguishable from a real cell for the same value.
        assert_eq!(real, pad);
    }
}
