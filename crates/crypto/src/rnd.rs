//! Randomized (semantically secure) authenticated encryption:
//! ChaCha20 + HMAC-SHA-256 in encrypt-then-MAC composition.
//!
//! This is the "RND onion layer" of CryptDB-style designs and the cell
//! encryption of Arx. **Leakage profile:** ciphertext length only. That is
//! exactly why the paper's §6 argument matters — the scheme itself leaks
//! nothing, and yet the *system around it* (logs, heap, diagnostic tables)
//! leaks the queries.

use rand::Rng;

use crate::chacha20;
use crate::hmac::{ct_eq, hmac_parts};
use crate::kdf;
use crate::CryptoError;
use crate::Key;

/// Length of the MAC tag appended to ciphertexts.
pub const TAG_LEN: usize = 16;

/// Layout: `nonce (12) || body (len) || tag (16)`.
pub const OVERHEAD: usize = chacha20::NONCE_LEN + TAG_LEN;

/// Encrypts `plaintext` with a fresh random nonce drawn from `rng`.
pub fn encrypt<R: Rng + ?Sized>(key: &Key, plaintext: &[u8], rng: &mut R) -> Vec<u8> {
    let mut nonce = [0u8; chacha20::NONCE_LEN];
    rng.fill(&mut nonce);
    encrypt_with_nonce(key, plaintext, &nonce)
}

/// Encrypts with an explicit nonce (used by DET, which derives the nonce).
pub fn encrypt_with_nonce(
    key: &Key,
    plaintext: &[u8],
    nonce: &[u8; chacha20::NONCE_LEN],
) -> Vec<u8> {
    let enc_key = kdf::derive_key(&key.0, b"rnd-enc");
    let mac_key = kdf::derive_key(&key.0, b"rnd-mac");

    let mut out = Vec::with_capacity(plaintext.len() + OVERHEAD);
    out.extend_from_slice(nonce);
    let body_start = out.len();
    out.extend_from_slice(plaintext);
    chacha20::xor_stream(&enc_key, nonce, 1, &mut out[body_start..]);

    let tag = hmac_parts(&mac_key, &[nonce, &out[body_start..]]);
    out.extend_from_slice(&tag[..TAG_LEN]);
    out
}

/// Decrypts and authenticates a ciphertext produced by [`encrypt`].
pub fn decrypt(key: &Key, ciphertext: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if ciphertext.len() < OVERHEAD {
        return Err(CryptoError::Malformed("ciphertext shorter than overhead"));
    }
    let enc_key = kdf::derive_key(&key.0, b"rnd-enc");
    let mac_key = kdf::derive_key(&key.0, b"rnd-mac");

    let (nonce_bytes, rest) = ciphertext.split_at(chacha20::NONCE_LEN);
    let (body, tag) = rest.split_at(rest.len() - TAG_LEN);
    let mut nonce = [0u8; chacha20::NONCE_LEN];
    nonce.copy_from_slice(nonce_bytes);

    let expect = hmac_parts(&mac_key, &[&nonce, body]);
    if !ct_eq(&expect[..TAG_LEN], tag) {
        return Err(CryptoError::AuthenticationFailed);
    }

    let mut plain = body.to_vec();
    chacha20::xor_stream(&enc_key, &nonce, 1, &mut plain);
    Ok(plain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> Key {
        Key([0x42; 32])
    }

    #[test]
    fn round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in [0usize, 1, 15, 16, 63, 64, 65, 1000] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = encrypt(&key(), &pt, &mut rng);
            assert_eq!(ct.len(), len + OVERHEAD);
            assert_eq!(decrypt(&key(), &ct).unwrap(), pt);
        }
    }

    #[test]
    fn randomized_ciphertexts_differ() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = encrypt(&key(), b"same plaintext", &mut rng);
        let b = encrypt(&key(), b"same plaintext", &mut rng);
        assert_ne!(a, b, "RND encryption must not be deterministic");
    }

    #[test]
    fn tamper_detected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ct = encrypt(&key(), b"sensitive", &mut rng);
        for i in 0..ct.len() {
            ct[i] ^= 1;
            assert_eq!(decrypt(&key(), &ct), Err(CryptoError::AuthenticationFailed));
            ct[i] ^= 1;
        }
        assert!(decrypt(&key(), &ct).is_ok());
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let ct = encrypt(&key(), b"data", &mut rng);
        assert_eq!(
            decrypt(&Key([0x43; 32]), &ct),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn truncated_rejected() {
        assert!(matches!(
            decrypt(&key(), &[0u8; OVERHEAD - 1]),
            Err(CryptoError::Malformed(_))
        ));
    }
}
