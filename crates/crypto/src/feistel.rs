//! A small-domain pseudorandom permutation built from an unbalanced Feistel
//! network over HMAC-SHA-256 round functions.
//!
//! The ORE scheme needs a PRP over tiny domains (block values of a few
//! bits), and the SPLASHE layer uses one to shuffle column order. Cycle
//! walking restricts an even-bit-width Feistel permutation to an arbitrary
//! domain size `n`.

use crate::hmac::Prf;

/// A PRP over the domain `0..n`.
///
/// # Examples
///
/// ```
/// use edb_crypto::feistel::SmallPrp;
///
/// let prp = SmallPrp::new(&[0u8; 32], 10);
/// let mut seen = vec![false; 10];
/// for x in 0..10 {
///     let y = prp.permute(x);
///     assert!(y < 10 && !seen[y as usize]);
///     seen[y as usize] = true;
///     assert_eq!(prp.invert(y), x);
/// }
/// ```
#[derive(Clone)]
pub struct SmallPrp {
    prf: Prf,
    n: u64,
    /// Half-width in bits of the Feistel construction's native domain.
    half_bits: u32,
}

const ROUNDS: usize = 7;

impl SmallPrp {
    /// Creates a PRP over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 2^62`.
    pub fn new(key: &[u8], n: u64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(n <= 1 << 62, "domain too large for cycle walking");
        // Native Feistel domain: smallest even-width power of two ≥ n.
        let bits = 64 - (n - 1).max(1).leading_zeros();
        let half_bits = bits.div_ceil(2).max(1);
        SmallPrp {
            prf: Prf::new(key),
            n,
            half_bits,
        }
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    fn round(&self, r: usize, half: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        self.prf
            .eval_u64(&[b"feistel", &[r as u8], &half.to_le_bytes()])
            & mask
    }

    fn feistel_forward(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = (x >> self.half_bits) & mask;
        let mut right = x & mask;
        for r in 0..ROUNDS {
            let new_left = right;
            let new_right = left ^ self.round(r, right);
            left = new_left;
            right = new_right;
        }
        (left << self.half_bits) | right
    }

    fn feistel_backward(&self, y: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = (y >> self.half_bits) & mask;
        let mut right = y & mask;
        for r in (0..ROUNDS).rev() {
            let old_right = left;
            let old_left = right ^ self.round(r, old_right);
            left = old_left;
            right = old_right;
        }
        (left << self.half_bits) | right
    }

    /// Maps `x` to its image under the permutation.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn permute(&self, x: u64) -> u64 {
        assert!(x < self.n, "input outside PRP domain");
        // Cycle walking: iterate the native permutation until we land back
        // inside `0..n`. Expected iterations < 4 because the native domain
        // is at most 4x larger than n.
        let mut y = self.feistel_forward(x);
        while y >= self.n {
            y = self.feistel_forward(y);
        }
        y
    }

    /// Inverts the permutation.
    ///
    /// # Panics
    ///
    /// Panics if `y >= n`.
    pub fn invert(&self, y: u64) -> u64 {
        assert!(y < self.n, "input outside PRP domain");
        let mut x = self.feistel_backward(y);
        while x >= self.n {
            x = self.feistel_backward(x);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_is_permutation(key: &[u8], n: u64) {
        let prp = SmallPrp::new(key, n);
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = prp.permute(x);
            assert!(y < n, "image {y} outside domain {n}");
            assert!(!seen[y as usize], "collision at {y} (n={n})");
            seen[y as usize] = true;
            assert_eq!(prp.invert(y), x, "inverse failed (n={n}, x={x})");
        }
    }

    #[test]
    fn bijective_on_assorted_domains() {
        for n in [1u64, 2, 3, 4, 5, 7, 8, 15, 16, 17, 100, 256, 1000] {
            assert_is_permutation(&[0xA5; 32], n);
        }
    }

    #[test]
    fn different_keys_give_different_permutations() {
        let a = SmallPrp::new(&[1u8; 32], 64);
        let b = SmallPrp::new(&[2u8; 32], 64);
        let same = (0..64).all(|x| a.permute(x) == b.permute(x));
        assert!(!same);
    }

    #[test]
    fn not_identity_on_moderate_domain() {
        let prp = SmallPrp::new(&[9u8; 32], 128);
        let fixed = (0..128).filter(|&x| prp.permute(x) == x).count();
        // A random permutation of 128 elements has ~1 fixed point; 20 would
        // indicate a broken construction.
        assert!(fixed < 20, "{fixed} fixed points");
    }
}
