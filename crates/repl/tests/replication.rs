//! End-to-end replication scenarios: the full primary → replica pipeline
//! over both transports, relay-log persistence across primary-side binlog
//! purges, and idempotent resume after disconnects and restarts.

use std::sync::atomic::Ordering;
use std::time::Duration;

use mdb_repl::replica::Replica;
#[cfg(feature = "tcp")]
use mdb_repl::router::{ReadTarget, TransportKind};
use mdb_repl::router::{ReplicaSet, ReplicaSetConfig};
use mdb_repl::transport::{duplex, Transport};
use mdb_repl::{PrimaryServer, ReplError};
use minidb::wal::{carve_frames, BinlogEvent};
use minidb::{Db, DbConfig};

fn wait_until(mut cond: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

/// The core leakage claim: purge the PRIMARY's binlog, and every shipped
/// statement still sits in each replica's relay log, carvable with the
/// same frame scan as the binlog itself.
#[test]
fn relay_log_survives_primary_binlog_purge() {
    let mut set = ReplicaSet::start(ReplicaSetConfig::default()).unwrap();
    set.write("CREATE TABLE patients (id INT PRIMARY KEY, diagnosis TEXT)")
        .unwrap();
    for i in 0..8 {
        set.write(&format!("INSERT INTO patients VALUES ({i}, 'dx{i}')"))
            .unwrap();
    }
    assert!(set.wait_for_sync(Duration::from_secs(5)));

    // Hygiene on the primary: PURGE BINARY LOGS.
    set.primary().purge_binlog();
    let primary_disk = set.primary().system_image().disk;
    let binlog = primary_disk
        .files
        .iter()
        .find(|(name, _)| name.contains("binlog"))
        .map(|(_, data)| data.clone())
        .unwrap_or_default();
    assert!(
        carve_frames(&binlog)
            .iter()
            .filter_map(|(_, p)| BinlogEvent::decode(p).ok())
            .count()
            == 0,
        "purged primary binlog should carve empty"
    );

    // Each replica's relay log still holds the full statement history.
    for i in 0..set.replica_count() {
        let image = set.replica(i).system_image();
        let (_, relay) = image
            .disk
            .files
            .iter()
            .find(|(name, _)| name.starts_with("relay-bin.0"))
            .expect("replica disk image contains the relay log");
        let stmts: Vec<BinlogEvent> = carve_frames(relay)
            .iter()
            .filter_map(|(_, p)| BinlogEvent::decode(p).ok())
            .collect();
        assert_eq!(stmts.len(), 9, "replica {i} relays every statement");
        assert!(stmts.iter().any(|e| e.statement.contains("dx7")));
        assert!(stmts.iter().all(|e| e.timestamp > 0));
    }
    set.shutdown();
}

/// A replica restarted from its own disk resumes at the right position
/// and does not re-apply (or re-relay) events it already has.
#[test]
fn restarted_replica_resumes_without_duplicates() {
    let primary = Db::open(DbConfig::default());
    let server = PrimaryServer::new(primary.clone());
    let replica_db = Db::open(DbConfig {
        server_id: 2,
        read_only: true,
        ..DbConfig::default()
    });

    let connect = |server: &PrimaryServer| {
        let (p_end, r_end) = duplex();
        server.serve(Box::new(p_end));
        r_end
    };

    // Phase 1: replicate a few writes, then stop the replica.
    let conn = primary.connect("root");
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    for i in 0..5 {
        conn.execute(&format!("INSERT INTO t VALUES ({i})"))
            .unwrap();
    }
    let mut endpoints = vec![connect(&server)];
    let mut replica = Replica::start(
        replica_db.clone(),
        Box::new(move || {
            endpoints
                .pop()
                .map(|e| Box::new(e) as Box<dyn Transport>)
                .ok_or(ReplError::Disconnected)
        }),
    );
    let shared = replica.shared();
    let target = primary.binlog_next_seq();
    assert!(wait_until(
        || shared.next_seq.load(Ordering::SeqCst) >= target,
        Duration::from_secs(5)
    ));
    replica.stop();
    let relay_len_before = replica_db
        .read_server_file("relay-bin.000001")
        .unwrap()
        .len();

    // Phase 2: more writes while the replica is down, then restart it.
    for i in 5..9 {
        conn.execute(&format!("INSERT INTO t VALUES ({i})"))
            .unwrap();
    }
    let mut endpoints = vec![connect(&server)];
    let mut replica = Replica::start(
        replica_db.clone(),
        Box::new(move || {
            endpoints
                .pop()
                .map(|e| Box::new(e) as Box<dyn Transport>)
                .ok_or(ReplError::Disconnected)
        }),
    );
    let shared = replica.shared();
    let target = primary.binlog_next_seq();
    assert!(wait_until(
        || shared.next_seq.load(Ordering::SeqCst) >= target,
        Duration::from_secs(5)
    ));

    // Exactly the 4 missed events were relayed on top — no rewind.
    let relay = replica_db.read_server_file("relay-bin.000001").unwrap();
    let events: Vec<BinlogEvent> = carve_frames(&relay)
        .iter()
        .filter_map(|(_, p)| BinlogEvent::decode(p).ok())
        .collect();
    assert_eq!(events.len() as u64, target, "one relay entry per event");
    assert!(relay.len() > relay_len_before);

    // And the table has no duplicate rows.
    let rconn = replica_db.connect("reader");
    let rows = rconn.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rows.rows[0][0].to_string(), "9");
    replica.stop();
    server.shutdown();
}

/// The same topology over loopback TCP: the stream crosses a real socket.
#[cfg(feature = "tcp")]
#[test]
fn replica_set_over_tcp() {
    let mut set = ReplicaSet::start(ReplicaSetConfig {
        replicas: 2,
        transport: TransportKind::Tcp,
        ..ReplicaSetConfig::default()
    })
    .unwrap();
    set.write("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
        .unwrap();
    for i in 0..12 {
        set.write(&format!("INSERT INTO t VALUES ({i}, 'v{i}')"))
            .unwrap();
    }
    assert!(set.wait_for_sync(Duration::from_secs(10)));
    assert!(matches!(set.route_read(), ReadTarget::Replica(_)));
    let rows = set.read("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rows.rows[0][0].to_string(), "12");

    // Lag is visible through SQL on the primary.
    let admin = set.primary().connect("admin");
    let status = admin
        .execute("SELECT replica_id, state, next_seq, lag_events FROM information_schema.replicas")
        .unwrap();
    assert_eq!(status.rows.len(), 2);
    set.shutdown();
}

/// Writes on a replica are refused; the set routes them to the primary.
#[test]
fn read_only_gate_and_write_routing() {
    let mut set = ReplicaSet::start(ReplicaSetConfig {
        replicas: 1,
        ..ReplicaSetConfig::default()
    })
    .unwrap();
    set.write("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    assert!(set.wait_for_sync(Duration::from_secs(5)));
    let direct = set.replica(0).connect("intruder");
    assert_eq!(
        direct.execute("INSERT INTO t VALUES (1)"),
        Err(minidb::DbError::ReadOnly)
    );
    // The router's write path lands on the primary and replicates out.
    set.write("INSERT INTO t VALUES (1)").unwrap();
    assert!(set.wait_for_sync(Duration::from_secs(5)));
    let rows = set.read("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rows.rows[0][0].to_string(), "1");
    set.shutdown();
}

#[test]
fn lag_histograms_populate_with_percentiles() {
    // ROADMAP item: `wait_for_sync` latency and relay-apply latency are
    // histograms on the primary/replica registries, so lag percentiles
    // (p50/p95/p99) come from telemetry instead of ad-hoc timers — and
    // surface on the status port like every other histogram.
    let mut set = ReplicaSet::start(ReplicaSetConfig::default()).unwrap();
    set.write("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
    for i in 0..20 {
        set.write(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        if i % 5 == 4 {
            assert!(set.wait_for_sync(Duration::from_secs(5)));
        }
    }
    assert!(set.wait_for_sync(Duration::from_secs(5)));

    let snap = set.primary().telemetry().snapshot();
    let wait = snap
        .histogram("repl.wait_for_sync_us")
        .expect("wait_for_sync must record a histogram");
    assert_eq!(wait.count, 5);
    // Percentile upper bounds are monotone and bracket the recorded data.
    assert!(wait.p50() <= wait.p95() && wait.p95() <= wait.p99());
    assert!(wait.p99() >= wait.p50());
    assert_eq!(wait.p99(), wait.quantile_upper_bound(0.99));

    let rsnap = set.replica(0).telemetry().snapshot();
    let apply = rsnap
        .histogram("repl.apply_latency_us")
        .expect("apply loop must record per-event latency");
    assert_eq!(apply.count, 21, "one sample per applied event");
    assert!(apply.sum > 0);
    assert!(apply.p95() >= apply.p50());
    set.shutdown();
}

/// The E14 mitigation, end to end: an `encrypted_wal` fleet ships sealed
/// binlog records over the wire and into every relay log. The replicas
/// still apply every statement (they hold the log key), but a snapshot
/// attacker carving any disk in the fleet — primary binlog or replica
/// relay — recovers zero plaintext statements.
#[test]
fn encrypted_fleet_ships_ciphertext_end_to_end() {
    let key = [0x42u8; 32];
    let mut set = ReplicaSet::start(ReplicaSetConfig {
        base: DbConfig {
            encrypted_wal: true,
            wal_key: Some(key),
            group_commit: true,
            ..DbConfig::default()
        },
        ..ReplicaSetConfig::default()
    })
    .unwrap();
    set.write("CREATE TABLE patients (id INT PRIMARY KEY, diagnosis TEXT)")
        .unwrap();
    for i in 0..6 {
        set.write(&format!(
            "INSERT INTO patients VALUES ({i}, 'hiv-status-{i}')"
        ))
        .unwrap();
    }
    assert!(set.wait_for_sync(Duration::from_secs(5)));

    // Replication worked: the rows are readable on a replica.
    let rows = set.read("SELECT COUNT(*) FROM patients").unwrap();
    assert_eq!(rows.rows[0][0].to_string(), "6");

    // Gather every log surface in the fleet: primary binlog + all relays.
    let mut surfaces: Vec<(String, Vec<u8>)> = Vec::new();
    let primary_disk = set.primary().system_image().disk;
    for (name, data) in &primary_disk.files {
        if name.contains("binlog") {
            surfaces.push((format!("primary:{name}"), data.clone()));
        }
    }
    for i in 0..set.replica_count() {
        let image = set.replica(i).system_image();
        for (name, data) in &image.disk.files {
            if name.starts_with("relay-bin.0") {
                surfaces.push((format!("replica{i}:{name}"), data.clone()));
            }
        }
    }
    assert!(surfaces.len() >= 3, "binlog + one relay per replica");

    for (label, raw) in &surfaces {
        let plaintext_events = carve_frames(raw)
            .iter()
            .filter_map(|(_, p)| BinlogEvent::decode(p).ok())
            .count();
        assert_eq!(plaintext_events, 0, "{label} carved plaintext events");
        assert!(
            !raw.windows(10).any(|w| w == b"hiv-status"),
            "{label} leaks a plaintext column value"
        );
        assert!(
            !raw.windows(6).any(|w| w == b"INSERT"),
            "{label} leaks plaintext SQL"
        );
    }

    // Cross-node nonce safety: the replica re-logs every applied
    // statement into its *own* binlog at the same (stream, seq)
    // positions the primary used, with near-identical plaintexts, under
    // the same fleet key. Per-origin subkeys must keep those keystreams
    // disjoint — shared keystreams would leave the two binlogs
    // near-identical (XOR of the ciphertexts = XOR of the plaintexts,
    // which is ~zero here), handing a two-image attacker the E2/E3
    // channels back.
    use edb_crypto::logenc::{HEADER_LEN, TAG_LEN};
    use minidb::wal::{carve_enc_frames, WalCrypto, BINLOG_FILE};
    let opener = WalCrypto::new(key, 0);
    let primary_binlog = primary_disk.file(BINLOG_FILE).unwrap().to_vec();
    let p_frames = carve_enc_frames(&primary_binlog);
    assert!(!p_frames.is_empty());
    let replica_image = set.replica(0).system_image();
    let replica_binlog = replica_image.disk.file(BINLOG_FILE).unwrap();
    let r_frames = carve_enc_frames(replica_binlog);
    assert!(!r_frames.is_empty(), "replica re-logs applied statements");
    let mut compared = 0;
    for ((_, pf), (_, rf)) in p_frames.iter().zip(&r_frames) {
        let (p_origin, _, p_seq, p_plain) = opener.open(pf).expect("primary frame opens");
        let (r_origin, _, r_seq, r_plain) = opener.open(rf).expect("replica frame opens");
        assert_ne!(p_origin, r_origin, "two nodes sealed under one origin");
        if p_seq != r_seq {
            continue;
        }
        // Same (stream, seq) on two nodes: XORing the ciphertext bodies
        // must not reveal the plaintext XOR (with a shared keystream it
        // would, exactly — and these plaintexts are near-identical, so
        // the leak would be near-total).
        let pb = &pf[HEADER_LEN..pf.len() - TAG_LEN];
        let rb = &rf[HEADER_LEN..rf.len() - TAG_LEN];
        let n = pb.len().min(rb.len());
        let ct_xor: Vec<u8> = pb[..n].iter().zip(&rb[..n]).map(|(a, b)| a ^ b).collect();
        let pt_xor: Vec<u8> = p_plain[..n.min(p_plain.len())]
            .iter()
            .zip(&r_plain[..n.min(r_plain.len())])
            .map(|(a, b)| a ^ b)
            .collect();
        assert_ne!(
            &ct_xor[..pt_xor.len()],
            &pt_xor[..],
            "cross-node keystream reuse at seq {p_seq}"
        );
        compared += 1;
    }
    assert!(compared > 0, "no cross-node position collision exercised");
    set.shutdown();
}
