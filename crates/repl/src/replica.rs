//! Replica-side apply loop (MySQL's I/O + SQL threads, folded into one).
//!
//! The loop connects, handshakes at its recovered relay position, then
//! for every received event: **relay first, replay second** — the event
//! is framed into the relay log on the replica's virtual disk before the
//! statement re-executes through the local engine. Stream errors trigger
//! reconnect with exponential backoff; the handshake's resume position
//! plus duplicate-skip on sequence numbers makes redelivery idempotent.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mdb_telemetry::{Counter, Gauge, Histogram};
use minidb::observability::ReplicaStatus;
use minidb::Db;
use parking_lot::Mutex;

use crate::relay;
use crate::transport::Transport;
use crate::wire::WireMessage;
use crate::{ReplError, ReplResult};

/// How long one receive waits before the loop re-checks shutdown.
const RECV_POLL: Duration = Duration::from_millis(20);

/// Reconnect backoff bounds (exponential, reset on a healthy receive).
const BACKOFF_BASE: Duration = Duration::from_millis(1);
const BACKOFF_CAP: Duration = Duration::from_millis(16);

/// Applies ±25% jitter to a backoff delay, advancing a per-replica
/// xorshift64* state. Without this, every replica cut by the same
/// partition heals on the same exponential schedule and reconnects in
/// lock-step — a thundering herd against the primary's acceptor. The
/// state is seeded from the replica's `server_id`, so the dither is
/// deterministic per node (reproducible chaos schedules) while distinct
/// nodes spread out.
fn jittered(backoff: Duration, state: &mut u64) -> Duration {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
    // Top 53 bits → uniform fraction in [0, 1), mapped to [0.75, 1.25).
    let frac = 0.75 + (r >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
    Duration::from_nanos((backoff.as_nanos() as f64 * frac) as u64)
}

/// Seeds the jitter state for a replica (never zero — xorshift's fixed
/// point).
fn jitter_seed(server_id: u64) -> u64 {
    server_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

/// Lock-free view of a replica's replication state, readable from the
/// primary's `information_schema.replicas` closure **without taking any
/// database lock** (the closure runs under the primary's engine lock, so
/// it must never lock a `Db` itself).
#[derive(Default)]
pub struct ReplicaShared {
    /// Next sequence number this replica needs.
    pub next_seq: AtomicU64,
    /// Primary's end-of-binlog position as of the last message.
    pub primary_seq: AtomicU64,
    /// Reconnect attempts performed.
    pub retries: AtomicU64,
    /// Events applied successfully.
    pub applied: AtomicU64,
    /// Events lost to a primary-side binlog purge gap.
    pub gap_events: AtomicU64,
    /// Primary timestamp carried by the last heartbeat.
    pub last_heartbeat: AtomicI64,
    /// Human-readable SHOW-REPLICA-STATUS-style state.
    state: Mutex<&'static str>,
}

impl ReplicaShared {
    fn set_state(&self, s: &'static str) {
        *self.state.lock() = s;
    }

    /// Current state label ("connecting", "streaming", "reconnecting",
    /// "stopped").
    pub fn state(&self) -> &'static str {
        *self.state.lock()
    }

    /// Events the replica still trails the primary by.
    pub fn lag_events(&self) -> u64 {
        self.primary_seq
            .load(Ordering::SeqCst)
            .saturating_sub(self.next_seq.load(Ordering::SeqCst))
    }

    /// Renders an `information_schema.replicas` row.
    pub fn status_row(&self, replica_id: u64) -> ReplicaStatus {
        ReplicaStatus {
            replica_id,
            state: self.state().to_string(),
            next_seq: self.next_seq.load(Ordering::SeqCst),
            primary_seq: self.primary_seq.load(Ordering::SeqCst),
            lag_events: self.lag_events(),
            retries: self.retries.load(Ordering::SeqCst),
            last_heartbeat: self.last_heartbeat.load(Ordering::SeqCst),
        }
    }
}

struct ApplyMetrics {
    relay_bytes: Counter,
    relay_events: Counter,
    retries: Counter,
    gap_events: Counter,
    heartbeats: Counter,
    lag_events: Gauge,
    /// Wall-clock time to relay + replay one event, in microseconds.
    /// A histogram (not an average) so percentile tails are visible —
    /// p50/p95/p99 surface in `/metrics` as `_bucket` series.
    apply_latency_us: Histogram,
}

/// One read replica: a database plus its replication apply loop.
pub struct Replica {
    db: Db,
    shared: Arc<ReplicaShared>,
    handle: Option<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

/// Produces a fresh transport per (re)connection attempt.
pub type Connector = Box<dyn FnMut() -> ReplResult<Box<dyn Transport>> + Send>;

impl Replica {
    /// Starts the apply loop for `db`, (re)connecting via `connector`.
    /// The replica recovers its resume position from its own relay log,
    /// so a restarted replica never re-asks for what it already has.
    pub fn start(db: Db, connector: Connector) -> Replica {
        let shared = Arc::new(ReplicaShared::default());
        // A crash mid-`relay_append` leaves a torn frame at the relay
        // tail; drop it before recovering the resume position so the
        // handshake re-requests exactly that event (relay-first, so it
        // was never applied — no loss, no double-apply).
        let torn = relay::repair_torn_tail(&db);
        // A crash *between* relay-append and apply leaves complete frames
        // the engine never executed; replay them now, or the resume
        // handshake would skip them forever (the relay counts them as
        // held, so it never re-asks).
        let replayed = relay::replay_unapplied(&db);
        if let Some((next, _)) = relay::recover_position(&db) {
            shared.next_seq.store(next, Ordering::SeqCst);
        }
        let registry = db.telemetry();
        if torn > 0 {
            registry.counter("repl.relay.torn_bytes").add(torn as u64);
            registry.counter("repl.relay.repairs").inc();
        }
        if replayed > 0 {
            registry.counter("repl.relay.replayed").add(replayed as u64);
        }
        let metrics = ApplyMetrics {
            relay_bytes: registry.counter("repl.relay.bytes"),
            relay_events: registry.counter("repl.relay.events"),
            retries: registry.counter("repl.retries"),
            gap_events: registry.counter("repl.gap_events"),
            heartbeats: registry.counter("repl.heartbeats"),
            lag_events: registry.gauge("repl.lag_events"),
            apply_latency_us: registry.histogram("repl.apply_latency_us"),
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let db = db.clone();
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                apply_loop(&db, &shared, connector, &metrics, &shutdown);
                shared.set_state("stopped");
            })
        };
        Replica {
            db,
            shared,
            handle: Some(handle),
            shutdown,
        }
    }

    /// The replica's database handle.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// This replica's server id.
    pub fn id(&self) -> u64 {
        self.db.server_id()
    }

    /// The shared replication-state cell (lag, position, retries).
    pub fn shared(&self) -> Arc<ReplicaShared> {
        Arc::clone(&self.shared)
    }

    /// Stops the apply loop and joins the thread.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop();
    }
}

fn apply_loop(
    db: &Db,
    shared: &ReplicaShared,
    mut connector: Connector,
    metrics: &ApplyMetrics,
    shutdown: &AtomicBool,
) {
    let replica_id = db.server_id();
    let mut backoff = BACKOFF_BASE;
    let mut jitter = jitter_seed(replica_id);
    let mut first_attach = relay::recover_position(db).is_none();
    while !shutdown.load(Ordering::SeqCst) {
        shared.set_state("connecting");
        let mut transport = match connector() {
            Ok(t) => t,
            Err(_) => {
                shared.set_state("reconnecting");
                shared.retries.fetch_add(1, Ordering::SeqCst);
                metrics.retries.inc();
                std::thread::sleep(jittered(backoff, &mut jitter));
                backoff = (backoff * 2).min(BACKOFF_CAP);
                continue;
            }
        };
        let next = shared.next_seq.load(Ordering::SeqCst);
        if first_attach {
            // Anchor the relay index before the first event lands so a
            // restart can always recover a position.
            relay::append_index_entry(db, next, relay::relay_len(db));
            first_attach = false;
        }
        let hello = WireMessage::Handshake {
            replica_id,
            next_seq: next,
        };
        if transport.send(&hello).is_err() {
            shared.set_state("reconnecting");
            shared.retries.fetch_add(1, Ordering::SeqCst);
            metrics.retries.inc();
            std::thread::sleep(jittered(backoff, &mut jitter));
            backoff = (backoff * 2).min(BACKOFF_CAP);
            continue;
        }
        // Not "streaming" yet: the router must not route reads here
        // until the first message lands (which also seeds the true
        // `primary_seq`, so lag is never under-reported as zero while
        // the replica is actually far behind).
        shared.set_state("attaching");
        let stream_err = stream(db, shared, transport.as_mut(), metrics, shutdown);
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        if let Err(ReplError::Db(e)) = stream_err {
            // A statement the primary executed failed here: the replica
            // has diverged. Halting beats silently skipping (MySQL stops
            // the SQL thread the same way).
            let _ = e;
            break;
        }
        shared.set_state("reconnecting");
        shared.retries.fetch_add(1, Ordering::SeqCst);
        metrics.retries.inc();
        std::thread::sleep(jittered(backoff, &mut jitter));
        backoff = (backoff * 2).min(BACKOFF_CAP);
    }
}

fn stream(
    db: &Db,
    shared: &ReplicaShared,
    transport: &mut dyn Transport,
    metrics: &ApplyMetrics,
    shutdown: &AtomicBool,
) -> ReplResult<()> {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let msg = match transport.recv_timeout(RECV_POLL)? {
            Some(m) => m,
            None => continue,
        };
        // First message after the handshake: the stream is live and
        // `primary_seq` is about to be truthful — now reads may route
        // here.
        shared.set_state("streaming");
        match msg {
            WireMessage::Events { events } => {
                for ev in events {
                    let next = shared.next_seq.load(Ordering::SeqCst);
                    if ev.seq < next {
                        // Redelivery after a reconnect: already relayed
                        // and applied; skip to stay idempotent.
                        continue;
                    }
                    if ev.seq > next {
                        return Err(ReplError::Protocol(format!(
                            "sequence gap: expected {next}, got {}",
                            ev.seq
                        )));
                    }
                    let apply_started = std::time::Instant::now();
                    let bytes = relay::append_event(db, &ev);
                    metrics.relay_bytes.add(bytes as u64);
                    metrics.relay_events.inc();
                    // Decrypt-at-apply: the payload crossed the wire and
                    // the relay log verbatim (ciphertext on an
                    // `encrypted_wal` fleet); this is the first — and
                    // only — point the statement exists in the clear on
                    // the replica. The primary-set sealed bit picks the
                    // codec, so an encrypted replica never parse-probes
                    // an injected plaintext frame; a key mismatch or
                    // auth failure halts the SQL thread like any
                    // diverged statement would.
                    let event = db
                        .decode_binlog_frame(ev.sealed, &ev.payload)
                        .map_err(ReplError::Db)?;
                    // The binlog event's distributed trace context (if
                    // the primary stamped one) flows into the apply, so
                    // the replica's span joins the statement's trace.
                    db.apply_replicated_ctx(&event.statement, event.timestamp, event.ctx)?;
                    metrics
                        .apply_latency_us
                        .record(apply_started.elapsed().as_micros() as u64);
                    shared.applied.fetch_add(1, Ordering::SeqCst);
                    relay::write_applied_mark(db, ev.seq + 1);
                    shared.next_seq.store(ev.seq + 1, Ordering::SeqCst);
                    if shared.primary_seq.load(Ordering::SeqCst) < ev.seq + 1 {
                        shared.primary_seq.store(ev.seq + 1, Ordering::SeqCst);
                    }
                    metrics.lag_events.set(shared.lag_events() as i64);
                }
            }
            WireMessage::Heartbeat {
                primary_seq,
                timestamp,
            } => {
                shared.primary_seq.store(primary_seq, Ordering::SeqCst);
                shared.last_heartbeat.store(timestamp, Ordering::SeqCst);
                metrics.heartbeats.inc();
                metrics.lag_events.set(shared.lag_events() as i64);
            }
            WireMessage::Purged { purged_to } => {
                let next = shared.next_seq.load(Ordering::SeqCst);
                if purged_to > next {
                    // Events in [next, purged_to) are gone for good.
                    shared
                        .gap_events
                        .fetch_add(purged_to - next, Ordering::SeqCst);
                    metrics.gap_events.add(purged_to - next);
                    shared.next_seq.store(purged_to, Ordering::SeqCst);
                    // Re-anchor the relay index across the hole.
                    relay::append_index_entry(db, purged_to, relay::relay_len(db));
                    relay::write_applied_mark(db, purged_to);
                }
            }
            WireMessage::Handshake { .. } => {
                return Err(ReplError::Protocol("handshake received by replica".into()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primary::PrimaryServer;
    use crate::transport::duplex;
    use minidb::DbConfig;

    #[test]
    fn backoff_jitter_is_seeded_and_bounded() {
        // Deterministic: the same server_id replays the same dither.
        let (mut a, mut b) = (jitter_seed(2), jitter_seed(2));
        let seq_a: Vec<Duration> = (0..32).map(|_| jittered(BACKOFF_CAP, &mut a)).collect();
        let seq_b: Vec<Duration> = (0..32).map(|_| jittered(BACKOFF_CAP, &mut b)).collect();
        assert_eq!(seq_a, seq_b);

        // Bounded: every delay lands in [0.75, 1.25) × base.
        let base = BACKOFF_CAP.as_nanos() as f64;
        for d in &seq_a {
            let f = d.as_nanos() as f64 / base;
            assert!((0.75..1.25).contains(&f), "jitter factor {f} out of range");
        }
        // Spread: the dither actually varies (herd-breaking).
        assert!(seq_a.iter().collect::<std::collections::HashSet<_>>().len() > 16);

        // Distinct nodes diverge.
        let mut c = jitter_seed(3);
        let seq_c: Vec<Duration> = (0..32).map(|_| jittered(BACKOFF_CAP, &mut c)).collect();
        assert_ne!(seq_a, seq_c);
    }

    fn replica_config(id: u64) -> DbConfig {
        DbConfig {
            server_id: id,
            read_only: true,
            ..DbConfig::default()
        }
    }

    #[test]
    fn replica_applies_primary_writes() {
        let primary = Db::open(DbConfig::default());
        let server = PrimaryServer::new(primary.clone());
        let replica_db = Db::open(replica_config(2));

        let (p_end, r_end) = duplex();
        server.serve(Box::new(p_end));
        let mut endpoints = vec![r_end];
        let mut replica = Replica::start(
            replica_db.clone(),
            Box::new(move || {
                endpoints
                    .pop()
                    .map(|e| Box::new(e) as Box<dyn Transport>)
                    .ok_or(ReplError::Disconnected)
            }),
        );

        let conn = primary.connect("root");
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        conn.execute("INSERT INTO t VALUES (1, 'alpha')").unwrap();
        conn.execute("INSERT INTO t VALUES (2, 'beta')").unwrap();

        let target = primary.binlog_next_seq();
        let shared = replica.shared();
        for _ in 0..500 {
            if shared.next_seq.load(Ordering::SeqCst) >= target {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(shared.next_seq.load(Ordering::SeqCst), target);

        // The replicated rows are readable on the replica.
        let rconn = replica_db.connect("reader");
        let rows = rconn.execute("SELECT v FROM t").unwrap();
        assert_eq!(rows.rows.len(), 2);

        // And the relay log holds the statements on the replica's disk.
        assert!(relay::relay_len(&replica_db) > 0);
        replica.stop();
        server.shutdown();
    }
}
