//! Relay-log persistence on the replica.
//!
//! Each received event is framed **byte-identically to the primary's
//! binlog** and appended to `relay-bin.000001` on the replica's virtual
//! disk *before* the statement replays. This is the MySQL relay-log
//! discipline — and the crux of the multiplied-surface leak: the relay
//! file sits inside every replica disk snapshot and carves with the same
//! `carve_frames` scan as a stolen binlog, even after the primary's
//! binlog is purged.
//!
//! A tiny sidecar index (`relay-bin.index`) maps byte offsets to global
//! sequence numbers so a restarted replica recovers its resume position
//! from its own disk, without asking the primary.

use minidb::wal::{carve_all_frames, frame, frame_enc};
use minidb::Db;

use crate::wire::SequencedEvent;

/// Relay log file name on the replica's virtual disk (MySQL-style).
pub const RELAY_FILE: &str = "relay-bin.000001";

/// Sidecar index: `(start_seq: u64 le, byte_offset: u64 le)` pairs, one
/// appended at attach time and after every purge-gap reposition.
pub const RELAY_INDEX: &str = "relay-bin.index";

/// Appends one event to the relay log, preserving the primary's framing:
/// the event's explicit `sealed` bit — set by the primary from the
/// frame's on-disk magic and carried across the wire — selects the plain
/// or sealed frame magic. (Classifying by whether the payload *parses*
/// as a plaintext [`BinlogEvent`] would misfile a sealed ciphertext that
/// coincidentally parses.) With `encrypted_wal` on the primary, the
/// relay file therefore stays ciphertext and the keyless `carve_frames`
/// scan recovers nothing from it.
pub fn append_event(db: &Db, ev: &SequencedEvent) -> usize {
    let framed = if ev.sealed {
        frame_enc(&ev.payload)
    } else {
        frame(&ev.payload)
    };
    let len = framed.len();
    db.append_server_file(RELAY_FILE, &framed);
    len
}

/// Records that relay-log byte offset `offset` holds sequence `seq`.
/// Called when a stream (re)positions: initial attach and purge gaps.
pub fn append_index_entry(db: &Db, seq: u64, offset: u64) {
    let mut rec = Vec::with_capacity(16);
    rec.extend_from_slice(&seq.to_le_bytes());
    rec.extend_from_slice(&offset.to_le_bytes());
    db.append_server_file(RELAY_INDEX, &rec);
}

/// Recovers `(next_seq, relay_len)` from the replica's own disk: the last
/// index entry anchors a sequence number at a byte offset; counting the
/// frames carved past that offset yields the next sequence to request.
/// Returns `None` when no index entry exists (fresh replica).
pub fn recover_position(db: &Db) -> Option<(u64, u64)> {
    let index = db.read_server_file(RELAY_INDEX)?;
    if index.len() < 16 {
        return None;
    }
    let last = &index[(index.len() / 16 - 1) * 16..];
    let anchor_seq = u64::from_le_bytes(last[..8].try_into().unwrap());
    let anchor_off = u64::from_le_bytes(last[8..16].try_into().unwrap());
    let relay = db.read_server_file(RELAY_FILE).unwrap_or_default();
    let tail = relay.get(anchor_off as usize..).unwrap_or(&[]);
    // Count every frame the replica can decode: plaintext events and —
    // when this replica holds the log key — sealed records too. Each
    // frame is decoded under the codec its own magic declares.
    let applied = carve_all_frames(tail)
        .iter()
        .filter(|(_, sealed, p)| db.decode_binlog_frame(*sealed, p).is_ok())
        .count() as u64;
    Some((anchor_seq + applied, relay.len() as u64))
}

/// Current relay-log length in bytes (0 when absent).
pub fn relay_len(db: &Db) -> u64 {
    db.read_server_file(RELAY_FILE)
        .map(|b| b.len() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::wal::{carve_frames, BinlogEvent};
    use minidb::DbConfig;

    fn ev(seq: u64) -> SequencedEvent {
        SequencedEvent::plain(
            seq,
            &BinlogEvent {
                lsn: seq,
                txn: seq,
                timestamp: 100 + seq as i64,
                statement: format!("INSERT INTO t VALUES ({seq})"),
                ctx: None,
            },
        )
    }

    #[test]
    fn position_recovers_from_disk_alone() {
        let db = Db::open(DbConfig::default());
        assert_eq!(recover_position(&db), None);
        append_index_entry(&db, 10, 0);
        for s in 10..15 {
            append_event(&db, &ev(s));
        }
        let (next, len) = recover_position(&db).unwrap();
        assert_eq!(next, 15);
        assert_eq!(len, relay_len(&db));
    }

    #[test]
    fn reposition_after_gap_uses_last_anchor() {
        let db = Db::open(DbConfig::default());
        append_index_entry(&db, 0, 0);
        for s in 0..3 {
            append_event(&db, &ev(s));
        }
        // Primary purged 3..20 away; replica repositions at 20.
        append_index_entry(&db, 20, relay_len(&db));
        for s in 20..22 {
            append_event(&db, &ev(s));
        }
        let (next, _) = recover_position(&db).unwrap();
        assert_eq!(next, 22);
    }

    #[test]
    fn relay_bytes_carve_like_a_binlog() {
        let db = Db::open(DbConfig::default());
        for s in 0..4 {
            append_event(&db, &ev(s));
        }
        let raw = db.read_server_file(RELAY_FILE).unwrap();
        let carved: Vec<BinlogEvent> = carve_frames(&raw)
            .iter()
            .filter_map(|(_, p)| BinlogEvent::decode(p).ok())
            .collect();
        assert_eq!(carved.len(), 4);
        assert_eq!(carved[3].statement, "INSERT INTO t VALUES (3)");
    }

    #[test]
    fn sealed_payloads_relay_as_ciphertext() {
        // An encrypted primary/replica pair shares the log key; the relay
        // file must carve to zero plaintext events but still yield a
        // recoverable position for the key holder.
        let key = [7u8; 32];
        let primary = Db::open(DbConfig {
            encrypted_wal: true,
            wal_key: Some(key),
            ..DbConfig::default()
        });
        let pconn = primary.connect("root");
        pconn
            .execute("CREATE TABLE t (id INT PRIMARY KEY)")
            .unwrap();
        pconn.execute("INSERT INTO t VALUES (1)").unwrap();
        let (frames, _) = primary.binlog_frames_from(0, 16);
        assert!(!frames.is_empty());

        let replica = Db::open(DbConfig {
            server_id: 2,
            encrypted_wal: true,
            wal_key: Some(key),
            ..DbConfig::default()
        });
        append_index_entry(&replica, 0, 0);
        for (seq, sealed, payload) in &frames {
            assert!(*sealed, "encrypted primary must ship sealed frames");
            append_event(
                &replica,
                &SequencedEvent {
                    seq: *seq,
                    sealed: *sealed,
                    payload: payload.clone(),
                },
            );
        }
        let raw = replica.read_server_file(RELAY_FILE).unwrap();
        let plaintext_hits = carve_frames(&raw)
            .iter()
            .filter(|(_, p)| BinlogEvent::decode(p).is_ok())
            .count();
        assert_eq!(plaintext_hits, 0, "relay log must not carve in the clear");
        let (next, _) = recover_position(&replica).unwrap();
        assert_eq!(next, frames.len() as u64);
    }
}
