//! Relay-log persistence on the replica.
//!
//! Each received event is framed **byte-identically to the primary's
//! binlog** and appended to `relay-bin.000001` on the replica's virtual
//! disk *before* the statement replays. This is the MySQL relay-log
//! discipline — and the crux of the multiplied-surface leak: the relay
//! file sits inside every replica disk snapshot and carves with the same
//! `carve_frames` scan as a stolen binlog, even after the primary's
//! binlog is purged.
//!
//! A tiny sidecar index (`relay-bin.index`) maps byte offsets to global
//! sequence numbers so a restarted replica recovers its resume position
//! from its own disk, without asking the primary.

use minidb::wal::{carve_all_frames, frame, frame_enc};
use minidb::Db;

use crate::wire::SequencedEvent;

/// Relay log file name on the replica's virtual disk (MySQL-style).
pub const RELAY_FILE: &str = "relay-bin.000001";

/// Sidecar index: `(start_seq: u64 le, byte_offset: u64 le)` pairs, one
/// appended at attach time and after every purge-gap reposition.
pub const RELAY_INDEX: &str = "relay-bin.index";

/// Applied-position mark (MySQL's `relay-log.info`): 16 bytes —
/// `(applied_next_seq: u64 le, own_binlog_next: u64 le)` — overwritten
/// after every successful apply. See [`applied_position`] for why the
/// second field makes the non-atomic mark exact anyway.
pub const RELAY_INFO: &str = "relay.info";

/// Appends one event to the relay log, preserving the primary's framing:
/// the event's explicit `sealed` bit — set by the primary from the
/// frame's on-disk magic and carried across the wire — selects the plain
/// or sealed frame magic. (Classifying by whether the payload *parses*
/// as a plaintext [`BinlogEvent`] would misfile a sealed ciphertext that
/// coincidentally parses.) With `encrypted_wal` on the primary, the
/// relay file therefore stays ciphertext and the keyless `carve_frames`
/// scan recovers nothing from it.
pub fn append_event(db: &Db, ev: &SequencedEvent) -> usize {
    let framed = if ev.sealed {
        frame_enc(&ev.payload)
    } else {
        frame(&ev.payload)
    };
    let len = framed.len();
    db.append_server_file(RELAY_FILE, &framed);
    len
}

/// Records that relay-log byte offset `offset` holds sequence `seq`.
/// Called when a stream (re)positions: initial attach and purge gaps.
pub fn append_index_entry(db: &Db, seq: u64, offset: u64) {
    let mut rec = Vec::with_capacity(16);
    rec.extend_from_slice(&seq.to_le_bytes());
    rec.extend_from_slice(&offset.to_le_bytes());
    db.append_server_file(RELAY_INDEX, &rec);
}

/// Recovers `(next_seq, relay_len)` from the replica's own disk: the last
/// index entry anchors a sequence number at a byte offset; counting the
/// frames carved past that offset yields the next sequence to request.
/// Returns `None` when no index entry exists (fresh replica).
pub fn recover_position(db: &Db) -> Option<(u64, u64)> {
    let index = db.read_server_file(RELAY_INDEX)?;
    if index.len() < 16 {
        return None;
    }
    let last = &index[(index.len() / 16 - 1) * 16..];
    let anchor_seq = u64::from_le_bytes(last[..8].try_into().unwrap());
    let anchor_off = u64::from_le_bytes(last[8..16].try_into().unwrap());
    let relay = db.read_server_file(RELAY_FILE).unwrap_or_default();
    let tail = relay.get(anchor_off as usize..).unwrap_or(&[]);
    // Count every frame the replica can decode: plaintext events and —
    // when this replica holds the log key — sealed records too. Each
    // frame is decoded under the codec its own magic declares.
    let applied = carve_all_frames(tail)
        .iter()
        .filter(|(_, sealed, p)| db.decode_binlog_frame(*sealed, p).is_ok())
        .count() as u64;
    Some((anchor_seq + applied, relay.len() as u64))
}

/// Truncates a torn tail off the relay log, returning the bytes
/// removed (0 when the log ends on a frame boundary).
///
/// A replica killed mid-`relay_append` leaves a partial frame at the
/// tail. Left in place it is worse than wasted bytes: once the resumed
/// stream appends more frames after it, the torn frame's length field
/// may suddenly "cover" the bytes of a later complete frame, making the
/// resyncing carve swallow both. Because the relay log is strictly
/// append-only, a sequential walk from offset 0 is exact — the first
/// position that is not a complete, sane frame is where the tear
/// starts, and everything after it is discarded. The handshake's resume
/// cursor then re-fetches the torn event exactly once.
pub fn repair_torn_tail(db: &Db) -> usize {
    let Some(raw) = db.read_server_file(RELAY_FILE) else {
        return 0;
    };
    let plain = minidb::wal::RECORD_MAGIC.to_le_bytes();
    let sealed = minidb::wal::ENC_RECORD_MAGIC.to_le_bytes();
    let mut end = 0usize;
    while end + 8 <= raw.len() {
        if raw[end..end + 4] != plain && raw[end..end + 4] != sealed {
            break;
        }
        let len = u32::from_le_bytes(raw[end + 4..end + 8].try_into().unwrap()) as usize;
        if len >= (1 << 24) || end + 8 + len > raw.len() {
            break;
        }
        end += 8 + len;
    }
    let torn = raw.len() - end;
    if torn > 0 {
        db.write_server_file(RELAY_FILE, &raw[..end]);
    }
    torn
}

/// Overwrites the applied-position mark: `applied_next` is the global
/// sequence the SQL thread needs next; the replica's *own* binlog
/// position rides along as the tiebreaker [`applied_position`] uses.
pub fn write_applied_mark(db: &Db, applied_next: u64) {
    let mut rec = Vec::with_capacity(16);
    rec.extend_from_slice(&applied_next.to_le_bytes());
    rec.extend_from_slice(&db.binlog_next_seq().to_le_bytes());
    db.write_server_file(RELAY_INFO, &rec);
}

/// The global sequence of the next event the engine still needs, exact
/// even though the mark itself is written non-atomically *after* each
/// apply. A crash can land between apply and mark, leaving the mark one
/// event stale — but each apply also advances the replica's own binlog
/// (a replica executes only replicated statements), so the drift is
/// recoverable: `true_applied = marked + (own_binlog_now - own_binlog_at_mark)`.
/// Returns `None` until the first mark is written.
pub fn applied_position(db: &Db) -> Option<u64> {
    let raw = db.read_server_file(RELAY_INFO)?;
    if raw.len() != 16 {
        return None;
    }
    let marked = u64::from_le_bytes(raw[..8].try_into().unwrap());
    let own_at_mark = u64::from_le_bytes(raw[8..16].try_into().unwrap());
    Some(marked + db.binlog_next_seq().saturating_sub(own_at_mark))
}

/// Re-applies relayed-but-unapplied events after a crash, returning how
/// many replayed. The relay-first discipline means a crash between
/// relay-append and apply leaves frames on disk that the engine never
/// executed; without this replay, [`recover_position`] would count them
/// as applied and the resume handshake would skip them for good — a
/// silently diverged replica. The unapplied events are exactly the last
/// `relay_next - applied_next` decodable frames past the last anchor
/// (relay-first, in-order apply), so the walk is positional, not
/// content-guessing.
pub fn replay_unapplied(db: &Db) -> usize {
    let Some((relay_next, _)) = recover_position(db) else {
        return 0;
    };
    let Some(applied_next) = applied_position(db) else {
        return 0; // No mark yet: nothing was ever applied via the loop.
    };
    if applied_next >= relay_next {
        return 0;
    }
    let missing = (relay_next - applied_next) as usize;
    let index = db.read_server_file(RELAY_INDEX).unwrap_or_default();
    let anchor_off = if index.len() >= 16 {
        let last = &index[(index.len() / 16 - 1) * 16..];
        u64::from_le_bytes(last[8..16].try_into().unwrap())
    } else {
        0
    };
    let relay = db.read_server_file(RELAY_FILE).unwrap_or_default();
    let tail = relay.get(anchor_off as usize..).unwrap_or(&[]);
    let decoded: Vec<_> = carve_all_frames(tail)
        .iter()
        .filter_map(|(_, sealed, p)| db.decode_binlog_frame(*sealed, p).ok())
        .collect();
    let mut replayed = 0usize;
    for event in decoded.iter().skip(decoded.len().saturating_sub(missing)) {
        if db
            .apply_replicated_ctx(&event.statement, event.timestamp, event.ctx)
            .is_err()
        {
            break; // Halt like the SQL thread would; position stays exact.
        }
        replayed += 1;
    }
    write_applied_mark(db, applied_next + replayed as u64);
    replayed
}

/// Current relay-log length in bytes (0 when absent).
pub fn relay_len(db: &Db) -> u64 {
    db.read_server_file(RELAY_FILE)
        .map(|b| b.len() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::wal::{carve_frames, BinlogEvent};
    use minidb::DbConfig;

    fn ev(seq: u64) -> SequencedEvent {
        SequencedEvent::plain(
            seq,
            &BinlogEvent {
                lsn: seq,
                txn: seq,
                timestamp: 100 + seq as i64,
                statement: format!("INSERT INTO t VALUES ({seq})"),
                ctx: None,
            },
        )
    }

    #[test]
    fn position_recovers_from_disk_alone() {
        let db = Db::open(DbConfig::default());
        assert_eq!(recover_position(&db), None);
        append_index_entry(&db, 10, 0);
        for s in 10..15 {
            append_event(&db, &ev(s));
        }
        let (next, len) = recover_position(&db).unwrap();
        assert_eq!(next, 15);
        assert_eq!(len, relay_len(&db));
    }

    #[test]
    fn reposition_after_gap_uses_last_anchor() {
        let db = Db::open(DbConfig::default());
        append_index_entry(&db, 0, 0);
        for s in 0..3 {
            append_event(&db, &ev(s));
        }
        // Primary purged 3..20 away; replica repositions at 20.
        append_index_entry(&db, 20, relay_len(&db));
        for s in 20..22 {
            append_event(&db, &ev(s));
        }
        let (next, _) = recover_position(&db).unwrap();
        assert_eq!(next, 22);
    }

    #[test]
    fn relayed_but_unapplied_tail_replays_on_restart() {
        let db = Db::open(DbConfig {
            server_id: 2,
            read_only: true,
            ..DbConfig::default()
        });
        append_index_entry(&db, 0, 0);
        let stmts = [
            "CREATE TABLE t (id INT PRIMARY KEY)",
            "INSERT INTO t VALUES (1)",
            "INSERT INTO t VALUES (2)",
        ];
        // Events 0 and 1: relay, apply, mark — the normal loop.
        for seq in 0..2u64 {
            let e = SequencedEvent::plain(
                seq,
                &BinlogEvent {
                    lsn: seq,
                    txn: seq,
                    timestamp: 100,
                    statement: stmts[seq as usize].to_string(),
                    ctx: None,
                },
            );
            append_event(&db, &e);
            db.apply_replicated_ctx(stmts[seq as usize], 100, None)
                .unwrap();
            write_applied_mark(&db, seq + 1);
        }
        // Event 2: relayed, then the crash lands before the apply.
        append_event(
            &db,
            &SequencedEvent::plain(
                2,
                &BinlogEvent {
                    lsn: 2,
                    txn: 2,
                    timestamp: 100,
                    statement: stmts[2].to_string(),
                    ctx: None,
                },
            ),
        );
        assert_eq!(applied_position(&db), Some(2));
        let (relay_next, _) = recover_position(&db).unwrap();
        assert_eq!(relay_next, 3, "relay holds the unapplied frame");

        // Restart-time replay executes exactly the missing event.
        assert_eq!(replay_unapplied(&db), 1);
        assert_eq!(applied_position(&db), Some(3));
        let rows = db.connect("check").execute("SELECT id FROM t").unwrap();
        assert_eq!(rows.rows.len(), 2);

        // Idempotent: a second restart replays nothing.
        assert_eq!(replay_unapplied(&db), 0);
        assert_eq!(rows.rows.len(), 2);
    }

    #[test]
    fn applied_mark_tolerates_crash_after_apply_before_mark() {
        // The inverse window: apply succeeded, mark write was lost. The
        // own-binlog tiebreaker must prevent a double replay.
        let db = Db::open(DbConfig {
            server_id: 2,
            read_only: true,
            ..DbConfig::default()
        });
        append_index_entry(&db, 0, 0);
        let e = SequencedEvent::plain(
            0,
            &BinlogEvent {
                lsn: 0,
                txn: 0,
                timestamp: 100,
                statement: "CREATE TABLE t (id INT PRIMARY KEY)".to_string(),
                ctx: None,
            },
        );
        append_event(&db, &e);
        write_applied_mark(&db, 0); // Mark as of *before* the apply.
        db.apply_replicated_ctx("CREATE TABLE t (id INT PRIMARY KEY)", 100, None)
            .unwrap();
        // Own binlog advanced past the mark: position is still exact.
        assert_eq!(applied_position(&db), Some(1));
        assert_eq!(replay_unapplied(&db), 0);
    }

    #[test]
    fn relay_bytes_carve_like_a_binlog() {
        let db = Db::open(DbConfig::default());
        for s in 0..4 {
            append_event(&db, &ev(s));
        }
        let raw = db.read_server_file(RELAY_FILE).unwrap();
        let carved: Vec<BinlogEvent> = carve_frames(&raw)
            .iter()
            .filter_map(|(_, p)| BinlogEvent::decode(p).ok())
            .collect();
        assert_eq!(carved.len(), 4);
        assert_eq!(carved[3].statement, "INSERT INTO t VALUES (3)");
    }

    #[test]
    fn sealed_payloads_relay_as_ciphertext() {
        // An encrypted primary/replica pair shares the log key; the relay
        // file must carve to zero plaintext events but still yield a
        // recoverable position for the key holder.
        let key = [7u8; 32];
        let primary = Db::open(DbConfig {
            encrypted_wal: true,
            wal_key: Some(key),
            ..DbConfig::default()
        });
        let pconn = primary.connect("root");
        pconn
            .execute("CREATE TABLE t (id INT PRIMARY KEY)")
            .unwrap();
        pconn.execute("INSERT INTO t VALUES (1)").unwrap();
        let (frames, _) = primary.binlog_frames_from(0, 16);
        assert!(!frames.is_empty());

        let replica = Db::open(DbConfig {
            server_id: 2,
            encrypted_wal: true,
            wal_key: Some(key),
            ..DbConfig::default()
        });
        append_index_entry(&replica, 0, 0);
        for (seq, sealed, payload) in &frames {
            assert!(*sealed, "encrypted primary must ship sealed frames");
            append_event(
                &replica,
                &SequencedEvent {
                    seq: *seq,
                    sealed: *sealed,
                    payload: payload.clone(),
                },
            );
        }
        let raw = replica.read_server_file(RELAY_FILE).unwrap();
        let plaintext_hits = carve_frames(&raw)
            .iter()
            .filter(|(_, p)| BinlogEvent::decode(p).is_ok())
            .count();
        assert_eq!(plaintext_hits, 0, "relay log must not carve in the clear");
        let (next, _) = recover_position(&replica).unwrap();
        assert_eq!(next, frames.len() as u64);
    }
}
