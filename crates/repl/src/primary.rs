//! Primary-side binlog streaming.
//!
//! A [`PrimaryServer`] owns one session thread per attached replica. A
//! session waits for the replica's handshake, clamps the requested
//! position against the binlog purge horizon (announcing gaps with
//! [`WireMessage::Purged`]), then tails the binlog: batches of events
//! while there is fresh data, heartbeats carrying the primary's position
//! while the stream is idle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mdb_telemetry::Counter;
use minidb::Db;
use parking_lot::Mutex;

use crate::transport::Transport;
use crate::wire::{SequencedEvent, WireMessage};
use crate::{ReplError, ReplResult};

/// Max events shipped per [`WireMessage::Events`] batch.
const BATCH: usize = 64;

/// How long a session waits for a handshake before re-checking shutdown.
const HANDSHAKE_POLL: Duration = Duration::from_millis(20);

/// Idle delay between binlog polls when there is nothing to ship.
const IDLE_POLL: Duration = Duration::from_millis(1);

struct StreamMetrics {
    sessions: Counter,
    events_sent: Counter,
    heartbeats: Counter,
    bytes_sent: Counter,
}

/// The primary's replication front end: accepts transports (one per
/// replica) and streams the binlog down each.
pub struct PrimaryServer {
    db: Db,
    shutdown: Arc<AtomicBool>,
    sessions: Mutex<Vec<JoinHandle<()>>>,
    metrics: Arc<StreamMetrics>,
}

impl PrimaryServer {
    /// Creates a server for `db`. Sessions start on [`Self::serve`].
    pub fn new(db: Db) -> Self {
        let registry = db.telemetry();
        let metrics = Arc::new(StreamMetrics {
            sessions: registry.counter("repl.stream.sessions"),
            events_sent: registry.counter("repl.stream.events_sent"),
            heartbeats: registry.counter("repl.stream.heartbeats"),
            bytes_sent: registry.counter("repl.stream.bytes_sent"),
        });
        PrimaryServer {
            db,
            shutdown: Arc::new(AtomicBool::new(false)),
            sessions: Mutex::new(Vec::new()),
            metrics,
        }
    }

    /// The database this server streams from.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// Spawns a streaming session over `transport`. The session ends when
    /// the link drops or the server shuts down.
    pub fn serve(&self, mut transport: Box<dyn Transport>) {
        let db = self.db.clone();
        let shutdown = Arc::clone(&self.shutdown);
        let metrics = Arc::clone(&self.metrics);
        metrics.sessions.inc();
        let handle = std::thread::spawn(move || {
            let _ = session(&db, transport.as_mut(), &shutdown, &metrics);
        });
        self.sessions.lock().push(handle);
    }

    /// Stops every session and joins the threads.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let handles: Vec<_> = self.sessions.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for PrimaryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn session(
    db: &Db,
    transport: &mut dyn Transport,
    shutdown: &AtomicBool,
    metrics: &StreamMetrics,
) -> ReplResult<()> {
    // Phase 1: wait for the replica to announce its resume position.
    let mut next = loop {
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match transport.recv_timeout(HANDSHAKE_POLL)? {
            Some(WireMessage::Handshake { next_seq, .. }) => break next_seq,
            Some(other) => {
                return Err(ReplError::Protocol(format!(
                    "expected handshake, got {other:?}"
                )));
            }
            None => continue,
        }
    };

    // Phase 2: tail the binlog.
    while !shutdown.load(Ordering::SeqCst) {
        // Announce purge gaps so the replica repositions instead of
        // treating the sequence jump as corruption.
        let purged = db.binlog_purged_seq();
        if next < purged {
            transport.send(&WireMessage::Purged { purged_to: purged })?;
            next = purged;
        }
        // Ship raw frame payloads: on an `encrypted_wal` primary these
        // are sealed records, so the stream is ciphertext end-to-end.
        let (events, new_next) = db.binlog_frames_from(next, BATCH);
        if events.is_empty() {
            transport.send(&WireMessage::Heartbeat {
                primary_seq: db.binlog_next_seq(),
                timestamp: db.now(),
            })?;
            metrics.heartbeats.inc();
            std::thread::sleep(IDLE_POLL);
            continue;
        }
        let batch: Vec<SequencedEvent> = events
            .into_iter()
            .map(|(seq, sealed, payload)| SequencedEvent {
                seq,
                sealed,
                payload,
            })
            .collect();
        let n = batch.len() as u64;
        let msg = WireMessage::Events { events: batch };
        metrics.bytes_sent.add(msg.encode().len() as u64);
        transport.send(&msg)?;
        metrics.events_sent.add(n);
        next = new_next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::duplex;
    use minidb::DbConfig;

    #[test]
    fn session_streams_and_heartbeats() {
        let db = Db::open(DbConfig::default());
        let conn = db.connect("root");
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        conn.execute("INSERT INTO t VALUES (1)").unwrap();

        let server = PrimaryServer::new(db.clone());
        let (primary_end, mut replica_end) = duplex();
        server.serve(Box::new(primary_end));

        replica_end
            .send(&WireMessage::Handshake {
                replica_id: 2,
                next_seq: 0,
            })
            .unwrap();

        let mut events = Vec::new();
        let mut saw_heartbeat = false;
        for _ in 0..200 {
            match replica_end.recv_timeout(Duration::from_millis(50)).unwrap() {
                Some(WireMessage::Events { events: batch }) => events.extend(batch),
                Some(WireMessage::Heartbeat { primary_seq, .. }) => {
                    assert_eq!(primary_seq, db.binlog_next_seq());
                    saw_heartbeat = true;
                }
                _ => {}
            }
            if !events.is_empty() && saw_heartbeat {
                break;
            }
        }
        assert!(saw_heartbeat, "idle stream should heartbeat");
        assert_eq!(events.len() as u64, db.binlog_next_seq());
        assert_eq!(events[0].seq, 0);
        assert!(events
            .iter()
            .filter_map(|e| e.decode_plain())
            .any(|ev| ev.statement.contains("INSERT")));
        server.shutdown();
    }

    #[test]
    fn session_announces_purge_gap() {
        let db = Db::open(DbConfig::default());
        let conn = db.connect("root");
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        conn.execute("INSERT INTO t VALUES (1)").unwrap();
        db.purge_binlog();
        conn.execute("INSERT INTO t VALUES (2)").unwrap();

        let server = PrimaryServer::new(db.clone());
        let (primary_end, mut replica_end) = duplex();
        server.serve(Box::new(primary_end));

        // Ask for seq 0, which is behind the purge horizon.
        replica_end
            .send(&WireMessage::Handshake {
                replica_id: 2,
                next_seq: 0,
            })
            .unwrap();

        let mut purged_to = None;
        let mut first_event_seq = None;
        for _ in 0..200 {
            match replica_end.recv_timeout(Duration::from_millis(50)).unwrap() {
                Some(WireMessage::Purged { purged_to: p }) => purged_to = Some(p),
                Some(WireMessage::Events { events }) => {
                    first_event_seq = events.first().map(|e| e.seq);
                    break;
                }
                _ => {}
            }
        }
        assert_eq!(purged_to, Some(db.binlog_purged_seq()));
        assert_eq!(first_event_seq, Some(db.binlog_purged_seq()));
        server.shutdown();
    }
}
