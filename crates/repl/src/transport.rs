//! Transport abstraction for the replication stream.
//!
//! A [`Transport`] moves whole [`WireMessage`]s between a primary session
//! and a replica I/O thread. Two implementations ship: the in-process
//! [`duplex`] channel pair (deterministic, used by tests and the
//! experiment harness) and the loopback-TCP endpoint in [`crate::tcp`].
//! [`FlakyEndpoint`] wraps either one to inject mid-stream disconnects.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::time::Duration;

use crate::wire::WireMessage;
use crate::{ReplError, ReplResult};

/// A bidirectional message pipe between two replication endpoints.
pub trait Transport: Send {
    /// Sends one message to the peer.
    fn send(&mut self, msg: &WireMessage) -> ReplResult<()>;

    /// Receives the next message, waiting up to `timeout`. `Ok(None)`
    /// means the timeout elapsed with the link still healthy.
    fn recv_timeout(&mut self, timeout: Duration) -> ReplResult<Option<WireMessage>>;
}

/// In-process channel endpoint: messages cross as encoded byte vectors so
/// the channel path exercises the same serialization as TCP.
pub struct ChannelEndpoint {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl Transport for ChannelEndpoint {
    fn send(&mut self, msg: &WireMessage) -> ReplResult<()> {
        self.tx
            .send(msg.encode())
            .map_err(|_| ReplError::Disconnected)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> ReplResult<Option<WireMessage>> {
        // Drain without blocking first so a zero timeout still delivers.
        match self.rx.try_recv() {
            Ok(bytes) => return WireMessage::decode(&bytes).map(Some),
            Err(TryRecvError::Disconnected) => return Err(ReplError::Disconnected),
            Err(TryRecvError::Empty) => {}
        }
        match self.rx.recv_timeout(timeout) {
            Ok(bytes) => WireMessage::decode(&bytes).map(Some),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(ReplError::Disconnected),
        }
    }
}

/// Creates a connected pair of in-process endpoints.
pub fn duplex() -> (ChannelEndpoint, ChannelEndpoint) {
    let (atx, arx) = channel();
    let (btx, brx) = channel();
    (
        ChannelEndpoint { tx: atx, rx: brx },
        ChannelEndpoint { tx: btx, rx: arx },
    )
}

/// Shared switch that severs a [`FlakyEndpoint`] on demand.
#[derive(Clone, Default)]
pub struct LinkCutter {
    cut: Arc<AtomicBool>,
}

impl LinkCutter {
    /// Severs the link: every subsequent operation on wrapped endpoints
    /// fails with [`ReplError::Disconnected`] until [`Self::restore`].
    pub fn cut(&self) {
        self.cut.store(true, Ordering::SeqCst);
    }

    /// Heals the link. Endpoints already dropped stay dead; a reconnect
    /// obtains a fresh pair.
    pub fn restore(&self) {
        self.cut.store(false, Ordering::SeqCst);
    }

    /// Whether the link is currently severed.
    pub fn is_cut(&self) -> bool {
        self.cut.load(Ordering::SeqCst)
    }
}

/// Fault-injection wrapper: fails after a fixed number of operations
/// and/or when an external [`LinkCutter`] trips.
pub struct FlakyEndpoint<T: Transport> {
    inner: T,
    ops: AtomicU64,
    /// Fail every operation once this many have succeeded (`u64::MAX` = never).
    fail_after: u64,
    cutter: LinkCutter,
}

impl<T: Transport> FlakyEndpoint<T> {
    /// Wraps `inner`, failing permanently after `fail_after` operations.
    pub fn new(inner: T, fail_after: u64) -> Self {
        FlakyEndpoint {
            inner,
            ops: AtomicU64::new(0),
            fail_after,
            cutter: LinkCutter::default(),
        }
    }

    /// Wraps `inner` with an external cut switch and no op limit.
    pub fn with_cutter(inner: T, cutter: LinkCutter) -> Self {
        FlakyEndpoint {
            inner,
            ops: AtomicU64::new(0),
            fail_after: u64::MAX,
            cutter,
        }
    }

    fn check(&self) -> ReplResult<()> {
        if self.cutter.is_cut() {
            return Err(ReplError::Disconnected);
        }
        if self.ops.fetch_add(1, Ordering::Relaxed) >= self.fail_after {
            return Err(ReplError::Disconnected);
        }
        Ok(())
    }
}

impl<T: Transport> Transport for FlakyEndpoint<T> {
    fn send(&mut self, msg: &WireMessage) -> ReplResult<()> {
        self.check()?;
        self.inner.send(msg)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> ReplResult<Option<WireMessage>> {
        self.check()?;
        let got = self.inner.recv_timeout(timeout);
        // The cut may have landed while this call was blocked in the
        // inner receive — a real partition severs in-flight delivery,
        // so a message that raced the cut is dropped, not delivered.
        // (Safe for replication: the resume handshake re-fetches it.)
        self.check()?;
        got
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplex_delivers_both_ways() {
        let (mut a, mut b) = duplex();
        a.send(&WireMessage::Purged { purged_to: 3 }).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_millis(100)).unwrap(),
            Some(WireMessage::Purged { purged_to: 3 })
        );
        b.send(&WireMessage::Heartbeat {
            primary_seq: 1,
            timestamp: 2,
        })
        .unwrap();
        assert!(matches!(
            a.recv_timeout(Duration::from_millis(100)).unwrap(),
            Some(WireMessage::Heartbeat { .. })
        ));
    }

    #[test]
    fn duplex_times_out_then_disconnects() {
        let (mut a, b) = duplex();
        assert_eq!(a.recv_timeout(Duration::from_millis(5)).unwrap(), None);
        drop(b);
        assert_eq!(
            a.recv_timeout(Duration::from_millis(5)),
            Err(ReplError::Disconnected)
        );
    }

    #[test]
    fn flaky_fails_after_n_ops() {
        let (a, mut b) = duplex();
        let mut flaky = FlakyEndpoint::new(a, 2);
        flaky.send(&WireMessage::Purged { purged_to: 0 }).unwrap();
        flaky.send(&WireMessage::Purged { purged_to: 1 }).unwrap();
        assert_eq!(
            flaky.send(&WireMessage::Purged { purged_to: 2 }),
            Err(ReplError::Disconnected)
        );
        // The two sent before the cut still arrive.
        assert!(b.recv_timeout(Duration::from_millis(50)).unwrap().is_some());
        assert!(b.recv_timeout(Duration::from_millis(50)).unwrap().is_some());
    }

    #[test]
    fn cutter_severs_and_is_shared() {
        let (a, _b) = duplex();
        let cutter = LinkCutter::default();
        let mut flaky = FlakyEndpoint::with_cutter(a, cutter.clone());
        flaky.send(&WireMessage::Purged { purged_to: 0 }).unwrap();
        cutter.cut();
        assert_eq!(
            flaky.recv_timeout(Duration::from_millis(1)),
            Err(ReplError::Disconnected)
        );
    }
}
