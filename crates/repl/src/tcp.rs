//! Loopback-TCP transport (feature `tcp`, default on).
//!
//! Frames [`WireMessage`]s onto a real socket so the replication stream
//! crosses an actual OS boundary — the shape a network tap or pcap-style
//! snapshot would observe. An internal [`FrameDecoder`] buffers partial
//! reads, so a timeout mid-frame never loses stream sync.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use crate::wire::{FrameDecoder, WireMessage};
use crate::{ReplError, ReplResult};

fn io_err(e: std::io::Error) -> ReplError {
    match e.kind() {
        ErrorKind::UnexpectedEof
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe => ReplError::Disconnected,
        _ => ReplError::Io(e.to_string()),
    }
}

/// One side of a TCP replication link.
pub struct TcpEndpoint {
    stream: TcpStream,
    decoder: FrameDecoder,
}

impl TcpEndpoint {
    /// Wraps an accepted or connected stream.
    pub fn new(stream: TcpStream) -> ReplResult<Self> {
        stream.set_nodelay(true).map_err(io_err)?;
        // Accepted sockets may inherit the listener's nonblocking mode on
        // some platforms; the endpoint drives timeouts itself.
        stream.set_nonblocking(false).map_err(io_err)?;
        Ok(TcpEndpoint {
            stream,
            decoder: FrameDecoder::default(),
        })
    }

    /// Connects to a listening primary.
    pub fn connect(addr: SocketAddr) -> ReplResult<Self> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        TcpEndpoint::new(stream)
    }
}

impl crate::transport::Transport for TcpEndpoint {
    fn send(&mut self, msg: &WireMessage) -> ReplResult<()> {
        self.stream.write_all(&msg.to_frame()).map_err(io_err)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> ReplResult<Option<WireMessage>> {
        // A buffered message from an earlier read satisfies immediately.
        if let Some(msg) = self.decoder.next_message()? {
            return Ok(Some(msg));
        }
        // set_read_timeout(0) would mean "block forever"; clamp up.
        let timeout = timeout.max(Duration::from_millis(1));
        self.stream
            .set_read_timeout(Some(timeout))
            .map_err(io_err)?;
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(ReplError::Disconnected),
                Ok(n) => {
                    self.decoder.feed(&buf[..n]);
                    if let Some(msg) = self.decoder.next_message()? {
                        return Ok(Some(msg));
                    }
                    // Partial frame: loop for the rest (bounded by the
                    // read timeout still armed on the socket).
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None);
                }
                Err(e) => return Err(io_err(e)),
            }
        }
    }
}

/// A listener handing out [`TcpEndpoint`]s, one per replica connection.
pub struct TcpAcceptor {
    listener: TcpListener,
}

impl TcpAcceptor {
    /// Binds an ephemeral loopback port.
    pub fn bind() -> ReplResult<Self> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(io_err)?;
        Ok(TcpAcceptor { listener })
    }

    /// The address replicas should connect to.
    pub fn local_addr(&self) -> ReplResult<SocketAddr> {
        self.listener.local_addr().map_err(io_err)
    }

    /// Blocks until the next replica connects.
    pub fn accept(&self) -> ReplResult<TcpEndpoint> {
        let (stream, _) = self.listener.accept().map_err(io_err)?;
        TcpEndpoint::new(stream)
    }

    /// Non-blocking accept for a poll-style accept loop: `Ok(None)` when
    /// no connection is pending.
    pub fn try_accept(&self) -> ReplResult<Option<TcpEndpoint>> {
        self.listener.set_nonblocking(true).map_err(io_err)?;
        match self.listener.accept() {
            Ok((stream, _)) => TcpEndpoint::new(stream).map(Some),
            Err(e) if e.kind() == ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(io_err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;
    use crate::wire::SequencedEvent;
    use minidb::wal::BinlogEvent;

    #[test]
    fn tcp_round_trip_and_timeout() {
        let acceptor = TcpAcceptor::bind().unwrap();
        let addr = acceptor.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut ep = TcpEndpoint::connect(addr).unwrap();
            ep.send(&WireMessage::Handshake {
                replica_id: 2,
                next_seq: 0,
            })
            .unwrap();
            ep.recv_timeout(Duration::from_secs(2)).unwrap()
        });
        let mut server = acceptor.accept().unwrap();
        assert_eq!(
            server.recv_timeout(Duration::from_secs(2)).unwrap(),
            Some(WireMessage::Handshake {
                replica_id: 2,
                next_seq: 0
            })
        );
        // Idle link: timeout yields None, not an error.
        assert_eq!(server.recv_timeout(Duration::from_millis(5)).unwrap(), None);
        server
            .send(&WireMessage::Events {
                events: vec![SequencedEvent::plain(
                    0,
                    &BinlogEvent {
                        lsn: 1,
                        txn: 1,
                        timestamp: 42,
                        statement: "INSERT INTO t VALUES (1)".into(),
                        ctx: None,
                    },
                )],
            })
            .unwrap();
        let got = client.join().unwrap();
        assert!(matches!(got, Some(WireMessage::Events { ref events }) if events.len() == 1));
    }

    #[test]
    fn tcp_peer_close_is_disconnect() {
        let acceptor = TcpAcceptor::bind().unwrap();
        let addr = acceptor.local_addr().unwrap();
        let client = std::thread::spawn(move || TcpEndpoint::connect(addr).unwrap());
        let mut server = acceptor.accept().unwrap();
        drop(client.join().unwrap());
        // Reads drain the FIN and report a disconnect (possibly after a
        // timeout-None while the close is in flight).
        let mut saw_disconnect = false;
        for _ in 0..100 {
            match server.recv_timeout(Duration::from_millis(10)) {
                Err(ReplError::Disconnected) => {
                    saw_disconnect = true;
                    break;
                }
                Ok(None) => continue,
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(saw_disconnect);
    }
}
