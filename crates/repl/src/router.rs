//! Topology wiring, lag-aware read routing, and primary failover.
//!
//! A [`ReplicaSet`] stands up one primary and N read replicas, connects
//! each replica's apply loop over the chosen transport, publishes live
//! replica state into the primary's `information_schema.replicas`, and
//! routes traffic: writes to the primary, reads to the least-lagged
//! replica (falling back to the primary when every replica trails by
//! more than `max_read_lag` events).
//!
//! Failover is the router's second job. [`ReplicaSet::promote`] turns a
//! replica into the fleet's primary: its apply loop stops, its applied
//! cursor becomes the fleet's new end-of-timeline, the deposed primary
//! is **fenced** — the binlog tail past that cursor (writes acked
//! locally but never replicated) is truncated into the
//! `binlog.divergent` quarantine sidecar and the node refuses writes
//! until it rejoins as a replica — and every surviving replica re-homes
//! to the new primary through the ordinary GTID-style resume handshake.
//! That handshake works *because* replicas re-log applied statements
//! into their own binlogs under matching sequence numbers: the promoted
//! node's binlog position equals its applied cursor, so survivors
//! resume exactly where they left off (assuming no purge gap opened
//! during the failover window; a gap repositions them like any other
//! purge).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use minidb::observability::ReplicaStatus;
use minidb::wal::BinlogEvent;
use minidb::{Connection, Db, DbConfig, DbResult, QueryResult};
use parking_lot::Mutex;

use crate::primary::PrimaryServer;
use crate::replica::{Replica, ReplicaShared};
use crate::transport::{duplex, FlakyEndpoint, LinkCutter, Transport};
use crate::{ReplError, ReplResult};

/// Which transport carries the replication stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process channels: deterministic, no OS dependencies.
    #[default]
    Channel,
    /// Loopback TCP: the stream crosses a real socket.
    #[cfg(feature = "tcp")]
    Tcp,
}

/// Configuration for a [`ReplicaSet`].
#[derive(Clone)]
pub struct ReplicaSetConfig {
    /// Number of read replicas.
    pub replicas: usize,
    /// Max events a replica may trail and still serve reads.
    pub max_read_lag: u64,
    /// Replication transport.
    pub transport: TransportKind,
    /// Base engine configuration; the primary gets `server_id = 1`,
    /// replica `i` gets `server_id = 2 + i` and `read_only = true`.
    pub base: DbConfig,
}

impl Default for ReplicaSetConfig {
    fn default() -> Self {
        ReplicaSetConfig {
            replicas: 2,
            max_read_lag: 64,
            transport: TransportKind::default(),
            base: DbConfig::default(),
        }
    }
}

/// Where [`ReplicaSet::read`] would send the next query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadTarget {
    /// Replica by index (0-based).
    Replica(usize),
    /// Every replica is too stale; the primary serves the read.
    Primary,
}

/// What a completed [`ReplicaSet::promote`] did.
#[derive(Debug)]
pub struct Promotion {
    /// Server id of the new primary.
    pub new_primary_id: u64,
    /// The new primary's promotion epoch after the flip.
    pub epoch: u64,
    /// The promoted replica's applied cursor — the fleet's new
    /// end-of-timeline. Everything the deposed primary logged at or
    /// past this sequence was fenced.
    pub cursor: u64,
    /// The deposed primary's quarantined divergent tail, decoded with
    /// its own WAL key (empty when the deposed node had fully
    /// replicated, or when it was unreachable for fencing).
    pub fenced: Vec<BinlogEvent>,
}

struct ReplicaSlot {
    db: Db,
    /// `None` only transiently, while the slot restarts or promotes.
    replica: Option<Replica>,
    shared: Arc<ReplicaShared>,
    /// Cutter for the replica's *current* connection; a reconnect
    /// installs a fresh one, so an injected cut kills exactly one link.
    cutter: Arc<Mutex<LinkCutter>>,
    /// A lasting network partition: while set, the connector refuses to
    /// produce transports, so the apply loop keeps backing off (with
    /// jitter) instead of immediately re-dialing through a one-shot
    /// cut. [`ReplicaSet::heal`] clears it.
    partitioned: Arc<AtomicBool>,
    read_conn: Connection,
}

/// The primary side of the topology, bundled so promotion can swap it
/// atomically: engine, streamer, router connections, and (for TCP) the
/// accept loop.
struct PrimaryHandle {
    db: Db,
    server: Arc<PrimaryServer>,
    write_conn: Connection,
    read_conn: Connection,
    #[cfg(feature = "tcp")]
    tcp: Option<TcpRuntime>,
}

#[cfg(feature = "tcp")]
struct TcpRuntime {
    addr: std::net::SocketAddr,
    handle: Option<std::thread::JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

impl PrimaryHandle {
    fn start(db: Db, transport: TransportKind) -> ReplResult<PrimaryHandle> {
        let server = Arc::new(PrimaryServer::new(db.clone()));
        #[cfg(feature = "tcp")]
        let tcp = match transport {
            TransportKind::Tcp => {
                let acceptor = crate::tcp::TcpAcceptor::bind()?;
                let addr = acceptor.local_addr()?;
                let shutdown = Arc::new(AtomicBool::new(false));
                let handle = {
                    let server = Arc::clone(&server);
                    let stop = Arc::clone(&shutdown);
                    std::thread::spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            match acceptor.try_accept() {
                                Ok(Some(ep)) => server.serve(Box::new(ep)),
                                Ok(None) => std::thread::sleep(Duration::from_millis(2)),
                                Err(_) => break,
                            }
                        }
                    })
                };
                Some(TcpRuntime {
                    addr,
                    handle: Some(handle),
                    shutdown,
                })
            }
            TransportKind::Channel => None,
        };
        #[cfg(not(feature = "tcp"))]
        let _ = transport;
        let write_conn = db.connect("router_write");
        let read_conn = db.connect("router_read");
        Ok(PrimaryHandle {
            db,
            server,
            write_conn,
            read_conn,
            #[cfg(feature = "tcp")]
            tcp,
        })
    }

    /// Stops the streamer and (for TCP) the accept loop. The engine
    /// stays as it is — a killed primary is already crashed, a deposed
    /// one lives on to be fenced.
    fn stop(&mut self) {
        #[cfg(feature = "tcp")]
        if let Some(tcp) = &mut self.tcp {
            tcp.shutdown.store(true, Ordering::SeqCst);
            if let Some(h) = tcp.handle.take() {
                let _ = h.join();
            }
        }
        self.server.shutdown();
    }

    /// A connector producing fresh transports to this primary. Honors
    /// the slot's persistent partition flag and installs a fresh
    /// [`LinkCutter`] per connection.
    fn connector(
        &self,
        transport: TransportKind,
        cutter: Arc<Mutex<LinkCutter>>,
        partitioned: Arc<AtomicBool>,
    ) -> crate::replica::Connector {
        match transport {
            TransportKind::Channel => {
                let server = Arc::clone(&self.server);
                Box::new(move || {
                    if partitioned.load(Ordering::SeqCst) {
                        return Err(ReplError::Disconnected);
                    }
                    let (p_end, r_end) = duplex();
                    let fresh = LinkCutter::default();
                    *cutter.lock() = fresh.clone();
                    server.serve(Box::new(p_end));
                    Ok(Box::new(FlakyEndpoint::with_cutter(r_end, fresh)) as Box<dyn Transport>)
                })
            }
            #[cfg(feature = "tcp")]
            TransportKind::Tcp => {
                let addr = self
                    .tcp
                    .as_ref()
                    .expect("tcp transport has an acceptor")
                    .addr;
                Box::new(move || {
                    if partitioned.load(Ordering::SeqCst) {
                        return Err(ReplError::Disconnected);
                    }
                    let ep = crate::tcp::TcpEndpoint::connect(addr)?;
                    let fresh = LinkCutter::default();
                    *cutter.lock() = fresh.clone();
                    Ok(Box::new(FlakyEndpoint::with_cutter(ep, fresh)) as Box<dyn Transport>)
                })
            }
        }
    }
}

/// A 1-primary / N-replica topology with routed client traffic and
/// failover.
pub struct ReplicaSet {
    primary: PrimaryHandle,
    slots: Vec<ReplicaSlot>,
    /// Fenced former primaries, kept addressable for forensic imaging
    /// and rejoin ([`ReplicaSet::deposed`]).
    deposed: Vec<Db>,
    max_read_lag: u64,
    transport: TransportKind,
}

impl ReplicaSet {
    /// Builds and starts the whole topology.
    pub fn start(config: ReplicaSetConfig) -> ReplResult<ReplicaSet> {
        let primary_db = Db::open(DbConfig {
            server_id: 1,
            read_only: false,
            ..config.base.clone()
        });
        let primary = PrimaryHandle::start(primary_db, config.transport)?;

        let mut set = ReplicaSet {
            primary,
            slots: Vec::with_capacity(config.replicas),
            deposed: Vec::new(),
            max_read_lag: config.max_read_lag,
            transport: config.transport,
        };
        for i in 0..config.replicas {
            let db = Db::open(DbConfig {
                server_id: 2 + i as u64,
                read_only: true,
                ..config.base.clone()
            });
            let cutter = Arc::new(Mutex::new(LinkCutter::default()));
            let partitioned = Arc::new(AtomicBool::new(false));
            let connector = set.primary.connector(
                config.transport,
                Arc::clone(&cutter),
                Arc::clone(&partitioned),
            );
            let replica = Replica::start(db.clone(), connector);
            let shared = replica.shared();
            let read_conn = db.connect("router_read");
            set.slots.push(ReplicaSlot {
                db,
                replica: Some(replica),
                shared,
                cutter,
                partitioned,
                read_conn,
            });
        }
        set.install_status_source();
        Ok(set)
    }

    /// Publishes live replica state into the current primary's
    /// `information_schema.replicas`. The closure runs under the
    /// primary's engine lock, so it only touches shared atomics —
    /// never another Db. Re-invoked after every topology change
    /// (promotion, replica restart) because each (re)start mints a
    /// fresh [`ReplicaShared`] cell.
    fn install_status_source(&self) {
        let status_cells: Vec<(u64, Arc<ReplicaShared>)> = self
            .slots
            .iter()
            .map(|s| (s.db.server_id(), Arc::clone(&s.shared)))
            .collect();
        self.primary.db.set_replica_status_source(Arc::new(move || {
            status_cells
                .iter()
                .map(|(id, shared)| shared.status_row(*id))
                .collect()
        }));
    }

    /// The primary database.
    pub fn primary(&self) -> &Db {
        &self.primary.db
    }

    /// Replica `i`'s database (for snapshotting, direct inspection...).
    pub fn replica(&self, i: usize) -> &Db {
        &self.slots[i].db
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.slots.len()
    }

    /// Fenced former primaries, oldest first.
    pub fn deposed(&self) -> &[Db] {
        &self.deposed
    }

    /// Executes a write on the primary.
    pub fn write(&self, sql: &str) -> DbResult<QueryResult> {
        self.primary.write_conn.execute(sql)
    }

    /// Executes a read pinned to the current primary — the
    /// read-your-writes session path. Follows the primary across a
    /// promotion.
    pub fn read_on_primary(&self, sql: &str) -> DbResult<QueryResult> {
        self.primary.read_conn.execute(sql)
    }

    /// Where the next read would be routed.
    pub fn route_read(&self) -> ReadTarget {
        let best = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.shared.state() == "streaming")
            .map(|(i, s)| (s.shared.lag_events(), i))
            .min();
        match best {
            Some((lag, i)) if lag <= self.max_read_lag => ReadTarget::Replica(i),
            _ => ReadTarget::Primary,
        }
    }

    /// Executes a read on the least-lagged replica (primary fallback).
    pub fn read(&self, sql: &str) -> DbResult<QueryResult> {
        match self.route_read() {
            ReadTarget::Replica(i) => self.slots[i].read_conn.execute(sql),
            ReadTarget::Primary => self.primary.read_conn.execute(sql),
        }
    }

    /// Live status rows (same data as `information_schema.replicas`).
    pub fn status(&self) -> Vec<ReplicaStatus> {
        self.slots
            .iter()
            .map(|s| s.shared.status_row(s.db.server_id()))
            .collect()
    }

    /// Severs replica `i`'s current link mid-stream; its apply loop
    /// reconnects with backoff.
    pub fn inject_disconnect(&self, i: usize) {
        self.slots[i].cutter.lock().cut();
    }

    /// Opens a lasting partition between replica `i` and the primary:
    /// the live link is cut *and* reconnects keep failing until
    /// [`ReplicaSet::heal`].
    pub fn partition(&self, i: usize) {
        self.slots[i].partitioned.store(true, Ordering::SeqCst);
        self.slots[i].cutter.lock().cut();
    }

    /// Heals replica `i`'s partition; the apply loop's next (jittered)
    /// retry reconnects.
    pub fn heal(&self, i: usize) {
        self.slots[i].partitioned.store(false, Ordering::SeqCst);
    }

    /// Whether replica `i` is currently partitioned.
    pub fn is_partitioned(&self, i: usize) -> bool {
        self.slots[i].partitioned.load(Ordering::SeqCst)
    }

    /// Kills the primary in place: the engine crashes (volatile state
    /// gone, disk intact) and its streamer and acceptor stop, so
    /// replicas lose the feed mid-stream. The corpse stays addressable
    /// — [`ReplicaSet::promote`] fences it.
    pub fn kill_primary(&mut self) {
        self.primary.db.crash();
        self.primary.stop();
    }

    /// The replica a failover should promote: highest applied cursor
    /// wins (it loses the least acked-but-unreplicated data); ties go
    /// to the lowest index. A crashed or halted replica still counts —
    /// its cursor is durable in its relay log.
    pub fn elect_best(&self) -> usize {
        self.slots
            .iter()
            .enumerate()
            .max_by_key(|(i, s)| (s.shared.next_seq.load(Ordering::SeqCst), usize::MAX - i))
            .map(|(i, _)| i)
            .expect("cannot elect from an empty replica set")
    }

    /// Promotes replica `i` to primary. The full failover sequence:
    ///
    /// 1. stop the promoted replica's apply loop and read its applied
    ///    cursor — the fleet's new end-of-timeline;
    /// 2. stop the deposed primary's streamer and **fence** it:
    ///    quarantine its binlog tail past the cursor into the
    ///    `binlog.divergent` sidecar and shut its write gate
    ///    ([`Db::fence_divergent`]);
    /// 3. flip the promoted engine's `read_only` gate and bump its
    ///    promotion epoch ([`Db::promote_to_primary`]);
    /// 4. re-home every surviving replica onto the new primary via the
    ///    ordinary resume handshake, and re-point routed writes and
    ///    primary-pinned reads.
    ///
    /// The promoted replica leaves `slots` (indices above `i` shift
    /// down by one); the deposed primary joins
    /// [`ReplicaSet::deposed`].
    pub fn promote(&mut self, i: usize) -> ReplResult<Promotion> {
        let mut slot = self.slots.remove(i);
        if let Some(mut r) = slot.replica.take() {
            r.stop();
        }
        let cursor = slot.shared.next_seq.load(Ordering::SeqCst);

        // Fence the deposed primary *before* the new one takes writes:
        // its divergent tail must be quarantined while the old timeline
        // is still the only one, or the sidecar could mix timelines.
        let new_primary = PrimaryHandle::start(slot.db.clone(), self.transport)?;
        let mut old = std::mem::replace(&mut self.primary, new_primary);
        old.stop();
        let fenced = old.db.fence_divergent(cursor);
        old.db.set_replica_status_source(Arc::new(Vec::new));
        self.deposed.push(old.db.clone());
        drop(old);

        let epoch = self.primary.db.promote_to_primary();

        // Re-home survivors: each gets a connector to the new primary
        // and restarts its apply loop, which re-recovers its relay
        // position and resumes via the handshake. Partition flags and
        // cutters carry over — a partition outlives a failover.
        for s in &mut self.slots {
            if let Some(mut r) = s.replica.take() {
                r.stop();
            }
            let connector = self.primary.connector(
                self.transport,
                Arc::clone(&s.cutter),
                Arc::clone(&s.partitioned),
            );
            let replica = Replica::start(s.db.clone(), connector);
            s.shared = replica.shared();
            s.replica = Some(replica);
        }
        self.install_status_source();

        Ok(Promotion {
            new_primary_id: self.primary.db.server_id(),
            epoch,
            cursor,
            fenced,
        })
    }

    /// Crash-restarts replica `i`: stop its apply loop, run crash
    /// recovery on the engine (redo, undo, index rebuild), repair any
    /// torn relay tail, and re-attach to the current primary at the
    /// recovered relay position.
    pub fn restart_replica(&mut self, i: usize) -> ReplResult<()> {
        {
            let s = &mut self.slots[i];
            if let Some(mut r) = s.replica.take() {
                r.stop();
            }
        }
        if self.slots[i].db.is_crashed() {
            self.slots[i].db.recover().map_err(ReplError::Db)?;
        }
        let connector = self.primary.connector(
            self.transport,
            Arc::clone(&self.slots[i].cutter),
            Arc::clone(&self.slots[i].partitioned),
        );
        let replica = Replica::start(self.slots[i].db.clone(), connector);
        self.slots[i].shared = replica.shared();
        self.slots[i].replica = Some(replica);
        self.install_status_source();
        Ok(())
    }

    /// Waits until every replica has applied everything the primary has
    /// logged. Returns `false` on timeout.
    ///
    /// Each call records its wall-clock wait into the primary's
    /// `repl.wait_for_sync_us` histogram, so semi-sync commit latency
    /// shows up with p50/p95/p99 tails on the status port — and, like
    /// every histogram there, in every `/metrics` scrape.
    pub fn wait_for_sync(&self, timeout: Duration) -> bool {
        let target = self.primary.db.binlog_next_seq();
        let started = Instant::now();
        let deadline = started + timeout;
        let hist = self
            .primary
            .db
            .telemetry()
            .histogram("repl.wait_for_sync_us");
        loop {
            let synced = self
                .slots
                .iter()
                .all(|s| s.shared.next_seq.load(Ordering::SeqCst) >= target);
            if synced {
                hist.record(started.elapsed().as_micros() as u64);
                return true;
            }
            if Instant::now() >= deadline {
                hist.record(started.elapsed().as_micros() as u64);
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stops replicas, streamer sessions, and (for TCP) the accept loop.
    pub fn shutdown(&mut self) {
        for slot in &mut self.slots {
            if let Some(mut r) = slot.replica.take() {
                r.stop();
            }
        }
        self.primary.stop();
    }
}

impl Drop for ReplicaSet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::ReplRole;

    #[test]
    fn routes_reads_to_replicas_and_writes_to_primary() {
        let mut set = ReplicaSet::start(ReplicaSetConfig::default()).unwrap();
        set.write("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        for i in 0..10 {
            set.write(&format!("INSERT INTO t VALUES ({i}, 'row{i}')"))
                .unwrap();
        }
        assert!(set.wait_for_sync(Duration::from_secs(5)));
        assert!(matches!(set.route_read(), ReadTarget::Replica(_)));
        let rows = set.read("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(format!("{}", rows.rows[0][0]), "10");
        // Replica rejects direct client writes.
        let direct = set.replica(0).connect("intruder");
        assert!(direct.execute("INSERT INTO t VALUES (99, 'x')").is_err());
        set.shutdown();
    }

    #[test]
    fn information_schema_replicas_reports_lag() {
        let mut set = ReplicaSet::start(ReplicaSetConfig::default()).unwrap();
        set.write("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        set.write("INSERT INTO t VALUES (1)").unwrap();
        assert!(set.wait_for_sync(Duration::from_secs(5)));
        let conn = set.primary().connect("admin");
        let rows = conn
            .execute("SELECT replica_id, state, lag_events FROM information_schema.replicas")
            .unwrap();
        assert_eq!(rows.rows.len(), 2);
        set.shutdown();
    }

    #[test]
    fn injected_disconnect_recovers_without_loss_or_dup() {
        let mut set = ReplicaSet::start(ReplicaSetConfig::default()).unwrap();
        // Wait for replica 0 to attach so the injected cut hits a live
        // link rather than the pre-connection placeholder.
        for _ in 0..500 {
            if set.status()[0].state == "streaming" {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        set.write("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        for i in 0..20 {
            set.write(&format!("INSERT INTO t VALUES ({i})")).unwrap();
            if i == 10 {
                set.inject_disconnect(0);
            }
        }
        assert!(set.wait_for_sync(Duration::from_secs(10)));
        let status = &set.status()[0];
        assert!(status.retries >= 1, "cut link should force a reconnect");
        let rows = set.slots[0]
            .read_conn
            .execute("SELECT COUNT(*) FROM t")
            .unwrap();
        assert_eq!(format!("{}", rows.rows[0][0]), "20");
        set.shutdown();
    }

    #[test]
    fn partition_outlasts_reconnects_until_healed() {
        let mut set = ReplicaSet::start(ReplicaSetConfig::default()).unwrap();
        set.write("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        set.write("INSERT INTO t VALUES (0)").unwrap();
        assert!(set.wait_for_sync(Duration::from_secs(5)));

        set.partition(0);
        for i in 1..6 {
            set.write(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        // The partitioned replica must not catch up, no matter how many
        // reconnect attempts it burns.
        std::thread::sleep(Duration::from_millis(100));
        assert!(set.status()[0].next_seq < set.primary().binlog_next_seq());
        assert!(
            set.status()[0].retries >= 2,
            "partition should force repeated (jittered) retries"
        );
        // Routing avoids it; the healthy replica or primary serves.
        assert_ne!(set.route_read(), ReadTarget::Replica(0));

        set.heal(0);
        assert!(set.wait_for_sync(Duration::from_secs(10)));
        let rows = set.slots[0]
            .read_conn
            .execute("SELECT COUNT(*) FROM t")
            .unwrap();
        assert_eq!(format!("{}", rows.rows[0][0]), "6");
        set.shutdown();
    }

    #[test]
    fn promotion_fences_divergence_and_rehomes_survivors() {
        let mut set = ReplicaSet::start(ReplicaSetConfig {
            replicas: 2,
            ..ReplicaSetConfig::default()
        })
        .unwrap();
        set.write("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        for i in 0..8 {
            set.write(&format!("INSERT INTO t VALUES ({i}, 'replicated')"))
                .unwrap();
        }
        assert!(set.wait_for_sync(Duration::from_secs(5)));

        // Divergence window: isolate every replica, keep acking writes.
        for i in 0..set.replica_count() {
            set.partition(i);
        }
        for i in 100..104 {
            set.write(&format!("INSERT INTO t VALUES ({i}, 'divergent-{i}')"))
                .unwrap();
        }
        let old_primary_end = set.primary().binlog_next_seq();

        // Primary dies; the best survivor takes over.
        set.kill_primary();
        let best = set.elect_best();
        let promo = set.promote(best).unwrap();
        for i in 0..set.replica_count() {
            set.heal(i);
        }

        // The divergent tail — and nothing else — was fenced.
        assert_eq!(promo.cursor, 9);
        assert_eq!(
            promo.fenced.len() as u64,
            old_primary_end - promo.cursor,
            "exactly the unreplicated tail is quarantined"
        );
        assert!(promo
            .fenced
            .iter()
            .all(|ev| ev.statement.contains("divergent")));
        assert_eq!(promo.epoch, 1);

        // The deposed node: fenced role, write gate shut, sidecar on disk.
        let deposed = &set.deposed()[0];
        assert_eq!(deposed.repl_role(), ReplRole::Fenced);
        assert!(deposed.is_read_only());
        assert!(deposed
            .read_server_file(minidb::wal::DIVERGENT_FILE)
            .is_some());
        assert_eq!(deposed.binlog_next_seq(), promo.cursor);
        let health = deposed.health_report();
        assert!(!health.ready, "a fenced node must fail its health probe");

        // The new primary: writable, epoch bumped, health advertises it.
        assert_eq!(set.primary().repl_role(), ReplRole::Primary);
        assert!(!set.primary().is_read_only());
        let health = set.primary().health_report();
        assert!(health.components.iter().any(|c| c.name == "role"
            && c.detail.contains("role=primary")
            && c.detail.contains("promotion_epoch=1")));

        // Writes flow on the new timeline and reach the survivor.
        set.write("INSERT INTO t VALUES (200, 'after-failover')")
            .unwrap();
        assert!(set.wait_for_sync(Duration::from_secs(10)));
        let rows = set
            .read_on_primary("SELECT COUNT(*) FROM t WHERE id < 100")
            .unwrap();
        assert_eq!(format!("{}", rows.rows[0][0]), "8");
        let survivor = set.replica(0).connect("check");
        let rows = survivor.execute("SELECT v FROM t WHERE id = 200").unwrap();
        assert_eq!(format!("{}", rows.rows[0][0]), "after-failover");
        // The divergent writes are on no surviving node.
        let rows = survivor
            .execute("SELECT COUNT(*) FROM t WHERE id >= 100 AND id < 200")
            .unwrap();
        assert_eq!(format!("{}", rows.rows[0][0]), "0");

        // Counters landed on the metrics plane of each node.
        assert_eq!(
            set.primary().telemetry().counter("repl.promotions").get(),
            1
        );
        assert_eq!(
            deposed.telemetry().counter("repl.fenced_events").get(),
            promo.fenced.len() as u64
        );
        set.shutdown();
    }

    #[test]
    fn torn_relay_tail_is_repaired_and_refetched_exactly_once() {
        use crate::relay;
        use crate::wire::SequencedEvent;

        let mut set = ReplicaSet::start(ReplicaSetConfig {
            replicas: 1,
            ..ReplicaSetConfig::default()
        })
        .unwrap();
        set.write("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        for i in 0..6 {
            set.write(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        assert!(set.wait_for_sync(Duration::from_secs(5)));

        // Crash the replica, then simulate the kill having struck
        // mid-`relay_append`: half of the next event's frame is on disk.
        set.replica(0).crash();
        let (frames, _) = set.primary().binlog_frames_from(0, 64);
        let torn_src = SequencedEvent {
            seq: 99,
            sealed: frames[0].1,
            payload: frames[0].2.clone(),
        };
        let framed = if torn_src.sealed {
            minidb::wal::frame_enc(&torn_src.payload)
        } else {
            minidb::wal::frame(&torn_src.payload)
        };
        let clean_len = relay::relay_len(set.replica(0));
        set.replica(0)
            .append_server_file(relay::RELAY_FILE, &framed[..framed.len() / 2]);

        // More writes land while the replica is down.
        set.write("INSERT INTO t VALUES (6)").unwrap();
        set.write("INSERT INTO t VALUES (7)").unwrap();

        set.restart_replica(0).unwrap();
        assert!(set.wait_for_sync(Duration::from_secs(10)));

        // The torn bytes are gone (repair counter ticked), and every
        // event is present exactly once: no loss, no double-apply.
        let replica = set.replica(0);
        assert!(replica.telemetry().counter("repl.relay.repairs").get() >= 1);
        let raw = replica.read_server_file(relay::RELAY_FILE).unwrap();
        assert!(raw.len() >= clean_len as usize);
        let decoded: Vec<String> = minidb::wal::carve_all_frames(&raw)
            .into_iter()
            .filter_map(|(_, sealed, p)| replica.decode_binlog_frame(sealed, p).ok())
            .map(|ev| ev.statement)
            .collect();
        let creates_plus_inserts = 1 + 8;
        assert_eq!(decoded.len(), creates_plus_inserts);
        let mut unique = decoded.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), decoded.len(), "no duplicate relay frames");
        let rows = set.slots[0]
            .read_conn
            .execute("SELECT COUNT(*) FROM t")
            .unwrap();
        assert_eq!(format!("{}", rows.rows[0][0]), "8");
        set.shutdown();
    }
}
