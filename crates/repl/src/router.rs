//! Topology wiring and lag-aware read routing.
//!
//! A [`ReplicaSet`] stands up one primary and N read replicas, connects
//! each replica's apply loop over the chosen transport, publishes live
//! replica state into the primary's `information_schema.replicas`, and
//! routes traffic: writes to the primary, reads to the least-lagged
//! replica (falling back to the primary when every replica trails by
//! more than `max_read_lag` events).

use std::sync::Arc;
use std::time::{Duration, Instant};

use minidb::observability::ReplicaStatus;
use minidb::{Connection, Db, DbConfig, DbResult, QueryResult};
use parking_lot::Mutex;

use crate::primary::PrimaryServer;
use crate::replica::{Replica, ReplicaShared};
use crate::transport::{duplex, FlakyEndpoint, LinkCutter, Transport};
use crate::ReplResult;

/// Which transport carries the replication stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process channels: deterministic, no OS dependencies.
    #[default]
    Channel,
    /// Loopback TCP: the stream crosses a real socket.
    #[cfg(feature = "tcp")]
    Tcp,
}

/// Configuration for a [`ReplicaSet`].
#[derive(Clone)]
pub struct ReplicaSetConfig {
    /// Number of read replicas.
    pub replicas: usize,
    /// Max events a replica may trail and still serve reads.
    pub max_read_lag: u64,
    /// Replication transport.
    pub transport: TransportKind,
    /// Base engine configuration; the primary gets `server_id = 1`,
    /// replica `i` gets `server_id = 2 + i` and `read_only = true`.
    pub base: DbConfig,
}

impl Default for ReplicaSetConfig {
    fn default() -> Self {
        ReplicaSetConfig {
            replicas: 2,
            max_read_lag: 64,
            transport: TransportKind::default(),
            base: DbConfig::default(),
        }
    }
}

/// Where [`ReplicaSet::read`] would send the next query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadTarget {
    /// Replica by index (0-based).
    Replica(usize),
    /// Every replica is too stale; the primary serves the read.
    Primary,
}

struct ReplicaSlot {
    replica: Replica,
    shared: Arc<ReplicaShared>,
    /// Cutter for the replica's *current* connection; a reconnect
    /// installs a fresh one, so an injected cut kills exactly one link.
    cutter: Arc<Mutex<LinkCutter>>,
    read_conn: Connection,
}

/// A 1-primary / N-replica topology with routed client traffic.
pub struct ReplicaSet {
    primary: Db,
    server: Arc<PrimaryServer>,
    write_conn: Connection,
    primary_read_conn: Connection,
    slots: Vec<ReplicaSlot>,
    max_read_lag: u64,
    #[cfg(feature = "tcp")]
    _acceptor: Option<std::thread::JoinHandle<()>>,
    #[cfg(feature = "tcp")]
    acceptor_shutdown: Arc<std::sync::atomic::AtomicBool>,
}

impl ReplicaSet {
    /// Builds and starts the whole topology.
    pub fn start(config: ReplicaSetConfig) -> ReplResult<ReplicaSet> {
        let primary = Db::open(DbConfig {
            server_id: 1,
            read_only: false,
            ..config.base.clone()
        });
        let server = Arc::new(PrimaryServer::new(primary.clone()));

        #[cfg(feature = "tcp")]
        let acceptor_shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));
        #[cfg(feature = "tcp")]
        let mut acceptor_handle = None;
        #[cfg(feature = "tcp")]
        let tcp_addr = match config.transport {
            TransportKind::Tcp => {
                let acceptor = crate::tcp::TcpAcceptor::bind()?;
                let addr = acceptor.local_addr()?;
                let server = Arc::clone(&server);
                let stop = Arc::clone(&acceptor_shutdown);
                acceptor_handle = Some(std::thread::spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                        match acceptor.try_accept() {
                            Ok(Some(ep)) => server.serve(Box::new(ep)),
                            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
                            Err(_) => break,
                        }
                    }
                }));
                Some(addr)
            }
            TransportKind::Channel => None,
        };

        let mut slots = Vec::with_capacity(config.replicas);
        for i in 0..config.replicas {
            let db = Db::open(DbConfig {
                server_id: 2 + i as u64,
                read_only: true,
                ..config.base.clone()
            });
            let cutter = Arc::new(Mutex::new(LinkCutter::default()));
            let connector: crate::replica::Connector = {
                let cutter = Arc::clone(&cutter);
                match config.transport {
                    TransportKind::Channel => {
                        let server = Arc::clone(&server);
                        Box::new(move || {
                            let (p_end, r_end) = duplex();
                            let fresh = LinkCutter::default();
                            *cutter.lock() = fresh.clone();
                            server.serve(Box::new(p_end));
                            Ok(Box::new(FlakyEndpoint::with_cutter(r_end, fresh))
                                as Box<dyn Transport>)
                        })
                    }
                    #[cfg(feature = "tcp")]
                    TransportKind::Tcp => {
                        let addr = tcp_addr.expect("tcp transport has an acceptor");
                        Box::new(move || {
                            let ep = crate::tcp::TcpEndpoint::connect(addr)?;
                            let fresh = LinkCutter::default();
                            *cutter.lock() = fresh.clone();
                            Ok(Box::new(FlakyEndpoint::with_cutter(ep, fresh))
                                as Box<dyn Transport>)
                        })
                    }
                }
            };
            let replica = Replica::start(db.clone(), connector);
            let shared = replica.shared();
            let read_conn = db.connect("router_read");
            slots.push(ReplicaSlot {
                replica,
                shared,
                cutter,
                read_conn,
            });
        }

        // Publish live replica state into the primary's
        // information_schema.replicas. The closure runs under the
        // primary's engine lock, so it only touches shared atomics —
        // never another Db.
        let status_cells: Vec<(u64, Arc<ReplicaShared>)> = slots
            .iter()
            .map(|s| (s.replica.id(), Arc::clone(&s.shared)))
            .collect();
        primary.set_replica_status_source(Arc::new(move || {
            status_cells
                .iter()
                .map(|(id, shared)| shared.status_row(*id))
                .collect()
        }));

        let write_conn = primary.connect("router_write");
        let primary_read_conn = primary.connect("router_read");
        Ok(ReplicaSet {
            primary,
            server,
            write_conn,
            primary_read_conn,
            slots,
            max_read_lag: config.max_read_lag,
            #[cfg(feature = "tcp")]
            _acceptor: acceptor_handle,
            #[cfg(feature = "tcp")]
            acceptor_shutdown,
        })
    }

    /// The primary database.
    pub fn primary(&self) -> &Db {
        &self.primary
    }

    /// Replica `i`'s database (for snapshotting, direct inspection...).
    pub fn replica(&self, i: usize) -> &Db {
        self.slots[i].replica.db()
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.slots.len()
    }

    /// Executes a write on the primary.
    pub fn write(&self, sql: &str) -> DbResult<QueryResult> {
        self.write_conn.execute(sql)
    }

    /// Where the next read would be routed.
    pub fn route_read(&self) -> ReadTarget {
        let best = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.shared.state() == "streaming")
            .map(|(i, s)| (s.shared.lag_events(), i))
            .min();
        match best {
            Some((lag, i)) if lag <= self.max_read_lag => ReadTarget::Replica(i),
            _ => ReadTarget::Primary,
        }
    }

    /// Executes a read on the least-lagged replica (primary fallback).
    pub fn read(&self, sql: &str) -> DbResult<QueryResult> {
        match self.route_read() {
            ReadTarget::Replica(i) => self.slots[i].read_conn.execute(sql),
            ReadTarget::Primary => self.primary_read_conn.execute(sql),
        }
    }

    /// Live status rows (same data as `information_schema.replicas`).
    pub fn status(&self) -> Vec<ReplicaStatus> {
        self.slots
            .iter()
            .map(|s| s.shared.status_row(s.replica.id()))
            .collect()
    }

    /// Severs replica `i`'s current link mid-stream; its apply loop
    /// reconnects with backoff.
    pub fn inject_disconnect(&self, i: usize) {
        self.slots[i].cutter.lock().cut();
    }

    /// Waits until every replica has applied everything the primary has
    /// logged. Returns `false` on timeout.
    ///
    /// Each call records its wall-clock wait into the primary's
    /// `repl.wait_for_sync_us` histogram, so semi-sync commit latency
    /// shows up with p50/p95/p99 tails on the status port — and, like
    /// every histogram there, in every `/metrics` scrape.
    pub fn wait_for_sync(&self, timeout: Duration) -> bool {
        let target = self.primary.binlog_next_seq();
        let started = Instant::now();
        let deadline = started + timeout;
        let hist = self.primary.telemetry().histogram("repl.wait_for_sync_us");
        loop {
            let synced = self
                .slots
                .iter()
                .all(|s| s.shared.next_seq.load(std::sync::atomic::Ordering::SeqCst) >= target);
            if synced {
                hist.record(started.elapsed().as_micros() as u64);
                return true;
            }
            if Instant::now() >= deadline {
                hist.record(started.elapsed().as_micros() as u64);
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Stops replicas, streamer sessions, and (for TCP) the accept loop.
    pub fn shutdown(&mut self) {
        for slot in &mut self.slots {
            slot.replica.stop();
        }
        #[cfg(feature = "tcp")]
        {
            self.acceptor_shutdown
                .store(true, std::sync::atomic::Ordering::SeqCst);
            if let Some(h) = self._acceptor.take() {
                let _ = h.join();
            }
        }
        self.server.shutdown();
    }
}

impl Drop for ReplicaSet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_reads_to_replicas_and_writes_to_primary() {
        let mut set = ReplicaSet::start(ReplicaSetConfig::default()).unwrap();
        set.write("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
            .unwrap();
        for i in 0..10 {
            set.write(&format!("INSERT INTO t VALUES ({i}, 'row{i}')"))
                .unwrap();
        }
        assert!(set.wait_for_sync(Duration::from_secs(5)));
        assert!(matches!(set.route_read(), ReadTarget::Replica(_)));
        let rows = set.read("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(format!("{}", rows.rows[0][0]), "10");
        // Replica rejects direct client writes.
        let direct = set.replica(0).connect("intruder");
        assert!(direct.execute("INSERT INTO t VALUES (99, 'x')").is_err());
        set.shutdown();
    }

    #[test]
    fn information_schema_replicas_reports_lag() {
        let mut set = ReplicaSet::start(ReplicaSetConfig::default()).unwrap();
        set.write("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        set.write("INSERT INTO t VALUES (1)").unwrap();
        assert!(set.wait_for_sync(Duration::from_secs(5)));
        let conn = set.primary().connect("admin");
        let rows = conn
            .execute("SELECT replica_id, state, lag_events FROM information_schema.replicas")
            .unwrap();
        assert_eq!(rows.rows.len(), 2);
        set.shutdown();
    }

    #[test]
    fn injected_disconnect_recovers_without_loss_or_dup() {
        let mut set = ReplicaSet::start(ReplicaSetConfig::default()).unwrap();
        // Wait for replica 0 to attach so the injected cut hits a live
        // link rather than the pre-connection placeholder.
        for _ in 0..500 {
            if set.status()[0].state == "streaming" {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        set.write("CREATE TABLE t (id INT PRIMARY KEY)").unwrap();
        for i in 0..20 {
            set.write(&format!("INSERT INTO t VALUES ({i})")).unwrap();
            if i == 10 {
                set.inject_disconnect(0);
            }
        }
        assert!(set.wait_for_sync(Duration::from_secs(10)));
        let status = &set.status()[0];
        assert!(status.retries >= 1, "cut link should force a reconnect");
        let rows = set.slots[0]
            .read_conn
            .execute("SELECT COUNT(*) FROM t")
            .unwrap();
        assert_eq!(format!("{}", rows.rows[0][0]), "20");
        set.shutdown();
    }
}
