//! The replication wire protocol: framed messages between a primary's
//! binlog streamer and a replica's I/O thread.
//!
//! Every message is one frame in the binlog's own framing
//! (`magic || len || payload`, see [`minidb::wal::frame`]), so a network
//! capture of the replication stream carves with the exact same tooling
//! as a stolen binlog file — the stream *is* the binlog, in flight.

use minidb::wal::{frame, BinlogEvent, RECORD_MAGIC};

use crate::{ReplError, ReplResult};

/// A binlog frame payload tagged with its GTID-style sequence number
/// and an explicit sealed/plaintext codec bit.
///
/// The payload is shipped **verbatim** from the primary's binlog: a
/// plaintext [`BinlogEvent`] encoding on a stock primary, or a sealed
/// `logenc` record when the primary runs with
/// `DbConfig::encrypted_wal` — in which case the replication stream is
/// ciphertext end-to-end and only the replica's apply loop (holding the
/// shared log key) can read the statement. The `sealed` flag is set by
/// the primary from the frame's on-disk magic and travels with the
/// event, so no consumer ever has to *guess* a payload's codec by
/// probing whether it parses (a sealed ciphertext that coincidentally
/// parsed as a plaintext event would otherwise be misclassified).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SequencedEvent {
    /// Global sequence number in the primary's binlog.
    pub seq: u64,
    /// Whether `payload` is a sealed `logenc` record (vs a plaintext
    /// [`BinlogEvent`] encoding) — the frame magic it was carved from.
    pub sealed: bool,
    /// The raw binlog frame payload (plaintext event or sealed record).
    pub payload: Vec<u8>,
}

impl SequencedEvent {
    /// Builds a plaintext-payload event (the stock, unencrypted path).
    pub fn plain(seq: u64, event: &BinlogEvent) -> SequencedEvent {
        SequencedEvent {
            seq,
            sealed: false,
            payload: event.encode(),
        }
    }

    /// Decodes the payload as a plaintext [`BinlogEvent`]. `None` for a
    /// sealed payload — use `Db::decode_binlog_frame` with the key.
    pub fn decode_plain(&self) -> Option<BinlogEvent> {
        if self.sealed {
            return None;
        }
        BinlogEvent::decode(&self.payload).ok()
    }
}

/// Message type tags on the wire.
const TAG_HANDSHAKE: u8 = 1;
const TAG_EVENTS: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;
const TAG_PURGED: u8 = 4;

/// One replication protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireMessage {
    /// Replica → primary: start (or resume) streaming at `next_seq`.
    Handshake {
        /// The replica's server id.
        replica_id: u64,
        /// First sequence number the replica still needs.
        next_seq: u64,
    },
    /// Primary → replica: a batch of consecutive events.
    Events {
        /// The batch, in sequence order.
        events: Vec<SequencedEvent>,
    },
    /// Primary → replica: nothing new; carries the primary's position so
    /// the replica can compute lag even on an idle stream.
    Heartbeat {
        /// The primary's end-of-binlog sequence.
        primary_seq: u64,
        /// The primary's simulated UNIX time.
        timestamp: i64,
    },
    /// Primary → replica: the requested position predates the purge
    /// horizon; streaming resumes at `purged_to` and the gap is lost.
    Purged {
        /// First sequence number still available.
        purged_to: u64,
    },
}

fn w_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> ReplResult<&'a [u8]> {
        let b = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| ReplError::Protocol("truncated message".into()))?;
        self.pos += n;
        Ok(b)
    }

    fn u8(&mut self) -> ReplResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> ReplResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> ReplResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> ReplResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl WireMessage {
    /// Serializes the message payload (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WireMessage::Handshake {
                replica_id,
                next_seq,
            } => {
                out.push(TAG_HANDSHAKE);
                w_u64(&mut out, *replica_id);
                w_u64(&mut out, *next_seq);
            }
            WireMessage::Events { events } => {
                out.push(TAG_EVENTS);
                out.extend_from_slice(&(events.len() as u32).to_le_bytes());
                for e in events {
                    w_u64(&mut out, e.seq);
                    out.push(e.sealed as u8);
                    out.extend_from_slice(&(e.payload.len() as u32).to_le_bytes());
                    out.extend_from_slice(&e.payload);
                }
            }
            WireMessage::Heartbeat {
                primary_seq,
                timestamp,
            } => {
                out.push(TAG_HEARTBEAT);
                w_u64(&mut out, *primary_seq);
                out.extend_from_slice(&timestamp.to_le_bytes());
            }
            WireMessage::Purged { purged_to } => {
                out.push(TAG_PURGED);
                w_u64(&mut out, *purged_to);
            }
        }
        out
    }

    /// Parses a message payload.
    pub fn decode(buf: &[u8]) -> ReplResult<WireMessage> {
        let mut c = Cursor { buf, pos: 0 };
        let msg = match c.u8()? {
            TAG_HANDSHAKE => WireMessage::Handshake {
                replica_id: c.u64()?,
                next_seq: c.u64()?,
            },
            TAG_EVENTS => {
                let n = c.u32()? as usize;
                let mut events = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let seq = c.u64()?;
                    let sealed = match c.u8()? {
                        0 => false,
                        1 => true,
                        other => {
                            return Err(ReplError::Protocol(format!(
                                "bad event codec flag {other}"
                            )));
                        }
                    };
                    let len = c.u32()? as usize;
                    // The payload stays opaque on the wire: it may be a
                    // sealed record only the replica's key can open.
                    let payload = c.take(len)?.to_vec();
                    events.push(SequencedEvent {
                        seq,
                        sealed,
                        payload,
                    });
                }
                WireMessage::Events { events }
            }
            TAG_HEARTBEAT => WireMessage::Heartbeat {
                primary_seq: c.u64()?,
                timestamp: c.i64()?,
            },
            TAG_PURGED => WireMessage::Purged {
                purged_to: c.u64()?,
            },
            other => {
                return Err(ReplError::Protocol(format!("unknown message tag {other}")));
            }
        };
        if c.pos != buf.len() {
            return Err(ReplError::Protocol("trailing bytes in message".into()));
        }
        Ok(msg)
    }

    /// Frames the encoded message for a byte-stream transport.
    pub fn to_frame(&self) -> Vec<u8> {
        frame(&self.encode())
    }
}

/// Incremental frame parser for byte-stream transports: feed raw bytes,
/// pop whole messages. Resyncs on the frame magic after garbage.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// Appends raw bytes from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete message, if one is buffered.
    pub fn next_message(&mut self) -> ReplResult<Option<WireMessage>> {
        let magic = RECORD_MAGIC.to_le_bytes();
        // Drop garbage before the next magic (a resync after a cut),
        // keeping up to 3 trailing bytes that may be a magic prefix
        // still arriving.
        let start = self
            .buf
            .windows(4)
            .position(|w| w == magic)
            .unwrap_or_else(|| {
                let keep = (1..4.min(self.buf.len() + 1))
                    .rev()
                    .find(|&k| magic.starts_with(&self.buf[self.buf.len() - k..]))
                    .unwrap_or(0);
                self.buf.len() - keep
            });
        if start > 0 {
            self.buf.drain(..start);
        }
        if self.buf.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[4..8].try_into().unwrap()) as usize;
        if self.buf.len() < 8 + len {
            return Ok(None);
        }
        let msg = WireMessage::decode(&self.buf[8..8 + len]);
        self.buf.drain(..8 + len);
        msg.map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> SequencedEvent {
        SequencedEvent::plain(
            seq,
            &BinlogEvent {
                lsn: seq,
                txn: seq,
                timestamp: 1_700_000_000 + seq as i64,
                statement: format!("INSERT INTO t VALUES ({seq})"),
                // Odd events carry a trace context: the replication
                // stream must ship the optional tail transparently.
                ctx: (seq % 2 == 1).then_some(mdb_trace::TraceContext {
                    trace_id: 0xAB00 + seq as u128,
                    span_id: 0xCD00 + seq,
                    sampled: true,
                }),
            },
        )
    }

    #[test]
    fn opaque_payloads_survive_the_wire() {
        // A sealed (or simply arbitrary) payload must ship verbatim:
        // the wire layer no longer insists on parseable plaintext.
        let sealed = SequencedEvent {
            seq: 9,
            sealed: true,
            payload: vec![0x5E, 0xA1, 0xC0, 0xDE, 0xFF, 0x00, 0x42],
        };
        let msg = WireMessage::Events {
            events: vec![sealed.clone()],
        };
        let back = WireMessage::decode(&msg.encode()).unwrap();
        assert_eq!(back, msg);
        assert!(sealed.decode_plain().is_none(), "opaque bytes stay opaque");
        assert_eq!(ev(3).decode_plain().unwrap().lsn, 3);
    }

    #[test]
    fn messages_round_trip() {
        let msgs = [
            WireMessage::Handshake {
                replica_id: 7,
                next_seq: 42,
            },
            WireMessage::Events {
                events: vec![ev(1), ev(2), ev(3)],
            },
            WireMessage::Heartbeat {
                primary_seq: 99,
                timestamp: 1_700_000_123,
            },
            WireMessage::Purged { purged_to: 55 },
        ];
        for m in &msgs {
            assert_eq!(&WireMessage::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WireMessage::decode(&[]).is_err());
        assert!(WireMessage::decode(&[200]).is_err());
        let mut enc = WireMessage::Purged { purged_to: 1 }.encode();
        enc.push(0);
        assert!(WireMessage::decode(&enc).is_err(), "trailing byte");
    }

    #[test]
    fn frame_decoder_reassembles_split_frames() {
        let a = WireMessage::Heartbeat {
            primary_seq: 5,
            timestamp: 10,
        };
        let b = WireMessage::Events {
            events: vec![ev(5)],
        };
        let mut stream = Vec::new();
        stream.extend_from_slice(&a.to_frame());
        stream.extend_from_slice(&b.to_frame());
        let mut dec = FrameDecoder::default();
        // Feed one byte at a time: messages appear only when complete.
        let mut got = Vec::new();
        for byte in stream {
            dec.feed(&[byte]);
            while let Some(m) = dec.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, vec![a, b]);
    }

    #[test]
    fn frame_decoder_resyncs_after_garbage() {
        let m = WireMessage::Purged { purged_to: 9 };
        let mut dec = FrameDecoder::default();
        dec.feed(&[0xAA, 0xBB, 0xCC]);
        dec.feed(&m.to_frame());
        assert_eq!(dec.next_message().unwrap(), Some(m));
        assert_eq!(dec.next_message().unwrap(), None);
    }
}
