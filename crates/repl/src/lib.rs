//! # mdb-repl — statement-shipping replication for MiniDB
//!
//! A deliberately MySQL-shaped replication stack: the primary streams its
//! **binlog** (framed statement events with GTID-style sequence numbers)
//! over a transport; each replica persists the events to a **relay log**
//! on its own virtual disk *before* replaying them through the engine,
//! then serves reads. A [`router::ReplicaSet`] fronts the fleet, sending
//! writes to the primary and reads to the least-lagged replica.
//!
//! ## Why this belongs in a paper about encrypted databases
//!
//! The HotOS'17 paper's snapshot attacker steals *one* disk or memory
//! image. Replication multiplies that surface: every statement the
//! primary executes is (1) framed into the primary's binlog, (2) shipped
//! over the wire, (3) re-framed into N relay logs, and (4) re-executed
//! into N more buffer pools and redo logs. Purging the primary's binlog
//! — the textbook hygiene step — does nothing to the copies. A snapshot
//! of *any* replica recovers the full write history with timestamps; see
//! `snapshot-attack`'s `forensics::relay` and experiment E14.
//!
//! ## Crate layout
//!
//! - [`wire`] — protocol messages, framed exactly like the binlog.
//! - [`transport`] — byte-stream transport trait + in-process channel
//!   pair, plus a fault-injection wrapper.
//! - [`tcp`] *(feature `tcp`, default on)* — loopback TCP transport.
//! - [`primary`] — per-replica binlog streamer sessions on the primary.
//! - [`relay`] — relay-log persistence and recovery on the replica.
//! - [`replica`] — the apply loop: relay-then-replay, retry/backoff,
//!   lag tracking.
//! - [`router`] — [`router::ReplicaSet`]: topology wiring + lag-aware
//!   read routing.

use core::fmt;

use minidb::DbError;

pub mod primary;
pub mod relay;
pub mod replica;
pub mod router;
#[cfg(feature = "tcp")]
pub mod tcp;
pub mod transport;
pub mod wire;

pub use primary::PrimaryServer;
pub use replica::{Replica, ReplicaShared};
pub use router::{Promotion, ReadTarget, ReplicaSet, ReplicaSetConfig, TransportKind};
pub use transport::{duplex, FlakyEndpoint, Transport};
pub use wire::{SequencedEvent, WireMessage};

/// Errors surfaced by the replication stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplError {
    /// The peer hung up (or the fault injector cut the link).
    Disconnected,
    /// The byte stream decoded to something that violates the protocol.
    Protocol(String),
    /// The engine rejected a replayed statement.
    Db(DbError),
    /// Transport-level I/O failure (TCP errors, bind failures...).
    Io(String),
}

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplError::Disconnected => write!(f, "replication link disconnected"),
            ReplError::Protocol(m) => write!(f, "replication protocol error: {m}"),
            ReplError::Db(e) => write!(f, "replica apply error: {e}"),
            ReplError::Io(m) => write!(f, "replication I/O error: {m}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<DbError> for ReplError {
    fn from(e: DbError) -> Self {
        ReplError::Db(e)
    }
}

/// Convenience alias used across the crate.
pub type ReplResult<T> = Result<T, ReplError>;
