//! The chaos run itself: a replica set under sustained mixed load while
//! the scheduler's fault plan executes between workload steps.
//!
//! One driver thread owns all writes (so every write has an unambiguous
//! outcome) and executes the fault plan; `readers` concurrent clients
//! hammer lag-routed reads the whole time. Every operation is recorded
//! into a [`History`] with global order stamps, and the run ends with a
//! heal-everything convergence phase followed by the consistency
//! [`check`].
//!
//! Writes carry carvable secrets: each version of key `k` is written as
//! `'sk-k-v'` in the row's `note` column. On kill seeds, the versions
//! acked during the divergence window exist *only* in the deposed
//! primary's fenced `binlog.divergent` sidecar — the artifact E21
//! images and carves.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use mdb_repl::{ReplError, ReplResult, ReplicaSet, ReplicaSetConfig, TransportKind};
use minidb::{Db, DbConfig};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::history::{check, CheckContext, Event, History, OpKind, Outcome, Violation};
use crate::scheduler::{ChaosScheduler, FaultAction};

/// Configuration for one chaos run.
#[derive(Clone)]
pub struct ChaosConfig {
    /// Seed for the fault plan and every workload RNG. Odd seeds stage
    /// a primary kill (see [`ChaosScheduler`]).
    pub seed: u64,
    /// Replicas in the fleet.
    pub replicas: usize,
    /// Workload steps (one versioned write per step, plus a session
    /// write/read pair every fourth step).
    pub steps: usize,
    /// Workload key range (keys `1..=keys`; key 0 is the session's).
    pub keys: u64,
    /// Concurrent lag-routed reader clients.
    pub readers: usize,
    /// Replication transport.
    pub transport: TransportKind,
    /// Base engine config for every node (set `encrypted_wal` +
    /// `wal_key` here for a sealed fleet).
    pub base: DbConfig,
    /// The router's staleness bound, in events.
    pub max_read_lag: u64,
    /// Wall-clock grace for the staleness check: writes younger than
    /// this assert nothing about routed reads (covers the router's
    /// partition-detection window).
    pub stale_grace: Duration,
}

impl ChaosConfig {
    /// CI-sized run: a few seconds per seed.
    pub fn quick(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            replicas: 3,
            steps: 80,
            keys: 4,
            readers: 2,
            transport: TransportKind::default(),
            base: DbConfig::default(),
            max_read_lag: 16,
            stale_grace: Duration::from_millis(500),
        }
    }

    /// Longer soak with the same shape.
    pub fn full(seed: u64) -> ChaosConfig {
        ChaosConfig {
            steps: 240,
            keys: 8,
            readers: 3,
            ..ChaosConfig::quick(seed)
        }
    }

    /// The documented staleness bound handed to the checker, in per-key
    /// versions: `max_read_lag` (versions advance at most one per
    /// event) plus slack for the lag measurement racing the read.
    pub fn lag_window(&self) -> u64 {
        self.max_read_lag + 8
    }
}

/// How many of each fault class the run executed.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultCounts {
    /// Single-replica partitions opened.
    pub partitions: u64,
    /// Partitions healed by the plan (the final convergence phase heals
    /// the rest).
    pub heals: u64,
    /// Replica crash-restarts.
    pub crash_restarts: u64,
    /// Clock skew injections.
    pub clock_skews: u64,
    /// Whole-fleet isolations (divergence windows).
    pub isolations: u64,
    /// Primary kills.
    pub kills: u64,
}

/// What one chaos run did and found.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The run's seed.
    pub seed: u64,
    /// Workload steps executed.
    pub steps: usize,
    /// Operations recorded into the history.
    pub ops_recorded: usize,
    /// Acknowledged writes.
    pub acked_writes: u64,
    /// Writes that errored.
    pub failed_writes: u64,
    /// Reads that returned.
    pub reads_ok: u64,
    /// Reads that errored (crashed replica mid-read, …).
    pub reads_failed: u64,
    /// Faults executed.
    pub faults: FaultCounts,
    /// Promotions performed (1 on kill seeds, 0 otherwise).
    pub promotions: u64,
    /// The fleet's promotion epoch at the end of the run.
    pub epoch: u64,
    /// Binlog events fenced off the deposed primary.
    pub fenced_events: u64,
    /// `(key, version)` writes quarantined by fencing — acked, then
    /// sealed into the divergent sidecar.
    pub quarantined: Vec<(u64, u64)>,
    /// Whether every replica reached the primary's end position in the
    /// convergence phase.
    pub synced: bool,
    /// Whether every replica's final `kv` contents equal the primary's.
    pub converged: bool,
    /// Consistency violations the checker found (empty = pass).
    pub violations: Vec<Violation>,
}

impl ChaosReport {
    /// The run's verdict: converged with zero violations.
    pub fn passed(&self) -> bool {
        self.synced && self.converged && self.violations.is_empty()
    }
}

/// A finished run: the report plus the still-standing fleet, so callers
/// (E21) can image the deposed primary's disk.
pub struct ChaosRun {
    /// What happened.
    pub report: ChaosReport,
    /// The fleet, post-convergence. Dropping it shuts everything down.
    pub set: ReplicaSet,
}

/// The carvable secret written as version `ver` of `key` (the row's
/// `note` column, single-quoted in the INSERT statement).
pub fn secret_marker(key: u64, ver: u64) -> String {
    format!("sk-{key}-{ver}")
}

/// Extracts `(key, ver)` from a workload INSERT's secret marker
/// (`None` for DELETEs, DDL, or foreign statements).
pub fn parse_marker(statement: &str) -> Option<(u64, u64)> {
    let at = statement.find("'sk-")?;
    let rest = &statement[at + 4..];
    let end = rest.find('\'')?;
    let mut parts = rest[..end].split('-');
    let key = parts.next()?.parse().ok()?;
    let ver = parts.next()?.parse().ok()?;
    Some((key, ver))
}

fn wall_us(started: Instant) -> u64 {
    started.elapsed().as_micros() as u64
}

/// One versioned write ("put"): DELETE + INSERT, so the statement works
/// identically whether or not the key's previous version survived a
/// failover (an UPDATE would silently no-op on a key whose INSERT was
/// quarantined). Returns whether the write was acknowledged.
#[allow(clippy::too_many_arguments)]
fn put(
    set: &RwLock<ReplicaSet>,
    history: &History,
    started: Instant,
    client: usize,
    key: u64,
    ver: u64,
    session: bool,
) -> bool {
    let invoke = history.stamp();
    let invoke_wall_us = wall_us(started);
    let res = {
        let guard = set.read();
        guard
            .write(&format!("DELETE FROM kv WHERE k = {key}"))
            .and_then(|_| {
                guard.write(&format!(
                    "INSERT INTO kv VALUES ({key}, {ver}, '{}')",
                    secret_marker(key, ver)
                ))
            })
    };
    let complete = history.stamp();
    let complete_wall_us = wall_us(started);
    let ok = res.is_ok();
    history.record(Event {
        client,
        op: OpKind::Write { key, ver },
        invoke,
        complete,
        invoke_wall_us,
        complete_wall_us,
        outcome: if ok { Outcome::Ok } else { Outcome::Fail },
        session_primary: session,
    });
    ok
}

fn parse_ver(result: &minidb::QueryResult) -> Option<u64> {
    result
        .rows
        .first()
        .and_then(|row| format!("{}", row[0]).parse().ok())
}

/// Runs the full chaos schedule for `cfg` and checks the recorded
/// history. The returned [`ChaosRun`] keeps the fleet alive so callers
/// can image disks (deposed primaries included); drop it to shut down.
pub fn run_chaos(cfg: &ChaosConfig) -> ReplResult<ChaosRun> {
    let scheduler = ChaosScheduler::new(cfg.seed, cfg.steps, cfg.replicas);
    let set = RwLock::new(ReplicaSet::start(ReplicaSetConfig {
        replicas: cfg.replicas,
        max_read_lag: cfg.max_read_lag,
        transport: cfg.transport,
        base: cfg.base.clone(),
    })?);
    set.read()
        .write("CREATE TABLE kv (k INT PRIMARY KEY, ver INT, note TEXT)")
        .map_err(ReplError::Db)?;

    let history = History::default();
    let started = Instant::now();
    let stop = AtomicBool::new(false);

    let mut faults = FaultCounts::default();
    let mut promotions = 0u64;
    let mut epoch = 0u64;
    let mut fenced_events = 0u64;
    let mut quarantined: HashSet<(u64, u64)> = HashSet::new();
    let mut fence_stamp: Option<u64> = None;

    std::thread::scope(|scope| -> ReplResult<()> {
        for client in 1..=cfg.readers {
            let (set, history, stop) = (&set, &history, &stop);
            let seed = cfg.seed ^ (client as u64).wrapping_mul(0xA5A5_5A5A_0F0F_F0F0);
            let keys = cfg.keys;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                while !stop.load(Ordering::SeqCst) {
                    let key = rng.gen_range(1..=keys);
                    let invoke = history.stamp();
                    let invoke_wall_us = wall_us(started);
                    let res = set
                        .read()
                        .read(&format!("SELECT ver FROM kv WHERE k = {key}"));
                    let complete = history.stamp();
                    let complete_wall_us = wall_us(started);
                    let outcome = match &res {
                        Ok(r) => Outcome::OkRead(parse_ver(r)),
                        Err(_) => Outcome::Fail,
                    };
                    history.record(Event {
                        client,
                        op: OpKind::Read { key },
                        invoke,
                        complete,
                        invoke_wall_us,
                        complete_wall_us,
                        outcome,
                        session_primary: false,
                    });
                    std::thread::sleep(Duration::from_micros(500));
                }
            });
        }

        // The driver: faults, then workload, step by step. Any topology
        // error aborts the run — but the stop flag must be raised on
        // every exit path or the reader threads (and this scope) would
        // never finish.
        let mut drive = || -> ReplResult<()> {
            let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            let mut next_ver: BTreeMap<u64, u64> = BTreeMap::new();
            for step in 0..cfg.steps {
                for action in scheduler.actions_at(step) {
                    match action {
                        FaultAction::Partition { replica } => {
                            let guard = set.read();
                            let n = guard.replica_count();
                            if n > 0 {
                                guard.partition(replica % n);
                                faults.partitions += 1;
                            }
                        }
                        FaultAction::Heal { replica } => {
                            let guard = set.read();
                            let n = guard.replica_count();
                            if n > 0 {
                                guard.heal(replica % n);
                                faults.heals += 1;
                            }
                        }
                        FaultAction::CrashRestart { replica } => {
                            let mut guard = set.write();
                            let n = guard.replica_count();
                            if n > 0 {
                                let r = replica % n;
                                guard.replica(r).crash();
                                guard.restart_replica(r)?;
                                faults.crash_restarts += 1;
                            }
                        }
                        FaultAction::ClockSkew { node, delta_s } => {
                            let guard = set.read();
                            if node == 0 {
                                guard.primary().advance_time(delta_s);
                            } else {
                                let n = guard.replica_count();
                                if n > 0 {
                                    guard.replica((node - 1) % n).advance_time(delta_s);
                                }
                            }
                            faults.clock_skews += 1;
                        }
                        FaultAction::IsolateAll => {
                            let guard = set.read();
                            for i in 0..guard.replica_count() {
                                guard.partition(i);
                            }
                            faults.isolations += 1;
                        }
                        FaultAction::KillAndPromote => {
                            let mut guard = set.write();
                            guard.kill_primary();
                            let best = guard.elect_best();
                            let promo = guard.promote(best)?;
                            for i in 0..guard.replica_count() {
                                guard.heal(i);
                            }
                            promotions += 1;
                            epoch = promo.epoch;
                            fenced_events += promo.fenced.len() as u64;
                            for ev in &promo.fenced {
                                if let Some(kv) = parse_marker(&ev.statement) {
                                    quarantined.insert(kv);
                                }
                            }
                            fence_stamp = Some(history.stamp());
                            faults.kills += 1;
                        }
                    }
                }

                let key = rng.gen_range(1..=cfg.keys);
                let entry = next_ver.entry(key).or_insert(0);
                *entry += 1;
                let ver = *entry;
                put(&set, &history, started, 0, key, ver, false);

                if step % 4 == 3 {
                    // Read-your-writes session on key 0: write, then
                    // immediately read back pinned to the primary.
                    let entry = next_ver.entry(0).or_insert(0);
                    *entry += 1;
                    let sver = *entry;
                    put(&set, &history, started, 0, 0, sver, true);
                    let invoke = history.stamp();
                    let invoke_wall_us = wall_us(started);
                    let res = set.read().read_on_primary("SELECT ver FROM kv WHERE k = 0");
                    let complete = history.stamp();
                    let complete_wall_us = wall_us(started);
                    let outcome = match &res {
                        Ok(r) => Outcome::OkRead(parse_ver(r)),
                        Err(_) => Outcome::Fail,
                    };
                    history.record(Event {
                        client: 0,
                        op: OpKind::Read { key: 0 },
                        invoke,
                        complete,
                        invoke_wall_us,
                        complete_wall_us,
                        outcome,
                        session_primary: true,
                    });
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(())
        };
        let outcome = drive();
        stop.store(true, Ordering::SeqCst);
        outcome
    })?;

    // Convergence phase: heal every partition, revive any halted apply
    // loop, and wait for the whole fleet to reach the primary's end
    // position.
    let (synced, converged, final_state) = {
        let mut guard = set.write();
        for i in 0..guard.replica_count() {
            guard.heal(i);
        }
        let halted: Vec<usize> = guard
            .status()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == "stopped")
            .map(|(i, _)| i)
            .collect();
        for i in halted {
            guard.restart_replica(i)?;
        }
        let synced = guard.wait_for_sync(Duration::from_secs(30));

        let final_state = table_state(
            &guard
                .read_on_primary("SELECT k, ver FROM kv")
                .map_err(ReplError::Db)?,
        );
        let mut converged = synced;
        for i in 0..guard.replica_count() {
            let rows = guard
                .replica(i)
                .connect("audit")
                .execute("SELECT k, ver FROM kv")
                .map_err(ReplError::Db)?;
            if table_state(&rows) != final_state {
                converged = false;
            }
        }
        (synced, converged, final_state)
    };

    let events = history.events();
    let violations = check(
        &events,
        &CheckContext {
            lag_window: cfg.lag_window(),
            stale_grace_us: cfg.stale_grace.as_micros() as u64,
            quarantined: quarantined.clone(),
            fence_stamp,
            final_state,
        },
    );

    let mut acked_writes = 0u64;
    let mut failed_writes = 0u64;
    let mut reads_ok = 0u64;
    let mut reads_failed = 0u64;
    for ev in &events {
        match (ev.op, ev.outcome) {
            (OpKind::Write { .. }, Outcome::Ok) => acked_writes += 1,
            (OpKind::Write { .. }, _) => failed_writes += 1,
            (OpKind::Read { .. }, Outcome::OkRead(_)) => reads_ok += 1,
            (OpKind::Read { .. }, _) => reads_failed += 1,
        }
    }

    let mut quarantined: Vec<(u64, u64)> = quarantined.into_iter().collect();
    quarantined.sort_unstable();
    Ok(ChaosRun {
        report: ChaosReport {
            seed: cfg.seed,
            steps: cfg.steps,
            ops_recorded: events.len(),
            acked_writes,
            failed_writes,
            reads_ok,
            reads_failed,
            faults,
            promotions,
            epoch,
            fenced_events,
            quarantined,
            synced,
            converged,
            violations,
        },
        set: set.into_inner(),
    })
}

/// Parses `SELECT k, ver FROM kv` rows into a `key → version` map.
fn table_state(result: &minidb::QueryResult) -> BTreeMap<u64, u64> {
    result
        .rows
        .iter()
        .filter_map(|row| {
            let k = format!("{}", row[0]).parse().ok()?;
            let v = format!("{}", row[1]).parse().ok()?;
            Some((k, v))
        })
        .collect()
}

/// Images a deposed primary's divergent sidecar from its virtual disk
/// (`None` when the node was never fenced). This is the cold-image
/// artifact E21 carves.
pub fn divergent_sidecar(deposed: &Db) -> Option<Vec<u8>> {
    deposed.read_server_file(minidb::wal::DIVERGENT_FILE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_roundtrip() {
        let stmt = format!("INSERT INTO kv VALUES (3, 17, '{}')", secret_marker(3, 17));
        assert_eq!(parse_marker(&stmt), Some((3, 17)));
        assert_eq!(parse_marker("DELETE FROM kv WHERE k = 3"), None);
        assert_eq!(parse_marker("INSERT INTO kv VALUES (1, 1, 'x')"), None);
    }

    #[test]
    fn even_seed_run_is_clean_without_promotion() {
        let run = run_chaos(&ChaosConfig {
            steps: 40,
            ..ChaosConfig::quick(4)
        })
        .unwrap();
        let r = &run.report;
        assert!(r.passed(), "violations: {:?}", r.violations);
        assert_eq!(r.promotions, 0);
        assert_eq!(r.fenced_events, 0);
        assert!(r.faults.partitions + r.faults.crash_restarts + r.faults.clock_skews > 0);
        assert_eq!(r.failed_writes, 0);
        assert!(r.reads_ok > 0);
    }

    #[test]
    fn odd_seed_run_promotes_fences_and_stays_consistent() {
        let run = run_chaos(&ChaosConfig {
            steps: 40,
            ..ChaosConfig::quick(5)
        })
        .unwrap();
        let r = &run.report;
        assert!(r.passed(), "violations: {:?}", r.violations);
        assert_eq!(r.promotions, 1);
        assert_eq!(r.epoch, 1);
        assert!(r.faults.kills == 1 && r.faults.isolations == 1);
        assert!(
            r.fenced_events > 0,
            "the divergence window must fence a non-empty tail"
        );
        assert!(!r.quarantined.is_empty());
        // The deposed corpse and its sidecar are imageable.
        assert_eq!(run.set.deposed().len(), 1);
        let sidecar = divergent_sidecar(&run.set.deposed()[0]).unwrap();
        assert!(!sidecar.is_empty());
    }

    #[test]
    fn same_seed_same_workload_and_faults() {
        let a = run_chaos(&ChaosConfig {
            steps: 30,
            ..ChaosConfig::quick(7)
        })
        .unwrap()
        .report;
        let b = run_chaos(&ChaosConfig {
            steps: 30,
            ..ChaosConfig::quick(7)
        })
        .unwrap()
        .report;
        assert_eq!(a.acked_writes, b.acked_writes);
        assert_eq!(a.promotions, b.promotions);
        assert_eq!(a.faults.partitions, b.faults.partitions);
        assert_eq!(a.faults.crash_restarts, b.faults.crash_restarts);
        assert_eq!(a.faults.clock_skews, b.faults.clock_skews);
        assert!(a.passed() && b.passed());
    }
}
