//! Recorded operation histories and the consistency checker.
//!
//! Every client operation the harness performs is recorded as an
//! [`Event`] with global invoke/complete stamps (a shared atomic
//! counter, so cross-thread ordering is exact and cheap). After the
//! run, [`check`] audits the history against the fleet's final state
//! and the set of writes that failover quarantined:
//!
//! - **lost acked write** — an acknowledged write must either survive
//!   into the fleet's final state (superseded only by later acked
//!   writes to the same key) or sit in the fenced divergent tail. An
//!   acked write that simply vanishes is the violation asynchronous
//!   replication is most famous for; fencing is what turns "vanished"
//!   into "quarantined, key-holder recoverable".
//! - **fabricated / dirty read** — a read may only return versions that
//!   some acked write produced before the read completed. (Reads *may*
//!   observe a later-quarantined version while the old primary is still
//!   alive — that data was committed on the only timeline that existed
//!   at the time.)
//! - **stale read beyond the lag window** — routed reads are allowed to
//!   trail, but never by more than the documented window (the router's
//!   `max_read_lag` plus in-flight slack; see
//!   [`crate::harness::ChaosConfig::lag_window`]).
//! - **read-your-writes** — a session pinned to the primary must see
//!   exactly its own latest surviving acked write per key.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// What a recorded operation did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// Wrote `ver` to `key` (versions are per-key monotonic — the
    /// written cell value *is* the version).
    Write { key: u64, ver: u64 },
    /// Read `key`.
    Read { key: u64 },
}

/// How a recorded operation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Write acknowledged.
    Ok,
    /// Read returned this version (`None`: key absent).
    OkRead(Option<u64>),
    /// The operation errored (crashed primary, halted replica, …).
    Fail,
}

/// One recorded operation.
#[derive(Clone, Debug)]
pub struct Event {
    /// Recording client (0 = the driver/writer, 1.. = readers).
    pub client: usize,
    /// The operation.
    pub op: OpKind,
    /// Global stamp taken at invocation.
    pub invoke: u64,
    /// Global stamp taken at completion.
    pub complete: u64,
    /// Wall clock at invocation, µs since run start. Stamps give exact
    /// *ordering*; the wall clock gives the staleness check its grace
    /// period (a router needs a detection window to notice a cut link,
    /// and reads routed inside that window may trail arbitrarily).
    pub invoke_wall_us: u64,
    /// Wall clock at completion, µs since run start.
    pub complete_wall_us: u64,
    /// The result.
    pub outcome: Outcome,
    /// True when the read ran pinned to the primary (the
    /// read-your-writes session path); such reads are held to exact
    /// per-key linearizability, not the lag window.
    pub session_primary: bool,
}

/// Thread-safe history recorder shared by every workload client.
#[derive(Default)]
pub struct History {
    stamp: AtomicU64,
    events: Mutex<Vec<Event>>,
}

impl History {
    /// Draws the next global stamp.
    pub fn stamp(&self) -> u64 {
        self.stamp.fetch_add(1, Ordering::SeqCst)
    }

    /// Records one completed operation.
    pub fn record(&self, ev: Event) {
        self.events.lock().push(ev);
    }

    /// Snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

/// One consistency violation found by [`check`].
#[derive(Clone, Debug)]
pub struct Violation {
    /// Violation class (`lost-acked-write`, `fabricated-read`,
    /// `stale-read`, `read-your-writes`).
    pub kind: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

/// Checker inputs beyond the history itself.
pub struct CheckContext {
    /// Documented staleness bound for routed reads, in events: the
    /// router's `max_read_lag` plus in-flight batch slack.
    pub lag_window: u64,
    /// Wall-clock grace for routed reads, in µs: only writes acked at
    /// least this long before the read invoked count toward its
    /// staleness baseline. This bounds the router's partition-detection
    /// window (a cut link is noticed within one receive poll); without
    /// it, a read routed in the instant after a partition opens would
    /// be charged for writes acked microseconds earlier.
    pub stale_grace_us: u64,
    /// `(key, ver)` writes that failover fenced into the divergent
    /// sidecar — acked on the old timeline, absent from the new one,
    /// recoverable only by the key holder.
    pub quarantined: HashSet<(u64, u64)>,
    /// Global stamp at which the promotion (and fencing) happened, if
    /// one did. Reads invoked before this may legitimately observe
    /// later-quarantined versions.
    pub fence_stamp: Option<u64>,
    /// The fleet's final converged state: key → latest version.
    pub final_state: BTreeMap<u64, u64>,
}

/// Audits a recorded history. Returns every violation found (empty =
/// the run was consistent under the documented semantics).
pub fn check(events: &[Event], ctx: &CheckContext) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Index acked writes per key:
    // (complete_stamp, invoke_stamp, ver, complete_wall_us).
    let mut acked: HashMap<u64, Vec<(u64, u64, u64, u64)>> = HashMap::new();
    for ev in events {
        if let (OpKind::Write { key, ver }, Outcome::Ok) = (ev.op, ev.outcome) {
            acked
                .entry(key)
                .or_default()
                .push((ev.complete, ev.invoke, ver, ev.complete_wall_us));
        }
    }
    for list in acked.values_mut() {
        list.sort_unstable();
    }

    // 1. Lost acked writes: per key, the final state must equal the
    //    highest acked version that was not quarantined.
    for (key, writes) in &acked {
        let surviving_max = writes
            .iter()
            .map(|&(_, _, v, _)| v)
            .filter(|v| !ctx.quarantined.contains(&(*key, *v)))
            .max();
        let final_ver = ctx.final_state.get(key).copied();
        if surviving_max != final_ver {
            violations.push(Violation {
                kind: "lost-acked-write",
                detail: format!(
                    "key {key}: highest surviving acked version {surviving_max:?} \
                     but final state holds {final_ver:?} \
                     ({} writes quarantined for this key)",
                    writes
                        .iter()
                        .filter(|&&(_, _, v, _)| ctx.quarantined.contains(&(*key, v)))
                        .count()
                ),
            });
        }
    }

    // 2–4. Read checks.
    for ev in events {
        let OpKind::Read { key } = ev.op else {
            continue;
        };
        let Outcome::OkRead(got) = ev.outcome else {
            continue; // Failed reads assert nothing.
        };
        let writes = acked.get(&key).map(Vec::as_slice).unwrap_or(&[]);

        // Fabricated / dirty read: the version must come from an acked
        // write that had been invoked by the time the read completed.
        if let Some(v) = got {
            let legitimate = writes
                .iter()
                .any(|&(_, invoke, ver, _)| ver == v && invoke <= ev.complete);
            if !legitimate {
                violations.push(Violation {
                    kind: "fabricated-read",
                    detail: format!(
                        "key {key}: read returned version {v}, which no acked \
                         write had produced by stamp {}",
                        ev.complete
                    ),
                });
                continue;
            }
            // A quarantined version must never be visible after the
            // fence: that timeline is sealed in the sidecar.
            if ctx.quarantined.contains(&(key, v))
                && ctx.fence_stamp.is_some_and(|f| ev.invoke >= f)
            {
                violations.push(Violation {
                    kind: "fabricated-read",
                    detail: format!(
                        "key {key}: read at stamp {} resurrected quarantined \
                         version {v} after the fence",
                        ev.invoke
                    ),
                });
                continue;
            }
        }

        // Baseline: the highest version acked before the read was
        // invoked, excluding quarantined writes (they are allowed to
        // disappear; excluding them only *lowers* the bar, so pre-kill
        // reads that did see them still pass).
        let baseline = writes
            .iter()
            .filter(|&&(complete, _, _, _)| complete <= ev.invoke)
            .map(|&(_, _, v, _)| v)
            .filter(|v| !ctx.quarantined.contains(&(key, *v)))
            .max()
            .unwrap_or(0);
        // Settled baseline for routed reads: same, but only counting
        // writes acked at least `stale_grace_us` of wall time before the
        // read invoked — writes newer than the router's detection window
        // assert nothing about a routed read.
        let settled = writes
            .iter()
            .filter(|&&(complete, _, _, wall)| {
                complete <= ev.invoke && wall + ctx.stale_grace_us <= ev.invoke_wall_us
            })
            .map(|&(_, _, v, _)| v)
            .filter(|v| !ctx.quarantined.contains(&(key, *v)))
            .max()
            .unwrap_or(0);
        let got_ver = got.unwrap_or(0);

        if ev.session_primary {
            // Read-your-writes on the primary: exact. The session is
            // the only writer of its key, so the read must return the
            // newest surviving acked version (or, before the fence,
            // possibly a newer later-quarantined one — covered by the
            // fabricated check above being the only other legal case).
            let pre_fence = ctx.fence_stamp.is_none_or(|f| ev.invoke < f);
            let quarantine_visible =
                pre_fence && got.is_some_and(|v| ctx.quarantined.contains(&(key, v)));
            if got_ver < baseline && !quarantine_visible {
                violations.push(Violation {
                    kind: "read-your-writes",
                    detail: format!(
                        "key {key}: primary-pinned session read returned \
                         {got:?} but its own acked write {baseline} was \
                         already durable at stamp {}",
                        ev.invoke
                    ),
                });
            }
        } else if let Some(v) = got {
            // An *absent* row asserts nothing here: the workload's put
            // is two replicated statements (DELETE, then INSERT), so a
            // routed read can legitimately land between them on any
            // replica, however caught-up — absence carries no version
            // information. A write that truly vanishes is still caught
            // by the lost-acked-write audit against the final state.
            if v + ctx.lag_window < settled {
                violations.push(Violation {
                    kind: "stale-read",
                    detail: format!(
                        "key {key}: routed read returned version {v} at stamp {}, \
                         more than {} versions behind settled acked version {settled}",
                        ev.invoke, ctx.lag_window
                    ),
                });
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(final_state: &[(u64, u64)]) -> CheckContext {
        CheckContext {
            lag_window: 2,
            stale_grace_us: 0,
            quarantined: HashSet::new(),
            fence_stamp: None,
            final_state: final_state.iter().copied().collect(),
        }
    }

    fn write(client: usize, key: u64, ver: u64, at: u64) -> Event {
        Event {
            client,
            op: OpKind::Write { key, ver },
            invoke: at,
            complete: at + 1,
            invoke_wall_us: at,
            complete_wall_us: at + 1,
            outcome: Outcome::Ok,
            session_primary: false,
        }
    }

    fn read(key: u64, got: Option<u64>, at: u64, session: bool) -> Event {
        Event {
            client: 9,
            op: OpKind::Read { key },
            invoke: at,
            complete: at + 1,
            invoke_wall_us: at,
            complete_wall_us: at + 1,
            outcome: Outcome::OkRead(got),
            session_primary: session,
        }
    }

    #[test]
    fn clean_history_passes() {
        let events = vec![
            write(0, 1, 1, 0),
            write(0, 1, 2, 10),
            read(1, Some(1), 5, false),
            read(1, Some(2), 20, false),
        ];
        assert!(check(&events, &ctx(&[(1, 2)])).is_empty());
    }

    #[test]
    fn lost_acked_write_is_flagged() {
        let events = vec![write(0, 1, 1, 0), write(0, 1, 2, 10)];
        let v = check(&events, &ctx(&[(1, 1)]));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "lost-acked-write");
    }

    #[test]
    fn quarantined_write_is_not_lost() {
        let events = vec![write(0, 1, 1, 0), write(0, 1, 2, 10)];
        let mut c = ctx(&[(1, 1)]);
        c.quarantined.insert((1, 2));
        c.fence_stamp = Some(12);
        assert!(check(&events, &c).is_empty());
    }

    #[test]
    fn quarantined_version_must_not_resurrect_after_fence() {
        let events = vec![
            write(0, 1, 1, 0),
            write(0, 1, 2, 10),
            read(1, Some(2), 30, false),
        ];
        let mut c = ctx(&[(1, 1)]);
        c.quarantined.insert((1, 2));
        c.fence_stamp = Some(20);
        let v = check(&events, &c);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "fabricated-read");
    }

    #[test]
    fn fabricated_read_is_flagged() {
        let events = vec![write(0, 1, 1, 0), read(1, Some(7), 5, false)];
        let v = check(&events, &ctx(&[(1, 1)]));
        assert_eq!(v[0].kind, "fabricated-read");
    }

    #[test]
    fn stale_read_beyond_window_is_flagged() {
        let events = vec![
            write(0, 1, 1, 0),
            write(0, 1, 2, 2),
            write(0, 1, 3, 4),
            write(0, 1, 4, 6),
            // Read invoked after all four acks but returning v1: three
            // versions behind, window is two.
            read(1, Some(1), 20, false),
        ];
        let v = check(&events, &ctx(&[(1, 4)]));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "stale-read");
    }

    #[test]
    fn stale_read_within_window_passes() {
        let events = vec![
            write(0, 1, 1, 0),
            write(0, 1, 2, 2),
            write(0, 1, 3, 4),
            read(1, Some(1), 20, false),
        ];
        assert!(check(&events, &ctx(&[(1, 3)])).is_empty());
    }

    #[test]
    fn writes_inside_the_grace_window_do_not_count_toward_staleness() {
        let events = vec![
            write(0, 1, 1, 0),
            write(0, 1, 2, 10),
            write(0, 1, 3, 12),
            write(0, 1, 4, 14),
            // Read three versions behind — but versions 2..4 were acked
            // within the grace window before the read invoked, so only
            // version 1 is settled.
            read(1, Some(1), 20, false),
        ];
        let mut c = ctx(&[(1, 4)]);
        c.stale_grace_us = 15;
        assert!(check(&events, &c).is_empty());
        c.stale_grace_us = 0;
        assert_eq!(check(&events, &c).len(), 1);
    }

    #[test]
    fn absent_row_asserts_no_staleness() {
        // The put is DELETE-then-INSERT: a routed read can land between
        // them on any replica, so `None` is a legal observation even
        // when the settled version is far past the lag window.
        let events = vec![
            write(0, 1, 1, 0),
            write(0, 1, 2, 2),
            write(0, 1, 3, 4),
            write(0, 1, 4, 6),
            read(1, None, 20, false),
        ];
        assert!(check(&events, &ctx(&[(1, 4)])).is_empty());
    }

    #[test]
    fn session_read_must_see_own_write() {
        let events = vec![
            write(0, 1, 1, 0),
            write(0, 1, 2, 2),
            read(1, Some(1), 10, true),
        ];
        let v = check(&events, &ctx(&[(1, 2)]));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "read-your-writes");
    }

    #[test]
    fn stamps_are_globally_ordered() {
        let h = History::default();
        let a = h.stamp();
        let b = h.stamp();
        assert!(b > a);
        assert!(h.is_empty());
        h.record(write(0, 1, 1, a));
        assert_eq!(h.len(), 1);
    }
}
