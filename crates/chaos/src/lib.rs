//! # mdb-chaos — deterministic fault harness for the MiniDB fleet
//!
//! Jepsen's question, asked reproducibly: does the replicated fleet
//! keep its consistency promises while the network partitions, nodes
//! crash mid-commit, clocks skew, and the primary dies?
//!
//! Three pieces:
//!
//! - [`scheduler::ChaosScheduler`] — a seeded, precomputed fault plan.
//!   Same `(seed, steps, replicas)`, same schedule, byte for byte; a CI
//!   failure under seed `S` replays exactly.
//! - [`harness::run_chaos`] — drives a 1-primary/N-replica
//!   [`mdb_repl::ReplicaSet`] under sustained mixed load while
//!   executing the plan, recording every client operation into a
//!   [`history::History`].
//! - [`history::check`] — audits the recorded history against the
//!   fleet's final state: lost acked writes, fabricated/dirty reads,
//!   staleness beyond the documented lag window, read-your-writes on
//!   primary-pinned sessions.
//!
//! The harness is also E21's instrument: on odd seeds the primary is
//! killed after a divergence window, and the deposed node's fenced
//! `binlog.divergent` sidecar — full of acked-but-unreplicated secrets
//! — is what the experiment carves from a cold disk image. Plaintext
//! fleets leak every one of them; `encrypted_wal` fleets leak none,
//! while the key holder still recovers the quarantined tail in full.

pub mod harness;
pub mod history;
pub mod scheduler;

pub use harness::{run_chaos, ChaosConfig, ChaosReport, ChaosRun, FaultCounts};
pub use history::{check, CheckContext, Event, History, OpKind, Outcome, Violation};
pub use scheduler::{ChaosScheduler, FaultAction, PlannedFault, DIVERGENCE_GAP};
