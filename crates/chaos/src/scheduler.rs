//! Seeded, deterministic fault schedules.
//!
//! A [`ChaosScheduler`] precomputes the run's entire fault plan from
//! `(seed, steps, replicas)` alone — same inputs, same schedule, byte
//! for byte. The harness then merely executes the plan between workload
//! steps, so a CI failure under seed `S` replays exactly by rerunning
//! seed `S`.
//!
//! Every plan carries at least one partition, one crash-restart, and
//! one clock-skew injection (deterministically inserted if the dice
//! missed); **odd seeds additionally stage a primary kill**: all
//! replicas are isolated a few steps early (opening a divergence
//! window in which the primary keeps acking unreplicated writes — the
//! E21 artifact), then the primary dies and the best survivor is
//! promoted.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fault, executed before the workload step it is keyed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Open a lasting partition between replica `replica` and the
    /// primary.
    Partition { replica: usize },
    /// Heal replica `replica`'s partition.
    Heal { replica: usize },
    /// Crash replica `replica` and restart it from its data dir
    /// (WAL/relay recovery, torn-tail repair, resume handshake).
    CrashRestart { replica: usize },
    /// Skew a node's clock by `delta_s` seconds (node 0 = primary,
    /// `1 + i` = replica `i`).
    ClockSkew { node: usize, delta_s: i64 },
    /// Partition every replica at once: the divergence window opens —
    /// every write the primary acks from here on is unreplicated.
    IsolateAll,
    /// Kill the primary, promote the best survivor (fencing the
    /// corpse's divergent tail), and heal all partitions.
    KillAndPromote,
}

/// A fault keyed to the workload step before which it fires.
pub type PlannedFault = (usize, FaultAction);

/// The precomputed fault plan for one chaos run.
pub struct ChaosScheduler {
    plan: Vec<PlannedFault>,
    includes_kill: bool,
}

/// Steps of divergence window opened before a staged primary kill:
/// writes acked in `[kill - DIVERGENCE_GAP, kill)` land only on the
/// doomed primary, guaranteeing a non-empty fenced tail every kill
/// seed.
pub const DIVERGENCE_GAP: usize = 6;

impl ChaosScheduler {
    /// Builds the deterministic plan for `(seed, steps, replicas)`.
    pub fn new(seed: u64, steps: usize, replicas: usize) -> ChaosScheduler {
        let mut rng = StdRng::seed_from_u64(seed);
        let includes_kill = seed % 2 == 1;
        let mut plan: Vec<PlannedFault> = Vec::new();

        // Sprinkle recoverable faults over the run.
        let mut step = 2usize;
        while step + 2 < steps {
            let replica = rng.gen_range(0..replicas.max(1));
            match rng.gen_range(0..10u32) {
                0..=2 => {
                    let heal_after = rng.gen_range(2..8usize);
                    plan.push((step, FaultAction::Partition { replica }));
                    plan.push((
                        (step + heal_after).min(steps - 1),
                        FaultAction::Heal { replica },
                    ));
                }
                3..=4 => plan.push((step, FaultAction::CrashRestart { replica })),
                5..=6 => plan.push((
                    step,
                    FaultAction::ClockSkew {
                        node: rng.gen_range(0..replicas + 1),
                        delta_s: if rng.gen_bool(0.5) {
                            rng.gen_range(1..3600i64)
                        } else {
                            -rng.gen_range(1..600i64)
                        },
                    },
                )),
                _ => {} // Quiet stretch.
            }
            step += rng.gen_range(3..9usize);
        }

        // Coverage floor: every seed exercises each recoverable fault
        // class at least once, at deterministic fallback steps.
        let have = |plan: &[PlannedFault], probe: fn(&FaultAction) -> bool| {
            plan.iter().any(|(_, a)| probe(a))
        };
        if !have(&plan, |a| matches!(a, FaultAction::Partition { .. })) && steps > 6 {
            plan.push((2, FaultAction::Partition { replica: 0 }));
            plan.push((5, FaultAction::Heal { replica: 0 }));
        }
        if !have(&plan, |a| matches!(a, FaultAction::CrashRestart { .. })) && steps > 8 {
            plan.push((7, FaultAction::CrashRestart { replica: 0 }));
        }
        if !have(&plan, |a| matches!(a, FaultAction::ClockSkew { .. })) && steps > 4 {
            plan.push((
                3,
                FaultAction::ClockSkew {
                    node: 0,
                    delta_s: 300,
                },
            ));
        }

        if includes_kill && steps > DIVERGENCE_GAP + 4 {
            // Stage the kill in the middle-to-late run, with the
            // isolation window opening DIVERGENCE_GAP steps earlier.
            let kill_at = steps / 2 + rng.gen_range(0..steps / 4);
            let isolate_at = kill_at - DIVERGENCE_GAP;
            // Scrub conflicting faults from the window: a heal would
            // shrink the divergent tail, a crash-restart would race the
            // promotion. Clock skew may stay.
            plan.retain(|(s, a)| {
                !(*s >= isolate_at
                    && matches!(
                        a,
                        FaultAction::Partition { .. }
                            | FaultAction::Heal { .. }
                            | FaultAction::CrashRestart { .. }
                    ))
            });
            plan.push((isolate_at, FaultAction::IsolateAll));
            plan.push((kill_at, FaultAction::KillAndPromote));
        }

        plan.sort_by_key(|(s, _)| *s);
        ChaosScheduler {
            plan,
            includes_kill,
        }
    }

    /// The full plan, step-ordered.
    pub fn plan(&self) -> &[PlannedFault] {
        &self.plan
    }

    /// Faults to execute before workload step `step`.
    pub fn actions_at(&self, step: usize) -> Vec<FaultAction> {
        self.plan
            .iter()
            .filter(|(s, _)| *s == step)
            .map(|(_, a)| *a)
            .collect()
    }

    /// Whether this seed stages a primary kill (odd seeds do).
    pub fn includes_kill(&self) -> bool {
        self.includes_kill
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = ChaosScheduler::new(0xC0FFEE, 120, 3);
        let b = ChaosScheduler::new(0xC0FFEE, 120, 3);
        assert_eq!(a.plan(), b.plan());
        let c = ChaosScheduler::new(0xC0FFEF, 120, 3);
        assert_ne!(a.plan(), c.plan());
    }

    #[test]
    fn every_seed_covers_the_recoverable_fault_classes() {
        for seed in 0..32u64 {
            let s = ChaosScheduler::new(seed, 100, 3);
            let plan = s.plan();
            assert!(
                plan.iter()
                    .any(|(_, a)| matches!(a, FaultAction::Partition { .. })
                        || matches!(a, FaultAction::IsolateAll)),
                "seed {seed}: no partition"
            );
            assert!(
                plan.iter()
                    .any(|(_, a)| matches!(a, FaultAction::ClockSkew { .. })),
                "seed {seed}: no clock skew"
            );
        }
    }

    #[test]
    fn odd_seeds_stage_a_kill_with_a_divergence_window() {
        for seed in [1u64, 3, 5, 7, 9] {
            let s = ChaosScheduler::new(seed, 100, 3);
            assert!(s.includes_kill());
            let isolate = s
                .plan()
                .iter()
                .find(|(_, a)| matches!(a, FaultAction::IsolateAll))
                .map(|(step, _)| *step)
                .expect("kill seed must isolate first");
            let kill = s
                .plan()
                .iter()
                .find(|(_, a)| matches!(a, FaultAction::KillAndPromote))
                .map(|(step, _)| *step)
                .unwrap();
            assert_eq!(kill - isolate, DIVERGENCE_GAP);
            // Nothing in the window shrinks the divergent tail.
            assert!(!s.plan().iter().any(|(step, a)| *step >= isolate
                && matches!(
                    a,
                    FaultAction::Heal { .. } | FaultAction::CrashRestart { .. }
                )));
        }
        for seed in [0u64, 2, 4, 8] {
            assert!(!ChaosScheduler::new(seed, 100, 3).includes_kill());
        }
    }

    #[test]
    fn replica_targets_stay_in_range() {
        for seed in 0..16u64 {
            for (_, a) in ChaosScheduler::new(seed, 200, 2).plan() {
                match a {
                    FaultAction::Partition { replica }
                    | FaultAction::Heal { replica }
                    | FaultAction::CrashRestart { replica } => assert!(*replica < 2),
                    FaultAction::ClockSkew { node, .. } => assert!(*node <= 2),
                    _ => {}
                }
            }
        }
    }
}
