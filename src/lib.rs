//! Umbrella crate for the HotOS 2017 "Why Your Encrypted Database Is Not
//! Secure" reproduction. Re-exports the workspace crates so examples and
//! integration tests have a single import root.

pub use corpus;
pub use edb;
pub use edb_crypto;
pub use minidb;
pub use snapshot_attack;
