//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of `rand` it actually uses: [`RngCore`]/[`Rng`]/[`SeedableRng`]
//! traits and a deterministic [`rngs::StdRng`] built on xoshiro256**.
//! Statistical quality is ample for experiments and tests; this is NOT a
//! cryptographic RNG (neither is the workload-seeding use of the real
//! `StdRng` here — all crypto randomness in this repo goes through
//! `edb-crypto`, which keys ChaCha20 from explicit seeds).

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly at random (the shim's stand-in for
/// `Standard: Distribution<T>`).
pub trait UniformRandom {
    /// Draws one uniformly random value.
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRandom for $t {
            fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRandom for u128 {
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl UniformRandom for bool {
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformRandom for f64 {
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformRandom for f32 {
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> UniformRandom for [u8; N] {
    fn uniform_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with uniform range sampling (stand-in for `SampleUniform`).
/// A single generic `SampleRange` impl over this trait keeps type
/// inference identical to real rand (unsuffixed range literals unify
/// with the surrounding expression's type).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = u128::uniform_from(rng) % span;
                (lo as i128 + v as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = u128::uniform_from(rng) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + f64::uniform_from(rng) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// High-level convenience methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of `T`.
    fn gen<T: UniformRandom>(&mut self) -> T {
        T::uniform_from(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::uniform_from(self) < p
    }

    /// Fills a byte slice with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0xBF58476D1CE4E5B9,
                    0x94D049BB133111EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_covers_all_bytes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_900..3_100).contains(&hits), "{hits}");
    }
}
