//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Accepted size specifications for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing `BTreeMap`s with a target size in `size`.
///
/// Duplicate keys collapse; if the key space is too small to reach the
/// target after a bounded number of draws, a smaller map is returned
/// (matching real proptest's behaviour of treating size as best-effort
/// under key collisions).
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// Output of [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = rng.gen_range(self.size.min..=self.size.max);
        let mut map = BTreeMap::new();
        let mut draws = 0usize;
        while map.len() < target && draws < target * 10 + 16 {
            map.insert(self.keys.generate(rng), self.values.generate(rng));
            draws += 1;
        }
        map
    }
}
