//! Test-case RNG, configuration, and case outcomes.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration. Only `cases` is meaningful in the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of a single generated case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Property violated; carries the failure message.
    Fail(String),
    /// Case rejected by `prop_assume!`; regenerated without counting.
    Reject(String),
}

impl TestCaseError {
    /// A failed case.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assume-filtered) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic generator for one test case: seeded from the test name
/// and attempt number, so each test is reproducible run-to-run.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for attempt `attempt` of the test named `name`.
    pub fn for_case(name: &str, attempt: u64) -> Self {
        // FNV-1a over the name, mixed with the attempt counter.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let seed = h ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
