//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest it uses: [`Strategy`] with `prop_map`, `any`,
//! `Just`, range and regex-literal strategies, tuple composition,
//! `collection::{vec, btree_map}`, weighted [`prop_oneof!`], and the
//! [`proptest!`] / `prop_assert*` macros. Differences from real proptest:
//! **no shrinking** (a failing case reports its seed and values but is not
//! minimized) and generation is deterministic per test name, so failures
//! are reproducible run-to-run.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the test files import via `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the whole process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
            ),
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l != *r,
                "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
            ),
        }
    };
}

/// Rejects the current case (it is regenerated, not counted as run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Weighted or unweighted union of strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut executed: u32 = 0;
            let mut attempts: u64 = 0;
            let max_attempts = (config.cases as u64) * 20 + 100;
            while executed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest {}: too many rejected cases ({} attempts for {} cases)",
                    stringify!($name), attempts, config.cases
                );
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    stringify!($name),
                    attempts,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => executed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case attempt #{}: {}",
                            stringify!($name), attempts, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}
