//! Value-generation strategies: the shim's core trait plus the
//! combinators the workspace tests use.

use crate::test_runner::TestRng;
use rand::{Rng, UniformRandom};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws one value directly from the RNG.
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy always yielding a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform strategy over the whole domain of `T`.
pub fn any<T: UniformRandom>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Output of [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: UniformRandom> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::uniform_from(rng)
    }
}

/// Weighted choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// String literals act as regex-subset strategies, e.g. `"[a-z]{1,12}"`.
///
/// Supported syntax: a sequence of atoms, each a literal char or a
/// bracket class (`[a-z0-9❤]`, ranges and literals; no negation or
/// escapes), optionally followed by `{n}` or `{m,n}` repetition.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pat: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = if chars[i] == '[' {
            i += 1;
            let mut set = Vec::new();
            loop {
                assert!(i < chars.len(), "unterminated [class] in pattern {pat:?}");
                match chars[i] {
                    ']' => {
                        i += 1;
                        break;
                    }
                    lo if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' => {
                        let hi = chars[i + 2];
                        assert!(lo <= hi, "inverted range {lo}-{hi} in pattern {pat:?}");
                        set.extend(lo..=hi);
                        i += 3;
                    }
                    c => {
                        set.push(c);
                        i += 1;
                    }
                }
            }
            assert!(!set.is_empty(), "empty [class] in pattern {pat:?}");
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };

        let (min, max) = if i < chars.len() && chars[i] == '{' {
            i += 1;
            let min = parse_number(&chars, &mut i, pat);
            let max = if chars.get(i) == Some(&',') {
                i += 1;
                parse_number(&chars, &mut i, pat)
            } else {
                min
            };
            assert_eq!(
                chars.get(i),
                Some(&'}'),
                "unterminated {{}} in pattern {pat:?}"
            );
            i += 1;
            (min, max)
        } else {
            (1, 1)
        };

        let count = rng.gen_range(min..=max);
        for _ in 0..count {
            out.push(alphabet[rng.gen_range(0..alphabet.len())]);
        }
    }
    out
}

fn parse_number(chars: &[char], i: &mut usize, pat: &str) -> usize {
    let start = *i;
    while chars.get(*i).is_some_and(|c| c.is_ascii_digit()) {
        *i += 1;
    }
    assert!(
        *i > start,
        "expected digits in repetition of pattern {pat:?}"
    );
    chars[start..*i].iter().collect::<String>().parse().unwrap()
}
