//! Offline drop-in subset of the `criterion` API.
//!
//! Benches compile and run with `harness = false` exactly as with real
//! criterion, but measurement is simplified: each benchmark warms up,
//! then collects `sample_size` samples of auto-calibrated iteration
//! batches within `measurement_time`, and prints mean/min/max to stdout.
//! No HTML reports, plots, or regression statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Default samples per benchmark.
    sample_size: usize,
    /// Default measurement budget per benchmark.
    measurement_time: Duration,
    /// Default warm-up budget per benchmark.
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        let (sample_size, measurement_time, warm_up_time) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            measurement_time,
            warm_up_time,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement_time, warm_up_time) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        run_benchmark(
            &id.into().text,
            sample_size,
            measurement_time,
            warm_up_time,
            None,
            f,
        );
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Declares work-per-iteration so the report can show a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().text);
        run_benchmark(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for a benchmark, optionally parameterised.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        BenchmarkId { text }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    sample_ns: Vec<f64>,
    mode: BencherMode,
}

enum BencherMode {
    /// Calibration: run once, record elapsed to size the batches.
    Calibrate,
    /// Measurement: run `iters_per_sample` iterations, record per-iter ns.
    Measure,
}

impl Bencher {
    /// Times `routine`, called in a batch per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BencherMode::Calibrate => {
                let start = Instant::now();
                black_box(routine());
                self.sample_ns.push(start.elapsed().as_nanos() as f64);
            }
            BencherMode::Measure => {
                let start = Instant::now();
                for _ in 0..self.iters_per_sample {
                    black_box(routine());
                }
                let total = start.elapsed().as_nanos() as f64;
                self.sample_ns.push(total / self.iters_per_sample as f64);
            }
        }
    }

    /// Times `routine` only, running `setup` untimed before each call.
    pub fn iter_with_setup<S, O, FS, R>(&mut self, mut setup: FS, mut routine: R)
    where
        FS: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        match self.mode {
            BencherMode::Calibrate => {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                self.sample_ns.push(start.elapsed().as_nanos() as f64);
            }
            BencherMode::Measure => {
                let mut total = 0f64;
                for _ in 0..self.iters_per_sample {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    total += start.elapsed().as_nanos() as f64;
                }
                self.sample_ns.push(total / self.iters_per_sample as f64);
            }
        }
    }
}

fn run_benchmark<F>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Calibrate: how long does one invocation take?
    let mut bencher = Bencher {
        iters_per_sample: 1,
        sample_ns: Vec::new(),
        mode: BencherMode::Calibrate,
    };
    let warm_up_deadline = Instant::now() + warm_up_time;
    f(&mut bencher);
    let mut per_iter_ns = bencher.sample_ns.last().copied().unwrap_or(1.0).max(1.0);
    // Finish the warm-up budget while refining the estimate.
    while Instant::now() < warm_up_deadline {
        bencher.sample_ns.clear();
        f(&mut bencher);
        per_iter_ns = bencher
            .sample_ns
            .last()
            .copied()
            .unwrap_or(per_iter_ns)
            .max(1.0);
    }

    // Size batches so all samples fit the measurement budget.
    let budget_ns = measurement_time.as_nanos() as f64;
    let iters = ((budget_ns / sample_size.max(1) as f64) / per_iter_ns).floor() as u64;
    let iters = iters.clamp(1, 1_000_000);

    let mut bencher = Bencher {
        iters_per_sample: iters,
        sample_ns: Vec::new(),
        mode: BencherMode::Measure,
    };
    let deadline = Instant::now() + measurement_time * 2;
    for _ in 0..sample_size {
        f(&mut bencher);
        if Instant::now() > deadline {
            break;
        }
    }

    let samples = &bencher.sample_ns;
    if samples.is_empty() {
        println!("{label:<48} (no samples — bencher.iter never called)");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!("  {:>10}/s", format_bytes(n as f64 * 1e9 / mean)),
        Throughput::Elements(n) => format!("  {:>10.0} elem/s", n as f64 * 1e9 / mean),
    });
    println!(
        "{label:<48} time: [{} {} {}]{}",
        format_ns(min),
        format_ns(mean),
        format_ns(max),
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn format_bytes(bytes_per_sec: f64) -> String {
    if bytes_per_sec < 1024.0 {
        format!("{bytes_per_sec:.0} B")
    } else if bytes_per_sec < 1024.0 * 1024.0 {
        format!("{:.1} KiB", bytes_per_sec / 1024.0)
    } else if bytes_per_sec < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", bytes_per_sec / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GiB", bytes_per_sec / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Groups benchmark functions under one callable, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 5,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Bytes(64));
        let mut ran = 0u64;
        group.bench_function("add", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter_with_setup(|| vec![0u8; n as usize], |v| v.len())
        });
        group.finish();
        assert!(ran > 0);
    }
}
