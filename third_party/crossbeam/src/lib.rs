//! Offline drop-in subset of the `crossbeam` API: scoped threads only,
//! implemented over `std::thread::scope` (available since Rust 1.63).

/// Scoped threads, `crossbeam::thread`-shaped.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as sthread;

    /// Handle for spawning threads that may borrow from the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope sthread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: sthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (Err on panic).
        pub fn join(self) -> sthread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope handle
        /// so it can spawn further threads, as in crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. Returns `Err` if `f` or an unjoined child panicked.
    pub fn scope<'env, F, R>(f: F) -> sthread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            sthread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicU64, Ordering};

        #[test]
        fn scoped_threads_can_borrow_and_join() {
            let counter = AtomicU64::new(0);
            super::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        s.spawn(|_| {
                            for _ in 0..1000 {
                                counter.fetch_add(1, Ordering::Relaxed);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            })
            .unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 4000);
        }

        #[test]
        fn child_panic_becomes_err() {
            let result = super::scope(|s| {
                s.spawn(|_| panic!("child"));
            });
            assert!(result.is_err());
        }
    }
}
