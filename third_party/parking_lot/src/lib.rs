//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! Matches the parking_lot surface the workspace uses: `lock()` /
//! `read()` / `write()` return guards directly (poisoning is swallowed,
//! as parking_lot has no poisoning).

use std::sync::{self, TryLockError};

/// Mutual exclusion, `parking_lot::Mutex`-shaped.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock, `parking_lot::RwLock`-shaped.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
