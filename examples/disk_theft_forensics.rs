//! Disk theft forensics (§3): reconstruct the write history — full row
//! images with approximate timestamps — from nothing but the stolen disk.
//!
//! ```text
//! cargo run --release --example disk_theft_forensics
//! ```

use minidb::engine::{Db, DbConfig};
use minidb::wal::{BINLOG_FILE, REDO_FILE, UNDO_FILE};
use snapshot_attack::forensics::{binlog, lsn_time, wal};
use snapshot_attack::threat::{capture, AttackVector};

fn main() {
    let mut config = DbConfig::default();
    config.seconds_per_statement = 60; // One write a minute.
    let db = Db::open(config);
    let conn = db.connect("payroll");
    conn.execute("CREATE TABLE salaries (id INT PRIMARY KEY, name TEXT, amount INT)")
        .unwrap();
    conn.execute("INSERT INTO salaries VALUES (1, 'alice', 95000)")
        .unwrap();
    conn.execute("INSERT INTO salaries VALUES (2, 'bob', 72000)")
        .unwrap();
    conn.execute("UPDATE salaries SET amount = 105000 WHERE id = 1")
        .unwrap();
    conn.execute("DELETE FROM salaries WHERE id = 2").unwrap();

    // Admin hygiene: purge the binlog. (The circular redo/undo logs
    // cannot be purged -- ACID needs them.)
    let pre_purge = binlog::parse_binlog(db.disk_image().file(BINLOG_FILE).unwrap());
    db.purge_binlog();
    conn.execute("INSERT INTO salaries VALUES (3, 'carol', 88000)")
        .unwrap();
    conn.execute("INSERT INTO salaries VALUES (4, 'dave', 61000)")
        .unwrap();

    // --- the theft ---
    let obs = capture(&db, AttackVector::DiskTheft);
    let disk = obs.persistent_db.expect("disk theft yields the disk");
    println!("stolen files: {:?}\n", disk.file_names());

    println!("--- redo log: reconstructed writes (Fruhwirt-style carving) ---");
    let writes = wal::reconstruct_writes(disk.file(REDO_FILE).unwrap());
    let events = binlog::parse_binlog(disk.file(BINLOG_FILE).unwrap());
    let model = lsn_time::fit(&events);
    for w in &writes {
        let when = model
            .map(|m| format!("~t={}", m.estimate(w.lsn) as i64))
            .unwrap_or_else(|| "t=?".into());
        match &w.row {
            Some(row) => println!("  lsn {:>3} {when} {:?} row{:?}", w.lsn, w.op, row.values),
            None => println!("  lsn {:>3} {when} {:?} (tombstone)", w.lsn, w.op),
        }
    }

    println!("\n--- undo log: before-images (what updates/deletes destroyed) ---");
    for b in wal::reconstruct_before_images(disk.file(UNDO_FILE).unwrap()) {
        if let Some(row) = &b.before {
            println!("  lsn {:>3} {:?} was {:?}", b.lsn, b.op, row.values);
        }
    }

    println!("\n--- binlog (post-purge remnant): statements with timestamps ---");
    for e in &events {
        println!("  t={} {}", e.timestamp, e.statement);
    }
    println!(
        "\nNote: alice's old salary (95000) was only ever 'deleted' -- yet the\n\
         undo log hands it back. And the purged history ({} events) is still\n\
         datable through the LSN-time fit shown above.",
        pre_purge.len()
    );
}
