//! Quickstart: spin up MiniDB, run an encrypted workload through the
//! CryptDB-style proxy, then show what a single "snapshot" of the system
//! hands an attacker.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use edb::cryptdb::{ColumnCrypto, CryptDbProxy, EncColumn, Query};
use edb_crypto::Key;
use minidb::engine::{Db, DbConfig};
use minidb::value::Value;
use snapshot_attack::forensics::{binlog, memscan};
use snapshot_attack::threat::{capture, AttackVector};

fn main() {
    // 1. A production-ish DBMS: binlog on, query cache on, 50 MB logs.
    let db = Db::open(DbConfig::default());

    // 2. An encrypted database on top: the DBMS only ever sees
    //    ciphertexts and query tokens.
    let mut proxy = CryptDbProxy::new(&db, Key([42u8; 32]), 7).expect("proxy");
    proxy
        .create_table(
            "patients",
            vec![
                EncColumn {
                    name: "id".into(),
                    crypto: ColumnCrypto::PlainInt,
                    primary_key: true,
                },
                EncColumn {
                    name: "diagnosis".into(),
                    crypto: ColumnCrypto::Det,
                    primary_key: false,
                },
                EncColumn {
                    name: "age".into(),
                    crypto: ColumnCrypto::Ore,
                    primary_key: false,
                },
            ],
        )
        .expect("create table");
    for (id, diag, age) in [
        (1, "flu", 34u32),
        (2, "diabetes", 61),
        (3, "flu", 29),
        (4, "hypertension", 55),
    ] {
        proxy
            .insert(
                "patients",
                &[
                    Value::Int(id),
                    Value::Text(diag.into()),
                    Value::Int(age as i64),
                ],
            )
            .expect("insert");
    }

    // 3. The application runs queries; the proxy decrypts results.
    let rows = proxy
        .select(
            "patients",
            &Query::Eq("diagnosis".into(), Value::Text("flu".into())),
        )
        .expect("select");
    println!("application sees {} flu patients (plaintext!)", rows.len());
    let rows = proxy
        .select("patients", &Query::Range("age".into(), 50, 70))
        .expect("range");
    println!("application sees {} patients aged 50-70", rows.len());

    // 4. Now the snapshot attack. One VM image, one point in time.
    let obs = capture(&db, AttackVector::VmSnapshotLeak);
    let mem = obs.volatile_db.expect("vm snapshot includes memory");
    let disk = obs.persistent_db.expect("vm snapshot includes disk");

    let sql_strings = memscan::carve_sql(&mem.heap);
    println!("\n--- snapshot attacker's view ---");
    println!(
        "SQL statements carved from the process heap: {}",
        sql_strings.len()
    );
    for s in sql_strings.iter().take(3) {
        let preview: String = s.text.chars().take(76).collect();
        println!("  heap@{:>7}: {preview}...", s.offset);
    }
    let tokens = memscan::carve_tokens(&mem.heap);
    println!(
        "ciphertexts/query tokens carved from heap SQL: {}",
        tokens.len()
    );

    let events = binlog::parse_binlog(disk.file(minidb::wal::BINLOG_FILE).unwrap());
    println!(
        "binlog statements (with timestamps) on disk: {}",
        events.len()
    );
    if let Some(e) = events.first() {
        let preview: String = e.statement.chars().take(60).collect();
        println!("  t={} {preview}...", e.timestamp);
    }
    println!(
        "\nEvery ORE range token above can now be replayed against the stolen\n\
         ciphertexts -- see `cargo run --release --example lewi_wu_leakage`."
    );
}
