//! Frequency analysis against Seabed's SPLASHE (§6): the digest table
//! hands a SQL-injection attacker an exact query histogram per hidden
//! column; rank matching it against a public query model recovers the
//! secret value→column mapping.
//!
//! ```text
//! cargo run --release --example seabed_frequency_attack
//! ```

use corpus::zipf::Zipf;
use edb::seabed::{SeabedMode, SeabedTable};
use edb_crypto::Key;
use minidb::engine::{Db, DbConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snapshot_attack::attacks::frequency::rank_match;
use snapshot_attack::threat::{capture, AttackVector};

fn main() {
    let domain = 12u32; // E.g. months of the year.
    let mut rng = StdRng::seed_from_u64(1);
    let zipf = Zipf::new(domain as usize, 1.2);

    let db = Db::open(DbConfig::default());
    let mut table = SeabedTable::create(&db, &Key([77u8; 32]), "orders", domain, SeabedMode::Basic)
        .expect("create");
    for _ in 0..800 {
        table.insert(zipf.sample(&mut rng) as u32).expect("insert");
    }

    // The analyst runs month-by-month counts, skewed toward recent months
    // (the query distribution the attacker can model).
    println!("victim analytics queries (rewritten to per-column ASHE sums):");
    for i in 0..600 {
        let v = zipf.sample(&mut rng) as u32;
        let n = table.count_eq(v).expect("count");
        if i < 3 {
            println!(
                "  {}  -> decrypted count {n}",
                table.rewrite_count(v).unwrap()
            );
        }
    }

    // --- SQL injection: read the digest table ---
    let obs = capture(&db, AttackVector::SqlInjection);
    let inj = obs.sql.expect("live sql");
    let digests = inj
        .execute(
            "SELECT digest_text, count_star FROM \
             performance_schema.events_statements_summary_by_digest",
        )
        .unwrap();
    let mut observed: Vec<(u32, f64)> = Vec::new();
    for row in &digests.rows {
        let text = row[0].to_string();
        if let Some(pos) = text.find("(c") {
            let digits: String = text[pos + 2..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if text.contains("ashe_sum") {
                if let Ok(label) = digits.parse::<u32>() {
                    observed.push((label, row[1].to_string().parse().unwrap_or(0.0)));
                }
            }
        }
    }
    println!("\nattacker's view of the digest table (query histogram per column):");
    let mut sorted = observed.clone();
    sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (label, count) in &sorted {
        println!("  column c{label:<3} queried {count:>4} times");
    }

    // Rank-match against the public query model.
    let model: Vec<(u32, f64)> = (0..domain).map(|v| (v, zipf.pmf(v as usize))).collect();
    let guesses = rank_match(&observed, &model);
    println!("\nfrequency analysis (rank matching) results:");
    let mut correct = 0;
    for (label, value) in &guesses {
        let truth = table.oracle_value_of_label(*label);
        let ok = truth == *value;
        correct += ok as u32;
        println!(
            "  column c{label:<3} -> guessed value {value:<3} (truth {truth:<3}) {}",
            if ok { "CORRECT" } else { "wrong" }
        );
    }
    println!(
        "\nrecovered {correct}/{} column mappings; random guessing gets ~{:.1}.",
        guesses.len(),
        guesses.len() as f64 / domain as f64
    );
}
