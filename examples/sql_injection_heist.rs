//! SQL injection against an encrypted database (§4): the attacker never
//! sees the disk or the raw memory — only the ability to run `SELECT`s as
//! the web application's DB user. The diagnostic tables hand over other
//! users' queries, live and historical.
//!
//! ```text
//! cargo run --release --example sql_injection_heist
//! ```

use edb::cryptdb::{ColumnCrypto, CryptDbProxy, EncColumn, Query};
use edb_crypto::Key;
use minidb::engine::{Db, DbConfig};
use minidb::value::Value;
use snapshot_attack::threat::{capture, AttackVector};

fn main() {
    let db = Db::open(DbConfig::default());
    let mut proxy = CryptDbProxy::new(&db, Key([9u8; 32]), 3).expect("proxy");
    proxy
        .create_table(
            "mail",
            vec![
                EncColumn {
                    name: "id".into(),
                    crypto: ColumnCrypto::PlainInt,
                    primary_key: true,
                },
                EncColumn {
                    name: "body".into(),
                    crypto: ColumnCrypto::Search,
                    primary_key: false,
                },
            ],
        )
        .expect("create");
    for (id, body) in [
        (1, "quarterly numbers look bad tell nobody"),
        (2, "the merger with initech is back on"),
        (3, "lunch order pizza friday"),
    ] {
        proxy
            .insert("mail", &[Value::Int(id), Value::Text(body.into())])
            .expect("insert");
    }

    // The victim searches the encrypted mailbox. The proxy ships an SWP
    // trapdoor to the server inside the rewritten SQL.
    proxy
        .select("mail", &Query::Contains("body".into(), "merger".into()))
        .expect("victim search");

    // --- the attack: one injected SELECT at a time ---
    let obs = capture(&db, AttackVector::SqlInjection);
    let inj = obs.sql.expect("live SQL access");

    println!("--- injected: SELECT * FROM information_schema.processlist ---");
    let procs = inj
        .execute("SELECT * FROM information_schema.processlist")
        .unwrap();
    for row in &procs.rows {
        println!("  conn {} user {:<14} running: {}", row[0], row[1], row[3]);
    }

    println!(
        "\n--- injected: SELECT sql_text FROM performance_schema.events_statements_history ---"
    );
    let hist = inj
        .execute("SELECT sql_text FROM performance_schema.events_statements_history")
        .unwrap();
    let mut trapdoors = 0;
    for row in &hist.rows {
        let text = row[0].to_string();
        let preview: String = text.chars().take(88).collect();
        println!("  {preview}");
        if text.contains("SWP_MATCH") {
            trapdoors += 1;
        }
    }
    println!(
        "\nThe victim's search token (SWP trapdoor) appears verbatim in {trapdoors} \
         history row(s)."
    );
    println!(
        "Semantic security is over: the attacker can apply that trapdoor to every\n\
         stored ciphertext and learn exactly which encrypted mails mention the word."
    );

    println!("\n--- injected: digest summary (query types since restart) ---");
    let digests = inj
        .execute(
            "SELECT digest_text, count_star FROM \
             performance_schema.events_statements_summary_by_digest \
             ORDER BY count_star DESC LIMIT 5",
        )
        .unwrap();
    for row in &digests.rows {
        println!("  {:>4}x  {}", row[1], row[0]);
    }
}
