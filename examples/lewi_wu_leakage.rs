//! The §6 Lewi–Wu demonstration, end to end on real ciphertexts first,
//! then the paper's aggregate simulation.
//!
//! ```text
//! cargo run --release --example lewi_wu_leakage [--full]
//! ```
//!
//! `--full` runs the paper's exact parameters (10,000 values, 1,000
//! trials); the default is a faster scaled-down run.

use edb_crypto::ore::{compare_leak, OreKey, OreParams};
use edb_crypto::Key;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snapshot_attack::attacks::bit_leakage::{simulate, Mode, SimParams};

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    // Part 1: the leakage is real, not a model artifact. Encrypt actual
    // values under the real scheme and show what one recovered token
    // reveals against stored ciphertexts.
    let key = OreKey::new(&Key([5u8; 32]), OreParams::PAPER).expect("params");
    let mut rng = StdRng::seed_from_u64(99);
    let db_values: Vec<u32> = (0..8).map(|_| rng.gen()).collect();
    let stored: Vec<_> = db_values
        .iter()
        .map(|&v| key.encrypt_right(v as u64, &mut rng).expect("encrypt"))
        .collect();
    let token_value: u32 = rng.gen();
    let token = key.encrypt_left(token_value as u64).expect("token");

    println!(
        "one recovered range token vs {} stored ciphertexts:",
        stored.len()
    );
    println!("(the comparison needs NO keys - only the two ciphertexts)\n");
    for (v, ct) in db_values.iter().zip(&stored) {
        let leak = compare_leak(&token, ct).expect("compare");
        let msdb = leak.msdb.map(|m| m.to_string()).unwrap_or("-".into());
        println!(
            "  value {v:>10}: order {:<7} first-differing-bit {msdb:>2}  => bit {} of the value leaks",
            format!("{:?}", leak.ordering),
            msdb,
        );
    }

    // Part 2: the paper's aggregate numbers.
    let (db_size, trials) = if full { (10_000, 1_000) } else { (2_000, 100) };
    println!("\naggregate simulation: db={db_size} uniform 32-bit values, {trials} trials");
    println!("(paper: 10,000 values, 1,000 trials -> 12% / 19% / 25%)\n");
    println!("queries  fraction of all bits leaked  bits per 32-bit value");
    for queries in [5usize, 25, 50] {
        let r = simulate(&SimParams {
            db_size,
            num_queries: queries,
            trials,
            mode: Mode::Propagate,
            seed: 0xF00D + queries as u64,
        });
        println!(
            "{queries:>7}  {:>27.1}%  {:>21.2}",
            r.fraction_bits_leaked * 100.0,
            r.bits_per_value
        );
    }
}
