//! Arx read-repair leakage (§6): every range query on the encrypted index
//! becomes a burst of logged writes; the stolen disk replays the full
//! query transcript and rank information recovers the hidden values.
//!
//! ```text
//! cargo run --release --example arx_transcript_replay
//! ```

use edb::arx::ArxRangeIndex;
use edb_crypto::Key;
use minidb::engine::{Db, DbConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snapshot_attack::attacks::arx_transcript::{
    reconstruct_transcripts, recover_values_by_rank, visit_frequencies,
};
use snapshot_attack::forensics::binlog::parse_binlog;
use snapshot_attack::threat::{capture, AttackVector};

fn main() {
    let db = Db::open(DbConfig::default());
    let mut ix = ArxRangeIndex::create(&db, &Key([3u8; 32]), "arx_salary", 11).expect("create");
    let mut rng = StdRng::seed_from_u64(2);
    let values: Vec<u64> = (0..128).map(|_| rng.gen_range(30_000..200_000)).collect();
    for (row, &v) in values.iter().enumerate() {
        ix.insert(v, row as u64).expect("insert");
    }

    println!("victim range queries over the encrypted salary index:");
    for &(lo, hi) in &[(50_000u64, 80_000u64), (100_000, 120_000), (60_000, 75_000)] {
        let matches = ix.range(lo, hi).expect("range");
        println!(
            "  [{lo}, {hi}] -> {} matching rows (repairs committed)",
            matches.len()
        );
    }

    // --- disk theft ---
    let obs = capture(&db, AttackVector::DiskTheft);
    let disk = obs.persistent_db.expect("disk");
    let events = parse_binlog(disk.file(minidb::wal::BINLOG_FILE).unwrap());
    let transcripts = reconstruct_transcripts(&events, "arx_salary");

    println!("\nattacker reconstructs from the binlog alone:");
    for (i, t) in transcripts.iter().enumerate() {
        println!(
            "  query #{:<2} at t={}: visited {} index nodes (first few: {:?})",
            i + 1,
            t.timestamp,
            t.visited.len(),
            &t.visited[..t.visited.len().min(6)]
        );
    }
    let freqs = visit_frequencies(&transcripts);
    let mut hot: Vec<(&u32, &usize)> = freqs.iter().collect();
    hot.sort_by(|a, b| b.1.cmp(a.1));
    println!("\nhottest index nodes (visit counts are pure leakage):");
    for (node, count) in hot.iter().take(5) {
        println!("  node {node:<4} visited {count} times");
    }

    // Rank recovery: the tree structure gives the total order of hidden
    // values; an auxiliary salary model fills in magnitudes.
    let mut aux: Vec<u64> = (0..4096).map(|_| rng.gen_range(30_000..200_000)).collect();
    aux.sort_unstable();
    let recovered = recover_values_by_rank(&ix.oracle_inorder(), &aux);
    let mut err = 0.0;
    let mut shown = 0;
    println!("\nrank-based value recovery (auxiliary: public salary distribution):");
    for (node, est) in recovered.iter() {
        let truth = ix.oracle_value(*node);
        if shown < 5 {
            println!("  node {node:<4} estimated {est:>7}  true {truth:>7}");
            shown += 1;
        }
        err += (truth as f64 - *est as f64).abs() / truth as f64;
    }
    println!(
        "  ... mean relative error over all {} nodes: {:.1}%",
        recovered.len(),
        err / recovered.len() as f64 * 100.0
    );
}
